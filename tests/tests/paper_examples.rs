//! The paper's worked examples, end to end through the public API: Fig 1
//! (dirty Travel data), Fig 2 (master data), Fig 3 (φ1/φ2), Example 8
//! (inconsistency), Fig 8 (lRepair trace), and the §5.3 resolution.

use fixrules::consistency::resolve::{ensure_consistent, Strategy};
use fixrules::repair::{crepair_table, lrepair_table, LRepairIndex};
use fixrules::semantics::all_fixes;
use fixrules::{FixingRule, RuleId};
use relation::SymbolTable;

#[test]
fn fig1_fig3_phi1_phi2_fix_two_of_four_errors() {
    // Example 2: with only φ1 and φ2, r2.capital and r4.capital are
    // repaired; r2.city and r3.country remain.
    let schema = datagen::travel::schema();
    let mut sy = SymbolTable::new();
    let mut dirty = datagen::travel::dirty_instance(&mut sy, &schema);
    let clean = datagen::travel::clean_instance(&mut sy, &schema);
    let mut rules = fixrules::RuleSet::new(schema.clone());
    rules
        .push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
    rules
        .push_named(
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
    let outcome = crepair_table(&rules, &mut dirty);
    assert_eq!(outcome.total_updates(), 2);
    // Two errors remain (r2.city, r3.country).
    assert_eq!(dirty.diff_cells(&clean).unwrap(), 2);
    let capital = schema.attr("capital").unwrap();
    assert_eq!(sy.resolve(dirty.cell(1, capital)), "Beijing");
    assert_eq!(sy.resolve(dirty.cell(3, capital)), "Ottawa");
}

#[test]
fn fig8_full_rule_set_fixes_everything_with_both_algorithms() {
    let schema = datagen::travel::schema();
    let mut sy = SymbolTable::new();
    let rules = datagen::travel::fig8_rules(&mut sy, &schema);
    let clean = datagen::travel::clean_instance(&mut sy, &schema);
    for use_linear in [false, true] {
        let mut dirty = datagen::travel::dirty_instance(&mut sy, &schema);
        if use_linear {
            let index = LRepairIndex::build(&rules);
            lrepair_table(&rules, &index, &mut dirty);
        } else {
            crepair_table(&rules, &mut dirty);
        }
        assert_eq!(dirty.diff_cells(&clean).unwrap(), 0, "linear={use_linear}");
    }
}

#[test]
fn example_8_inconsistency_detected_resolved_and_verified() {
    let schema = datagen::travel::schema();
    let mut sy = SymbolTable::new();
    let mut rules = fixrules::RuleSet::new(schema.clone());
    rules.push(datagen::travel::phi1_prime(&mut sy, &schema));
    rules
        .push_named(
            &mut sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();

    // r3 reaches two fixpoints under the inconsistent pair.
    let r3: Vec<relation::Symbol> = ["Peter", "China", "Tokyo", "Tokyo", "ICDE"]
        .iter()
        .map(|v| sy.intern(v))
        .collect();
    let refs: Vec<&FixingRule> = rules.rules().iter().collect();
    assert_eq!(all_fixes(&refs, &r3).len(), 2);

    // Both checkers agree; resolution applies the paper's expert fix.
    assert!(!rules.check_consistency().is_consistent());
    let log = ensure_consistent(&mut rules, Strategy::ShrinkNegatives);
    assert_eq!(log.negatives_removed(), 1);
    assert!(rules.check_consistency().is_consistent());

    // After resolution r3 has the unique (correct) fix: country := Japan.
    let refs: Vec<&FixingRule> = rules.rules().iter().collect();
    let fixes = all_fixes(&refs, &r3);
    assert_eq!(fixes.len(), 1);
    let fixed = fixes.into_iter().next().unwrap();
    assert_eq!(sy.resolve(fixed[1]), "Japan");
    assert_eq!(sy.resolve(fixed[2]), "Tokyo");
}

#[test]
fn fig2_master_data_drives_rule_generation() {
    // Seeds from Fig 1's country→capital violations with Fig 2's master
    // data reproduce φ1/φ2-shaped rules that then repair the data they
    // were seeded from.
    let schema = datagen::travel::schema();
    let mut sy = SymbolTable::new();
    let dirty = datagen::travel::dirty_instance(&mut sy, &schema);
    // Master data (Fig 2) projected through the Travel schema.
    let mut master_rows = relation::Table::new(schema.clone());
    for row in [
        ["-", "China", "Beijing", "-", "-"],
        ["-", "Canada", "Ottawa", "-", "-"],
        ["-", "Japan", "Tokyo", "-", "-"],
    ] {
        master_rows.push_strs(&mut sy, &row).unwrap();
    }
    let country = schema.attr("country").unwrap();
    let capital = schema.attr("capital").unwrap();
    let master = fixrules::generation::MasterIndex::build(&master_rows, &[country], capital);
    let fd = fd::Fd::from_names(&schema, ["country"], ["capital"]).unwrap();
    let seeds = fixrules::generation::seed_rules_from_violations(&dirty, &fd, &[master]);
    // China group: Shanghai and Tokyo disagree with Beijing; Canada group
    // is not violated (r4 alone carries Canada)... r4 is a singleton group,
    // so only the China rule is seeded.
    assert_eq!(seeds.len(), 1);
    let rule = &seeds[0];
    assert_eq!(rule.evidence_value(country), sy.get("China"));
    assert_eq!(rule.fact(), sy.get("Beijing").unwrap());

    let mut rules = fixrules::RuleSet::new(schema.clone());
    for s in seeds {
        rules.push(s);
    }
    let mut repaired = dirty.clone();
    let outcome = crepair_table(&rules, &mut repaired);
    // Both China capital errors (r2 Shanghai, r3 Tokyo) are rewritten to
    // Beijing; for r3 that is exactly the dependable-but-wrong trade the
    // paper resolves by *removing* Tokyo from the negatives (§5.3).
    assert_eq!(outcome.total_updates(), 2);
}

#[test]
fn fig8_lrepair_trace_matches_walkthrough() {
    // The Fig 8 narrative: r1 unchanged; r2 repaired by φ1 then φ4; r3 by
    // φ3; r4 by φ2.
    let schema = datagen::travel::schema();
    let mut sy = SymbolTable::new();
    let rules = datagen::travel::fig8_rules(&mut sy, &schema);
    let index = LRepairIndex::build(&rules);
    let mut dirty = datagen::travel::dirty_instance(&mut sy, &schema);
    let outcome = lrepair_table(&rules, &index, &mut dirty);

    let rules_for_row = |row: usize| -> Vec<RuleId> {
        outcome
            .updates
            .iter()
            .filter(|u| u.row == row)
            .map(|u| u.rule)
            .collect()
    };
    assert!(rules_for_row(0).is_empty());
    assert_eq!(rules_for_row(1), vec![RuleId(0), RuleId(3)]);
    assert_eq!(rules_for_row(2), vec![RuleId(2)]);
    assert_eq!(rules_for_row(3), vec![RuleId(1)]);
}
