//! Failure-injection and edge-condition tests: the engine must stay
//! well-behaved when its inputs are hostile — poisoned reference data,
//! inconsistent rule sets, unicode content, extreme noise rates.

use datagen::noise::{inject, NoiseConfig};
use eval::rules::{build_ruleset, RuleGenConfig};
use eval::score;
use fixrules::generation::MasterIndex;
use fixrules::repair::{crepair_table, lrepair_table, LRepairIndex};
use fixrules::{FixingRule, RuleSet};
use relation::{Schema, SymbolTable, Table};

#[test]
fn poisoned_master_data_degrades_gracefully() {
    // Corrupt the reference data the oracle is built from: rules stay
    // structurally valid and consistent, repairs get worse — but nothing
    // panics and precision is exactly measurable.
    let mut dataset = datagen::uis::generate(1_000, 41);
    let attrs = dataset.constrained_attrs();
    let mut dirty = dataset.clean.clone();
    inject(
        &mut dirty,
        &mut dataset.symbols,
        &attrs,
        NoiseConfig {
            rate: 0.10,
            typo_fraction: 0.5,
            seed: 41,
        },
    );

    // Poison: swap the ground truth used for oracle building by shuffling
    // one column's values cyclically.
    let state = dataset.schema.attr("state").unwrap();
    let n = dataset.clean.len();
    let first = dataset.clean.cell(0, state);
    for i in 0..n - 1 {
        let next = dataset.clean.cell(i + 1, state);
        dataset.clean.set_cell(i, state, next);
        let _ = next;
    }
    dataset.clean.set_cell(n - 1, state, first);

    let (rules, _) = build_ruleset(
        &mut dataset,
        &dirty,
        RuleGenConfig {
            target: 40,
            seed: 41,
            enrich_factor: 1.0,
        },
    );
    assert!(rules.check_consistency().is_consistent());
    let index = LRepairIndex::build(&rules);
    let mut repaired = dirty.clone();
    lrepair_table(&rules, &index, &mut repaired); // must not panic
}

#[test]
fn inconsistent_rules_still_terminate_per_tuple() {
    // Production repair requires consistent Σ, but feeding an inconsistent
    // set must never loop: every application assures an attribute, so at
    // most |R| rules fire per tuple.
    let schema = Schema::new("R", ["a", "b", "c"]).unwrap();
    let mut sy = SymbolTable::new();
    let mut rules = RuleSet::new(schema.clone());
    // Mutually conflicting pair (case 2c shape).
    rules
        .push_named(&mut sy, &[("a", "k")], "b", &["x"], "y")
        .unwrap();
    rules
        .push_named(&mut sy, &[("b", "x")], "a", &["k"], "j")
        .unwrap();
    assert!(!rules.check_consistency().is_consistent());
    let mut t = Table::new(schema);
    t.push_strs(&mut sy, &["k", "x", "z"]).unwrap();
    let index = LRepairIndex::build(&rules);
    let mut by_l = t.clone();
    let out_l = lrepair_table(&rules, &index, &mut by_l);
    let mut by_c = t.clone();
    let out_c = crepair_table(&rules, &mut by_c);
    // Each algorithm applied at most |R| rules and terminated; with an
    // inconsistent set they may legitimately disagree.
    assert!(out_l.total_updates() <= 3);
    assert!(out_c.total_updates() <= 3);
}

#[test]
fn unicode_values_flow_through_the_whole_stack() {
    let schema = Schema::new("T", ["国家", "首都"]).unwrap();
    let mut sy = SymbolTable::new();
    let mut rules = RuleSet::new(schema.clone());
    rules
        .push_named(
            &mut sy,
            &[("国家", "中国")],
            "首都",
            &["上海", "香港"],
            "北京",
        )
        .unwrap();
    assert!(rules.check_consistency().is_consistent());
    let mut t = Table::new(schema.clone());
    t.push_strs(&mut sy, &["中国", "上海"]).unwrap();
    t.push_strs(&mut sy, &["日本", "東京"]).unwrap();
    let index = LRepairIndex::build(&rules);
    let out = lrepair_table(&rules, &index, &mut t);
    assert_eq!(out.total_updates(), 1);
    assert_eq!(sy.resolve(t.cell(0, schema.attr("首都").unwrap())), "北京");

    // Rule file round-trip with CJK content.
    let text = fixrules::io::format_rules(&rules, &sy);
    let parsed = fixrules::io::parse_rules(&text, &schema, &mut sy).unwrap();
    assert_eq!(parsed.len(), 1);

    // CSV round-trip too.
    let mut buf = Vec::new();
    relation::csv_io::write_csv(&mut buf, &t, &sy).unwrap();
    let mut sy2 = SymbolTable::new();
    let loaded = relation::csv_io::read_csv(buf.as_slice(), "T", &mut sy2).unwrap();
    assert_eq!(loaded.row_strs(&sy2, 0), vec!["中国", "北京"]);
}

#[test]
fn extreme_noise_rates_are_handled() {
    for rate in [0.0, 1.0] {
        let mut d = datagen::uis::generate(300, 43);
        let attrs = d.constrained_attrs();
        let mut dirty = d.clean.clone();
        let log = inject(
            &mut dirty,
            &mut d.symbols,
            &attrs,
            NoiseConfig {
                rate,
                typo_fraction: 0.5,
                seed: 43,
            },
        );
        if rate == 0.0 {
            assert!(log.is_empty());
            assert_eq!(d.clean.diff_cells(&dirty).unwrap(), 0);
        } else {
            assert_eq!(log.len(), 300);
        }
        let (rules, _) = build_ruleset(
            &mut d,
            &dirty,
            RuleGenConfig {
                target: 20,
                seed: 43,
                enrich_factor: 1.0,
            },
        );
        let index = LRepairIndex::build(&rules);
        let mut repaired = dirty.clone();
        lrepair_table(&rules, &index, &mut repaired);
        let acc = score(&d.clean, &dirty, &repaired);
        assert!(acc.precision() >= 0.0 && acc.precision() <= 1.0);
    }
}

#[test]
fn master_index_on_empty_reference_yields_no_rules() {
    let schema = Schema::new("T", ["k", "v"]).unwrap();
    let empty = Table::new(schema.clone());
    let k = schema.attr("k").unwrap();
    let v = schema.attr("v").unwrap();
    let master = MasterIndex::build(&empty, &[k], v);
    assert!(master.is_empty());
    let mut sy = SymbolTable::new();
    let mut dirty = Table::new(schema.clone());
    dirty.push_strs(&mut sy, &["a", "1"]).unwrap();
    dirty.push_strs(&mut sy, &["a", "2"]).unwrap();
    let fd = fd::Fd::from_names(&schema, ["k"], ["v"]).unwrap();
    let seeds = fixrules::generation::seed_rules_from_violations(&dirty, &fd, &[master]);
    assert!(seeds.is_empty());
}

#[test]
fn rule_against_every_attribute_width() {
    // Schemas at the 128-attribute cap still work end to end.
    let names: Vec<String> = (0..128).map(|i| format!("a{i}")).collect();
    let schema = Schema::new("Wide", names).unwrap();
    let mut sy = SymbolTable::new();
    let mut rules = RuleSet::new(schema.clone());
    // Evidence on the first and last attributes, repairing the middle.
    let ev_first = ("a0", "k");
    let ev_last = ("a127", "k");
    rules
        .push_named(&mut sy, &[ev_first, ev_last], "a64", &["bad"], "good")
        .unwrap();
    let mut row: Vec<&str> = vec!["-"; 128];
    row[0] = "k";
    row[127] = "k";
    row[64] = "bad";
    let mut t = Table::new(schema.clone());
    t.push_strs(&mut sy, &row).unwrap();
    let index = LRepairIndex::build(&rules);
    let out = lrepair_table(&rules, &index, &mut t);
    assert_eq!(out.total_updates(), 1);
    assert_eq!(sy.resolve(t.cell(0, schema.attr("a64").unwrap())), "good");
}

#[test]
fn single_row_and_single_rule_minimal_cases() {
    let schema = Schema::new("T", ["k", "v"]).unwrap();
    let mut sy = SymbolTable::new();
    let mut rules = RuleSet::new(schema.clone());
    rules
        .push_named(&mut sy, &[("k", "a")], "v", &["1"], "2")
        .unwrap();
    // Empty table.
    let mut empty = Table::new(schema.clone());
    let index = LRepairIndex::build(&rules);
    assert_eq!(lrepair_table(&rules, &index, &mut empty).total_updates(), 0);
    // One matching row.
    let mut one = Table::new(schema.clone());
    one.push_strs(&mut sy, &["a", "1"]).unwrap();
    assert_eq!(lrepair_table(&rules, &index, &mut one).total_updates(), 1);
    // Rule with evidence value never present.
    let phi = FixingRule::from_named(&schema, &mut sy, &[("k", "zz")], "v", &["1"], "3").unwrap();
    let mut rs2 = RuleSet::new(schema.clone());
    rs2.push(phi);
    let index2 = LRepairIndex::build(&rs2);
    let mut again = one.clone();
    assert_eq!(lrepair_table(&rs2, &index2, &mut again).total_updates(), 0);
}
