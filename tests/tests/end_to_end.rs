//! End-to-end pipeline tests across crates: generate → corrupt → seed rules
//! → resolve → repair → score, on both synthetic datasets, with all repair
//! drivers agreeing and CSV persistence round-tripping.

use baselines::{csm_repair, edit_repair, heu_repair, EditRuleSet};
use datagen::noise::{inject, NoiseConfig};
use eval::rules::{build_ruleset, RuleGenConfig};
use eval::score;
use fixrules::repair::{crepair_table, lrepair_table, par_lrepair_table, LRepairIndex};

fn pipeline(
    mut dataset: datagen::Dataset,
    target_rules: usize,
) -> (datagen::Dataset, relation::Table, fixrules::RuleSet) {
    let attrs = dataset.constrained_attrs();
    let mut dirty = dataset.clean.clone();
    inject(
        &mut dirty,
        &mut dataset.symbols,
        &attrs,
        NoiseConfig {
            rate: 0.10,
            typo_fraction: 0.5,
            seed: 99,
        },
    );
    let (rules, _) = build_ruleset(
        &mut dataset,
        &dirty,
        RuleGenConfig {
            target: target_rules,
            seed: 99,
            enrich_factor: 1.0,
        },
    );
    (dataset, dirty, rules)
}

#[test]
fn hosp_pipeline_repairs_with_high_precision() {
    let (dataset, dirty, rules) = pipeline(datagen::hosp::generate(4_000, 31), 150);
    assert!(rules.check_consistency().is_consistent());
    let index = LRepairIndex::build(&rules);
    let mut repaired = dirty.clone();
    let outcome = lrepair_table(&rules, &index, &mut repaired);
    assert!(outcome.total_updates() > 0);
    let acc = score(&dataset.clean, &dirty, &repaired);
    assert!(acc.precision() > 0.85, "{acc:?}");
    assert!(acc.recall() > 0.05, "{acc:?}");
}

#[test]
fn all_three_repair_drivers_agree_on_hosp() {
    let (_dataset, dirty, rules) = pipeline(datagen::hosp::generate(2_000, 32), 100);
    let index = LRepairIndex::build(&rules);
    let mut by_chase = dirty.clone();
    let mut by_linear = dirty.clone();
    let mut by_parallel = dirty.clone();
    let oc = crepair_table(&rules, &mut by_chase);
    let ol = lrepair_table(&rules, &index, &mut by_linear);
    let op = par_lrepair_table(&rules, &index, &mut by_parallel, 4);
    assert_eq!(by_chase.diff_cells(&by_linear).unwrap(), 0);
    assert_eq!(by_chase.diff_cells(&by_parallel).unwrap(), 0);
    assert_eq!(oc.total_updates(), ol.total_updates());
    assert_eq!(ol.total_updates(), op.total_updates());
}

#[test]
fn repair_is_idempotent_for_oracle_coherent_rules() {
    // Idempotence across *independent* repair runs is not guaranteed in
    // general (a fix is a fixpoint only w.r.t. its accumulated assured
    // set), but it does hold for rule sets whose facts come from one
    // coherent master oracle: rules reachable through each other's facts
    // agree on the target values, so a second run finds nothing to do.
    let (_dataset, dirty, rules) = pipeline(datagen::uis::generate(2_000, 33), 60);
    let index = LRepairIndex::build(&rules);
    let mut once = dirty.clone();
    lrepair_table(&rules, &index, &mut once);
    let mut twice = once.clone();
    let second = lrepair_table(&rules, &index, &mut twice);
    assert_eq!(second.total_updates(), 0);
    assert_eq!(once.diff_cells(&twice).unwrap(), 0);
}

#[test]
fn fix_has_higher_precision_than_heuristics_and_automated_edit() {
    let (mut dataset, dirty, rules) = pipeline(datagen::hosp::generate(3_000, 34), 120);
    let index = LRepairIndex::build(&rules);
    let mut fixed = dirty.clone();
    lrepair_table(&rules, &index, &mut fixed);
    let fix = score(&dataset.clean, &dirty, &fixed);

    let mut heu_t = dirty.clone();
    {
        let datagen::Dataset { symbols, fds, .. } = &mut dataset;
        heu_repair(&mut heu_t, fds, 5, symbols);
    }
    let heu = score(&dataset.clean, &dirty, &heu_t);

    let mut csm_t = dirty.clone();
    csm_repair(&mut csm_t, &dataset.fds, 10, 7);
    let csm = score(&dataset.clean, &dirty, &csm_t);

    let edits = EditRuleSet::from_fixing_rules(&rules);
    let mut edit_t = dirty.clone();
    edit_repair(&edits, &mut edit_t);
    let edit = score(&dataset.clean, &dirty, &edit_t);

    assert!(
        fix.precision() >= heu.precision(),
        "fix {fix:?} heu {heu:?}"
    );
    assert!(
        fix.precision() >= csm.precision(),
        "fix {fix:?} csm {csm:?}"
    );
    assert!(
        fix.precision() >= edit.precision(),
        "fix {fix:?} edit {edit:?}"
    );
    // Heuristics compute a consistent database; their recall may beat Fix,
    // but the dependable repairs are the high-precision ones.
    assert!(fix.precision() > 0.85);
}

#[test]
fn heuristic_baselines_reach_consistency() {
    let (mut dataset, dirty, _rules) = pipeline(datagen::uis::generate(1_200, 35), 40);
    let mut heu_t = dirty.clone();
    let h = {
        let datagen::Dataset { symbols, fds, .. } = &mut dataset;
        heu_repair(&mut heu_t, fds, 10, symbols)
    };
    assert!(h.consistent, "Heu did not converge: {h:?}");
    let mut csm_t = dirty.clone();
    let c = csm_repair(&mut csm_t, &dataset.fds, 20, 3);
    assert!(c.consistent, "Csm did not converge: {c:?}");
}

#[test]
fn csv_round_trip_preserves_repair_results() {
    let (dataset, dirty, rules) = pipeline(datagen::uis::generate(500, 36), 30);
    let index = LRepairIndex::build(&rules);
    let mut repaired = dirty.clone();
    lrepair_table(&rules, &index, &mut repaired);

    let mut buf = Vec::new();
    relation::csv_io::write_csv(&mut buf, &repaired, &dataset.symbols).unwrap();
    let mut sy2 = relation::SymbolTable::new();
    let loaded = relation::csv_io::read_csv(buf.as_slice(), "uis", &mut sy2).unwrap();
    assert_eq!(loaded.len(), repaired.len());
    for i in (0..repaired.len()).step_by(37) {
        assert_eq!(
            repaired.row_strs(&dataset.symbols, i),
            loaded.row_strs(&sy2, i)
        );
    }
}

#[test]
fn pipeline_is_deterministic_per_seed() {
    let run = || {
        let (dataset, dirty, rules) = pipeline(datagen::uis::generate(800, 37), 40);
        let index = LRepairIndex::build(&rules);
        let mut repaired = dirty.clone();
        lrepair_table(&rules, &index, &mut repaired);
        let acc = score(&dataset.clean, &dirty, &repaired);
        (rules.len(), acc.updates, acc.corrected, acc.errors)
    };
    assert_eq!(run(), run());
}

#[test]
fn truncated_rule_prefixes_never_lose_consistency() {
    // The |Σ| sweeps rely on prefixes of a consistent set being consistent
    // (consistency is pairwise, so any subset of a consistent set is
    // consistent).
    let (_dataset, _dirty, rules) = pipeline(datagen::hosp::generate(1_500, 38), 80);
    for k in [1, 10, 40, rules.len()] {
        let mut prefix = rules.clone();
        prefix.truncate(k);
        assert!(prefix.check_consistency().is_consistent(), "prefix {k}");
    }
}
