//! Empty library target; the integration suites live in `tests/tests/`.
