//! Rule authoring workflow: consistency checking, conflict resolution, and
//! implication analysis (§4–§5).
//!
//! Reenacts Example 8: the over-broad rule φ'1 (negative patterns extended
//! with Tokyo) conflicts with φ3; the workflow detects the conflict with
//! both checkers, shows the witness tuple r3, applies the expert fix
//! (remove Tokyo), and finally uses the implication test to prune a
//! redundant rule.
//!
//! ```text
//! cargo run -p examples --bin rule_authoring
//! ```

use fixrules::consistency::resolve::{ensure_consistent, Strategy};
use fixrules::consistency::{is_consistent_characterize, is_consistent_enumerate};
use fixrules::implication::{implies, ImplicationOutcome};
use fixrules::{FixingRule, RuleSet};
use relation::{Schema, SymbolTable};

fn main() {
    let schema = Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap();
    let mut sy = SymbolTable::new();

    // φ'1 (over-broad: Tokyo added to the negative patterns), φ2, φ3.
    let mut rules = RuleSet::new(schema.clone());
    rules
        .push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong", "Tokyo"],
            "Beijing",
        )
        .unwrap();
    rules
        .push_named(
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
    rules
        .push_named(
            &mut sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();

    println!("authored rules:");
    for (id, rule) in rules.iter() {
        println!("  [{}] {}", id.0, rule.display(&schema, &sy));
    }

    // Step 1 of the §5.1 workflow: check with both algorithms.
    let by_charac = is_consistent_characterize(&rules, usize::MAX);
    let by_enum = is_consistent_enumerate(&rules, usize::MAX);
    assert_eq!(by_charac.is_consistent(), by_enum.is_consistent());
    println!("\nisConsist_r: {} conflict(s)", by_charac.conflicts.len());
    println!("isConsist_t: {} conflict(s)", by_enum.conflicts.len());

    for conflict in &by_enum.conflicts {
        println!(
            "  rules {} and {} are inconsistent ({:?})",
            conflict.first.0, conflict.second.0, conflict.case
        );
        if let Some(witness) = &conflict.witness {
            let rendered: Vec<String> = witness
                .iter()
                .map(|&s| sy.try_resolve(s).unwrap_or("_").to_string())
                .collect();
            println!("  witness tuple (Example 8's r3): {rendered:?}");
        }
    }

    // Step 2: the expert fix — shrink negative patterns.
    let log = ensure_consistent(&mut rules, Strategy::ShrinkNegatives);
    println!(
        "\nexpert resolution: {} negative pattern(s) removed, {} rule(s) removed",
        log.negatives_removed(),
        log.rules_removed()
    );
    println!("rules after resolution:");
    for (id, rule) in rules.iter() {
        println!("  [{}] {}", id.0, rule.display(&schema, &sy));
    }
    assert!(rules.check_consistency().is_consistent());

    // §4.3: implication — a narrower duplicate is redundant.
    let narrower = FixingRule::from_named(
        &schema,
        &mut sy,
        &[("country", "China")],
        "capital",
        &["Shanghai"],
        "Beijing",
    )
    .unwrap();
    match implies(&rules, &narrower, 1 << 22) {
        ImplicationOutcome::Implied => {
            println!("\nimplication: the narrower China/Shanghai rule is implied — pruned")
        }
        other => println!("\nimplication: unexpected outcome {other:?}"),
    }

    // A genuinely new rule is not implied and would be kept.
    let new_rule = FixingRule::from_named(
        &schema,
        &mut sy,
        &[("country", "Japan")],
        "capital",
        &["Osaka", "Kyoto"],
        "Tokyo",
    )
    .unwrap();
    match implies(&rules, &new_rule, 1 << 22) {
        ImplicationOutcome::NotImplied { .. } => {
            println!("implication: the Japan/capital rule adds coverage — kept")
        }
        other => println!("implication: unexpected outcome {other:?}"),
    }
}
