//! Hospital-data cleaning at scale — the paper's hosp workload (§7.1).
//!
//! Generates an FD-consistent hosp table, injects 10% noise (half typos,
//! half active-domain errors), runs the full §7.1 rule-generation pipeline,
//! repairs with sequential and parallel `lRepair`, and reports
//! precision/recall against the ground truth. Optionally dumps the dirty
//! and repaired tables as CSV.
//!
//! ```text
//! cargo run --release -p examples --bin hosp_cleaning [rows] [rules] [out_dir]
//! ```

use std::time::Instant;

use datagen::noise::{inject, NoiseConfig};
use eval::rules::{build_ruleset, RuleGenConfig};
use eval::score;
use fixrules::repair::{par_lrepair_table, LRepairIndex};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let target_rules: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(500);
    let out_dir = args.get(2).cloned();

    println!("generating hosp with {rows} rows...");
    let mut dataset = datagen::hosp::generate(rows, 42);
    let attrs = dataset.constrained_attrs();
    println!(
        "  schema {} ({} attrs, {} FD-covered), {} FDs",
        dataset.schema.name(),
        dataset.schema.arity(),
        attrs.len(),
        dataset.fds.len()
    );
    for fd in &dataset.fds {
        println!("    {}", fd.display(&dataset.schema));
    }

    let mut dirty = dataset.clean.clone();
    let errors = inject(
        &mut dirty,
        &mut dataset.symbols,
        &attrs,
        NoiseConfig {
            rate: 0.10,
            typo_fraction: 0.5,
            seed: 7,
        },
    );
    println!("injected {} errors (10% noise, 50% typos)", errors.len());

    let t0 = Instant::now();
    let (rules, genreport) = build_ruleset(
        &mut dataset,
        &dirty,
        RuleGenConfig {
            target: target_rules,
            seed: 42,
            enrich_factor: 1.0,
        },
    );
    println!(
        "generated {} consistent fixing rules in {:.1?} ({} seeded from violations, {} resolution actions)",
        rules.len(),
        t0.elapsed(),
        genreport.seeded,
        genreport.resolution_actions
    );

    let t1 = Instant::now();
    let index = LRepairIndex::build(&rules);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut repaired = dirty.clone();
    let outcome = par_lrepair_table(&rules, &index, &mut repaired, threads);
    println!(
        "lRepair({} threads): {} updates on {} rows in {:.1?}",
        threads,
        outcome.total_updates(),
        outcome.rows_touched(),
        t1.elapsed()
    );

    let acc = score(&dataset.clean, &dirty, &repaired);
    println!(
        "precision {:.4}  recall {:.4}  f1 {:.4}  ({} corrected / {} updated / {} errors)",
        acc.precision(),
        acc.recall(),
        acc.f1(),
        acc.corrected,
        acc.updates,
        acc.errors
    );

    if let Some(dir) = out_dir {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir).expect("create out dir");
        relation::csv_io::write_csv_file(dir.join("hosp_dirty.csv"), &dirty, &dataset.symbols)
            .expect("write dirty csv");
        relation::csv_io::write_csv_file(
            dir.join("hosp_repaired.csv"),
            &repaired,
            &dataset.symbols,
        )
        .expect("write repaired csv");
        println!(
            "wrote hosp_dirty.csv / hosp_repaired.csv under {}",
            dir.display()
        );
    }
}
