//! Examples are binaries; see the repository `examples/` directory.
