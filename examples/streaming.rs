//! Streaming repair: clean a CSV of arbitrary size in one pass with
//! constant memory — the per-tuple nature of fixing rules means no table
//! ever needs to be materialised.
//!
//! Generates a uis dataset, writes it (dirtied) to a CSV file, builds rules
//! from it, then streams `dirty.csv → repaired.csv`.
//!
//! ```text
//! cargo run --release -p examples --bin streaming [rows] [out_dir]
//! ```

use std::time::Instant;

use datagen::noise::{inject, NoiseConfig};
use eval::rules::{build_ruleset, RuleGenConfig};
use fixrules::io::parse_rules;
use fixrules::repair::{stream_repair_csv, LRepairIndex};
use relation::SymbolTable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let out_dir = args.get(1).cloned().unwrap_or_else(|| {
        std::env::temp_dir()
            .join("fixrules_streaming")
            .display()
            .to_string()
    });
    let dir = std::path::Path::new(&out_dir);
    std::fs::create_dir_all(dir).expect("create out dir");

    // 1. Produce a dirty CSV on disk plus a rule file, as a user would have.
    let mut dataset = datagen::uis::generate(rows, 11);
    let attrs = dataset.constrained_attrs();
    let mut dirty = dataset.clean.clone();
    let errors = inject(
        &mut dirty,
        &mut dataset.symbols,
        &attrs,
        NoiseConfig::default(),
    );
    let dirty_path = dir.join("uis_dirty.csv");
    relation::csv_io::write_csv_file(&dirty_path, &dirty, &dataset.symbols)
        .expect("write dirty csv");
    let (rules, _) = build_ruleset(
        &mut dataset,
        &dirty,
        RuleGenConfig {
            target: 100,
            seed: 11,
            enrich_factor: 1.0,
        },
    );
    let rules_path = dir.join("uis_rules.frl");
    std::fs::write(
        &rules_path,
        fixrules::io::format_rules(&rules, &dataset.symbols),
    )
    .expect("write rules");
    println!(
        "wrote {} ({} rows, {} injected errors) and {} ({} rules)",
        dirty_path.display(),
        rows,
        errors.len(),
        rules_path.display(),
        rules.len()
    );

    // 2. Stream-repair the file as an independent consumer: fresh interner,
    // schema from the CSV header, rules parsed from the rule file.
    let mut symbols = SymbolTable::new();
    let header_table =
        relation::csv_io::read_csv_file(&dirty_path, "uis", &mut symbols).expect("read header");
    let text = std::fs::read_to_string(&rules_path).expect("read rules");
    let rules = parse_rules(&text, header_table.schema(), &mut symbols).expect("parse rules");
    assert!(rules.check_consistency().is_consistent());
    let index = LRepairIndex::build(&rules);

    let repaired_path = dir.join("uis_repaired.csv");
    let reader = std::fs::File::open(&dirty_path).expect("open dirty csv");
    let writer = std::io::BufWriter::new(
        std::fs::File::create(&repaired_path).expect("create repaired csv"),
    );
    let t0 = Instant::now();
    let stats =
        stream_repair_csv(&rules, &index, &mut symbols, reader, writer).expect("stream repair");
    println!(
        "streamed {} rows in {:.1?}: {} updates on {} rows -> {}",
        stats.rows,
        t0.elapsed(),
        stats.updates,
        stats.rows_touched,
        repaired_path.display()
    );
}
