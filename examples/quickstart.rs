//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Travel table of Fig 1 (four tuples, four injected errors),
//! declares the fixing rules φ1–φ4 of Fig 3/§6.2, checks their consistency,
//! and repairs the table with `lRepair`, printing the Fig 8 walk-through.
//!
//! ```text
//! cargo run -p examples --bin quickstart
//! ```

use fixrules::repair::{lrepair_table, LRepairIndex};
use fixrules::RuleSet;
use relation::{Schema, SymbolTable, Table};

fn main() {
    // Travel(name, country, capital, city, conf) — Example 1.
    let schema = Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap();
    let mut symbols = SymbolTable::new();

    // Fig 1: r2.capital, r2.city, r3.country and r4.capital are wrong.
    let mut table = Table::new(schema.clone());
    for row in [
        ["George", "China", "Beijing", "Beijing", "SIGMOD"],
        ["Ian", "China", "Shanghai", "Hongkong", "ICDE"],
        ["Peter", "China", "Tokyo", "Tokyo", "ICDE"],
        ["Mike", "Canada", "Toronto", "Toronto", "VLDB"],
    ] {
        table.push_strs(&mut symbols, &row).unwrap();
    }

    // φ1–φ4.
    let mut rules = RuleSet::new(schema.clone());
    rules
        .push_named(
            &mut symbols,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
    rules
        .push_named(
            &mut symbols,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
    rules
        .push_named(
            &mut symbols,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();
    rules
        .push_named(
            &mut symbols,
            &[("capital", "Beijing"), ("conf", "ICDE")],
            "city",
            &["Hongkong"],
            "Shanghai",
        )
        .unwrap();

    println!("rules:");
    for (id, rule) in rules.iter() {
        println!("  φ{}: {}", id.0 + 1, rule.display(&schema, &symbols));
    }

    // §5: never repair with unchecked rules.
    let report = rules.check_consistency();
    assert!(report.is_consistent());
    println!(
        "\nconsistency: OK ({} rule pairs checked)\n",
        report.pairs_checked
    );

    println!("before repair:");
    for i in 0..table.len() {
        println!("  r{}: {:?}", i + 1, table.row_strs(&symbols, i));
    }

    // §6.2: lRepair with inverted lists + hash counters.
    let index = LRepairIndex::build(&rules);
    let outcome = lrepair_table(&rules, &index, &mut table);

    println!("\napplied updates (Fig 8):");
    for u in &outcome.updates {
        println!(
            "  r{}.{}: {} -> {}   (φ{})",
            u.row + 1,
            schema.attr_name(u.attr),
            symbols.resolve(u.old),
            symbols.resolve(u.new),
            u.rule.0 + 1
        );
    }

    println!("\nafter repair:");
    for i in 0..table.len() {
        println!("  r{}: {:?}", i + 1, table.row_strs(&symbols, i));
    }

    assert_eq!(outcome.total_updates(), 4);
    println!("\nall four errors of Fig 1 corrected ✓");
}
