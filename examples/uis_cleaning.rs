//! Mailing-list cleaning with baseline comparison — the paper's uis
//! workload (§7.1), Fix vs Heu vs Csm in one run.
//!
//! ```text
//! cargo run --release -p examples --bin uis_cleaning [rows] [rules]
//! ```

use baselines::{csm_repair, heu_repair};
use datagen::noise::{inject, NoiseConfig};
use eval::rules::{build_ruleset, RuleGenConfig};
use eval::score;
use fixrules::repair::{lrepair_table, LRepairIndex};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(15_000);
    let target_rules: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(100);

    println!("generating uis with {rows} rows...");
    let mut dataset = datagen::uis::generate(rows, 2014);
    let attrs = dataset.constrained_attrs();
    let mut dirty = dataset.clean.clone();
    let errors = inject(
        &mut dirty,
        &mut dataset.symbols,
        &attrs,
        NoiseConfig::default(),
    );
    println!("injected {} errors", errors.len());

    let (rules, _) = build_ruleset(
        &mut dataset,
        &dirty,
        RuleGenConfig {
            target: target_rules,
            seed: 2014,
            enrich_factor: 1.0,
        },
    );
    println!("{} consistent fixing rules generated\n", rules.len());

    // Fix.
    let index = LRepairIndex::build(&rules);
    let mut fixed = dirty.clone();
    lrepair_table(&rules, &index, &mut fixed);
    let fix = score(&dataset.clean, &dirty, &fixed);

    // Heu.
    let mut heu_t = dirty.clone();
    heu_repair(&mut heu_t, &dataset.fds, 5, &mut dataset.symbols);
    let heu = score(&dataset.clean, &dirty, &heu_t);

    // Csm.
    let mut csm_t = dirty.clone();
    csm_repair(&mut csm_t, &dataset.fds, 10, 2014);
    let csm = score(&dataset.clean, &dirty, &csm_t);

    println!("algo  precision  recall   updates corrected");
    for (name, acc) in [("Fix", fix), ("Heu", heu), ("Csm", csm)] {
        println!(
            "{name:<5} {:<10.4} {:<8.4} {:<7} {}",
            acc.precision(),
            acc.recall(),
            acc.updates,
            acc.corrected
        );
    }
    println!(
        "\nthe uis dataset has few repeated FD patterns, so recall is low for\n\
         every method (the paper's Fig 10(f)); Fix keeps precision near 1.0\n\
         while the heuristics trade precision for consistency."
    );
}
