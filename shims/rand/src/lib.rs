//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network and no vendored registry, so the
//! workspace ships the small slice of `rand`'s API it actually uses,
//! implemented over xoshiro256** seeded via splitmix64. Determinism per
//! seed is all the callers rely on (every call site uses
//! `StdRng::seed_from_u64`); the exact stream differs from upstream
//! `rand`, which is fine because no test pins upstream sequences.

pub mod rngs {
    /// Deterministic generator: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding constructors (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the xoshiro state; a
        // zero state is unreachable because splitmix64 is a bijection.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        rngs::StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// A type a uniform value can be drawn from (`rand::distributions::Standard`
/// stand-in, folded into the `Rng` trait).
pub trait Standard: Sized {
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

/// A range uniform values can be drawn from (`SampleRange` stand-in).
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from(self, rng: &mut rngs::StdRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // Closed-open sampling is fine here: hitting `end` exactly has
        // negligible probability and callers only need the bounds respected.
        start + f64::sample(rng) * (end - start)
    }
}

/// The user-facing generator trait (`rand::Rng` subset).
pub trait Rng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
    fn gen<T: Standard>(&mut self) -> T;
}

impl Rng for rngs::StdRng {
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample(self) < p
    }

    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

pub mod seq {
    use super::rngs::StdRng;

    /// Slice helpers (`rand::seq::SliceRandom` subset).
    pub trait SliceRandom {
        type Item;
        fn shuffle(&mut self, rng: &mut StdRng);
        fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle(&mut self, rng: &mut StdRng) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u8..=8);
            assert!((5..=8).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let roll: f64 = rng.gen();
            assert!((0.0..1.0).contains(&roll));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = rngs::StdRng::seed_from_u64(17);
        let v = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
