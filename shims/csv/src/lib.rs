//! Offline stand-in for the `csv` crate.
//!
//! The build environment has no network and no vendored registry, so the
//! workspace ships the slice of `csv`'s API it uses: a buffered RFC-4180
//! reader with header handling and strict-arity (`flexible(false)`)
//! enforcement, and a writer that quotes fields containing delimiters,
//! quotes, or newlines. Parsing covers quoted fields, embedded `""`
//! escapes, embedded newlines inside quotes, and both `\n` and `\r\n`
//! record terminators.

use std::fmt;
use std::io::{BufReader, BufWriter, Read, Write};

/// Error type (`csv::Error` stand-in).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CSV error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// One parsed record of string fields (`csv::StringRecord` stand-in).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StringRecord {
    fields: Vec<String>,
}

impl StringRecord {
    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate the fields as `&str`.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        self.fields.iter().map(String::as_str)
    }

    /// Field by position.
    pub fn get(&self, i: usize) -> Option<&str> {
        self.fields.get(i).map(String::as_str)
    }
}

impl<'a> IntoIterator for &'a StringRecord {
    type Item = &'a str;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, String>, fn(&'a String) -> &'a str>;

    fn into_iter(self) -> Self::IntoIter {
        self.fields.iter().map(String::as_str)
    }
}

/// Reader configuration (`csv::ReaderBuilder` stand-in).
#[derive(Debug, Clone)]
pub struct ReaderBuilder {
    has_headers: bool,
    flexible: bool,
}

impl Default for ReaderBuilder {
    fn default() -> Self {
        ReaderBuilder {
            has_headers: true,
            flexible: false,
        }
    }
}

impl ReaderBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the first record is a header row.
    pub fn has_headers(&mut self, yes: bool) -> &mut Self {
        self.has_headers = yes;
        self
    }

    /// Whether records of differing arity are accepted.
    pub fn flexible(&mut self, yes: bool) -> &mut Self {
        self.flexible = yes;
        self
    }

    pub fn from_reader<R: Read>(&self, reader: R) -> Reader<R> {
        Reader {
            input: BufReader::new(reader),
            has_headers: self.has_headers,
            flexible: self.flexible,
            headers: None,
            headers_read: false,
            expected_arity: None,
            buf: Vec::new(),
            buf_pos: 0,
            eof: false,
        }
    }
}

/// Buffered CSV reader (`csv::Reader` stand-in).
#[derive(Debug)]
pub struct Reader<R: Read> {
    input: BufReader<R>,
    has_headers: bool,
    flexible: bool,
    headers: Option<StringRecord>,
    headers_read: bool,
    expected_arity: Option<usize>,
    buf: Vec<u8>,
    buf_pos: usize,
    eof: bool,
}

impl<R: Read> Reader<R> {
    /// The header record (reads it on first call).
    pub fn headers(&mut self) -> Result<&StringRecord, Error> {
        if !self.headers_read {
            self.headers_read = true;
            self.headers = self.read_raw_record()?;
            if let Some(h) = &self.headers {
                self.expected_arity = Some(h.len());
            }
        }
        // Upstream returns an empty record at EOF rather than erroring.
        if self.headers.is_none() {
            self.headers = Some(StringRecord::default());
        }
        Ok(self.headers.as_ref().unwrap())
    }

    /// Iterate the data records.
    pub fn records(&mut self) -> RecordsIter<'_, R> {
        RecordsIter { rdr: self }
    }

    fn next_record(&mut self) -> Option<Result<StringRecord, Error>> {
        if self.has_headers && !self.headers_read {
            if let Err(e) = self.headers() {
                return Some(Err(e));
            }
        }
        match self.read_raw_record() {
            Err(e) => Some(Err(e)),
            Ok(None) => None,
            Ok(Some(rec)) => {
                if !self.flexible {
                    let expected = *self.expected_arity.get_or_insert(rec.len());
                    if rec.len() != expected {
                        return Some(Err(Error::new(format!(
                            "record has {} fields, but the previous record has {expected}",
                            rec.len()
                        ))));
                    }
                }
                Some(Ok(rec))
            }
        }
    }

    #[inline]
    fn next_byte(&mut self) -> Result<Option<u8>, Error> {
        if self.buf_pos == self.buf.len() {
            if self.eof {
                return Ok(None);
            }
            self.buf.resize(64 * 1024, 0);
            let n = self.input.read(&mut self.buf)?;
            self.buf.truncate(n);
            self.buf_pos = 0;
            if n == 0 {
                self.eof = true;
                return Ok(None);
            }
        }
        let b = self.buf[self.buf_pos];
        self.buf_pos += 1;
        Ok(Some(b))
    }

    /// Parse one record, or `None` at end of input. Handles quoted fields,
    /// doubled-quote escapes, embedded newlines in quotes, and `\r\n`.
    fn read_raw_record(&mut self) -> Result<Option<StringRecord>, Error> {
        let mut fields: Vec<String> = Vec::new();
        let mut field: Vec<u8> = Vec::new();
        let mut in_quotes = false;
        let mut saw_any = false;
        loop {
            let Some(b) = self.next_byte()? else {
                if in_quotes {
                    return Err(Error::new("unterminated quoted field"));
                }
                if !saw_any {
                    return Ok(None);
                }
                fields.push(into_string(field)?);
                return Ok(Some(StringRecord { fields }));
            };
            saw_any = true;
            if in_quotes {
                if b == b'"' {
                    // Either a closing quote or the first half of a "" escape.
                    match self.peek_byte()? {
                        Some(b'"') => {
                            self.buf_pos += 1;
                            field.push(b'"');
                        }
                        _ => in_quotes = false,
                    }
                } else {
                    field.push(b);
                }
                continue;
            }
            match b {
                b'"' if field.is_empty() => in_quotes = true,
                b',' => fields.push(into_string(std::mem::take(&mut field))?),
                b'\n' => {
                    fields.push(into_string(field)?);
                    return Ok(Some(StringRecord { fields }));
                }
                b'\r' => {
                    if self.peek_byte()? == Some(b'\n') {
                        self.buf_pos += 1;
                    }
                    fields.push(into_string(field)?);
                    return Ok(Some(StringRecord { fields }));
                }
                other => field.push(other),
            }
        }
    }

    #[inline]
    fn peek_byte(&mut self) -> Result<Option<u8>, Error> {
        if self.buf_pos == self.buf.len() && !self.eof {
            // Refill, then rewind so the byte is only peeked.
            let b = self.next_byte()?;
            if b.is_some() {
                self.buf_pos -= 1;
            }
            return Ok(b);
        }
        Ok(self.buf.get(self.buf_pos).copied())
    }
}

fn into_string(bytes: Vec<u8>) -> Result<String, Error> {
    String::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8 in field: {e}")))
}

/// Iterator over data records.
pub struct RecordsIter<'r, R: Read> {
    rdr: &'r mut Reader<R>,
}

impl<R: Read> Iterator for RecordsIter<'_, R> {
    type Item = Result<StringRecord, Error>;

    fn next(&mut self) -> Option<Self::Item> {
        self.rdr.next_record()
    }
}

/// Buffered CSV writer (`csv::Writer` stand-in).
#[derive(Debug)]
pub struct Writer<W: Write> {
    out: BufWriter<W>,
}

impl<W: Write> Writer<W> {
    pub fn from_writer(writer: W) -> Self {
        Writer {
            out: BufWriter::new(writer),
        }
    }

    /// Write one record, quoting fields that need it.
    pub fn write_record<I, T>(&mut self, record: I) -> Result<(), Error>
    where
        I: IntoIterator<Item = T>,
        T: AsRef<str>,
    {
        let mut first = true;
        for field in record {
            if !first {
                self.out.write_all(b",")?;
            }
            first = false;
            let f = field.as_ref();
            if f.contains(['"', ',', '\n', '\r']) {
                self.out.write_all(b"\"")?;
                self.out.write_all(f.replace('"', "\"\"").as_bytes())?;
                self.out.write_all(b"\"")?;
            } else {
                self.out.write_all(f.as_bytes())?;
            }
        }
        self.out.write_all(b"\n")?;
        Ok(())
    }

    pub fn flush(&mut self) -> Result<(), Error> {
        self.out.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(text: &str) -> (StringRecord, Vec<StringRecord>) {
        let mut rdr = ReaderBuilder::new()
            .has_headers(true)
            .flexible(false)
            .from_reader(text.as_bytes());
        let headers = rdr.headers().unwrap().clone();
        let records: Vec<_> = rdr.records().map(|r| r.unwrap()).collect();
        (headers, records)
    }

    #[test]
    fn plain_fields_and_headers() {
        let (h, recs) = read_all("a,b,c\n1,2,3\n4,5,6\n");
        assert_eq!(h.iter().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].iter().collect::<Vec<_>>(), vec!["4", "5", "6"]);
    }

    #[test]
    fn quoted_fields_with_commas_newlines_and_escapes() {
        let (_, recs) = read_all("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n\"line1\nline2\",z\n");
        assert_eq!(recs[0].get(0), Some("x,y"));
        assert_eq!(recs[0].get(1), Some("he said \"hi\""));
        assert_eq!(recs[1].get(0), Some("line1\nline2"));
    }

    #[test]
    fn crlf_terminators() {
        let (_, recs) = read_all("a,b\r\n1,2\r\n");
        assert_eq!(recs[0].iter().collect::<Vec<_>>(), vec!["1", "2"]);
    }

    #[test]
    fn missing_final_newline() {
        let (_, recs) = read_all("a,b\n1,2");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get(1), Some("2"));
    }

    #[test]
    fn ragged_rows_rejected_when_strict() {
        let mut rdr = ReaderBuilder::new()
            .has_headers(true)
            .flexible(false)
            .from_reader("a,b\n1\n".as_bytes());
        rdr.headers().unwrap();
        let results: Vec<_> = rdr.records().collect();
        assert!(results[0].is_err());
    }

    #[test]
    fn ragged_rows_allowed_when_flexible() {
        let mut rdr = ReaderBuilder::new()
            .has_headers(true)
            .flexible(true)
            .from_reader("a,b\n1\n1,2,3\n".as_bytes());
        rdr.headers().unwrap();
        let results: Vec<_> = rdr.records().map(|r| r.unwrap()).collect();
        assert_eq!(results[0].len(), 1);
        assert_eq!(results[1].len(), 3);
    }

    #[test]
    fn unterminated_quote_rejected() {
        let mut rdr = ReaderBuilder::new().from_reader("a,b\n\"oops,2\n".as_bytes());
        rdr.headers().unwrap();
        assert!(rdr.records().next().unwrap().is_err());
    }

    #[test]
    fn writer_round_trips_tricky_fields() {
        let mut out = Vec::new();
        {
            let mut w = Writer::from_writer(&mut out);
            w.write_record(["addr", "note"]).unwrap();
            w.write_record(["12 Main, Apt 4", "said \"hi\"\nbye"])
                .unwrap();
            w.flush().unwrap();
        }
        let text = String::from_utf8(out.clone()).unwrap();
        let (h, recs) = read_all(&text);
        assert_eq!(h.iter().collect::<Vec<_>>(), vec!["addr", "note"]);
        assert_eq!(recs[0].get(0), Some("12 Main, Apt 4"));
        assert_eq!(recs[0].get(1), Some("said \"hi\"\nbye"));
    }

    #[test]
    fn empty_input_yields_no_records() {
        let mut rdr = ReaderBuilder::new().from_reader("".as_bytes());
        assert_eq!(rdr.headers().unwrap().len(), 0);
        assert!(rdr.records().next().is_none());
    }
}
