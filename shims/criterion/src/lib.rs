//! Minimal stand-in for the `criterion` bench harness.
//!
//! The build environment is offline, so this workspace ships the slice of
//! criterion's API that the `bench` crate actually uses: groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! throughput annotation, and the `criterion_group!` / `criterion_main!`
//! macros. Statistics are deliberately simple — each sample times one
//! invocation and the report carries min/median/mean/max over samples.
//!
//! Unlike upstream criterion, every group writes a machine-readable
//! `BENCH_<group>.json` report (via [`obs::Json`], so the schema matches
//! the observability snapshots) into `$BENCH_OUT_DIR` (default
//! `results/`), and a human-readable line per benchmark to stdout.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

use obs::{Json, MetricsRegistry};

/// Re-export so `criterion::black_box` keeps working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The shim times one
/// invocation per sample regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation attached to a group; reported as
/// `elements_per_sec` in the JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times the body of one benchmark; handed to the closure by
/// [`BenchmarkGroup::bench_function`] and friends.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<u64>,
    metrics: MetricsRegistry,
}

impl Bencher {
    /// A per-benchmark metrics registry (a shim extension, not upstream
    /// criterion API): hand `obs::MetricsObserver::new(b.metrics())` to an
    /// `*_observed` entry point and the snapshot is embedded under
    /// `"metrics"` in this benchmark's `BENCH_<group>.json` entry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Time `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.samples_ns.clear();
        // One untimed warmup pass.
        std_black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples_ns.push(elapsed_ns(start));
        }
    }

    /// Time `routine` on a fresh `setup()` input per sample; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples_ns.clear();
        std_black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.samples_ns.push(elapsed_ns(start));
        }
    }

    /// Same as [`Bencher::iter_batched`]; the shim never amortizes batches.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.samples_ns.clear();
        std_black_box(routine(&mut setup()));
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            std_black_box(routine(&mut input));
            self.samples_ns.push(elapsed_ns(start));
        }
    }
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One benchmark's aggregated timings.
#[derive(Debug, Clone)]
struct BenchReport {
    id: String,
    samples: usize,
    mean_ns: f64,
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// Snapshot of the per-bench [`Bencher::metrics`] registry; omitted
    /// when the benchmark recorded nothing into it.
    metrics: Option<Json>,
}

impl BenchReport {
    fn from_samples(id: String, mut samples_ns: Vec<u64>, metrics: Option<Json>) -> Self {
        samples_ns.sort_unstable();
        let n = samples_ns.len().max(1);
        let sum: u128 = samples_ns.iter().map(|&v| v as u128).sum();
        BenchReport {
            id,
            samples: samples_ns.len(),
            mean_ns: sum as f64 / n as f64,
            median_ns: samples_ns.get(samples_ns.len() / 2).copied().unwrap_or(0),
            min_ns: samples_ns.first().copied().unwrap_or(0),
            max_ns: samples_ns.last().copied().unwrap_or(0),
            metrics,
        }
    }

    fn to_json(&self, throughput: Option<Throughput>) -> Json {
        let mut obj = Json::Null;
        obj.set("id", self.id.as_str());
        obj.set("samples", self.samples);
        obj.set("mean_ns", self.mean_ns);
        obj.set("median_ns", self.median_ns);
        obj.set("min_ns", self.min_ns);
        obj.set("max_ns", self.max_ns);
        if self.mean_ns > 0.0 {
            match throughput {
                Some(Throughput::Elements(elems)) => {
                    obj.set("elements_per_sec", elems as f64 * 1e9 / self.mean_ns);
                }
                Some(Throughput::Bytes(bytes)) => {
                    obj.set("bytes_per_sec", bytes as f64 * 1e9 / self.mean_ns);
                }
                None => {}
            }
        }
        if let Some(metrics) = &self.metrics {
            obj.set("metrics", metrics.clone());
        }
        obj
    }
}

/// A registry snapshot with any recorded data; `None` when every section
/// (counters/gauges/histograms) is empty.
fn non_empty_snapshot(registry: &MetricsRegistry) -> Option<Json> {
    let snapshot = registry.snapshot();
    let has_data = ["counters", "gauges", "histograms"].iter().any(|section| {
        snapshot
            .get(section)
            .and_then(Json::as_obj)
            .is_some_and(|m| !m.is_empty())
    });
    has_data.then_some(snapshot)
}

/// A named collection of benchmarks sharing a throughput annotation;
/// writes `BENCH_<name>.json` on [`BenchmarkGroup::finish`] (or drop).
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    reports: Vec<BenchReport>,
    finished: bool,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.id, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::with_capacity(self.sample_size),
            metrics: MetricsRegistry::new(),
        };
        f(&mut bencher);
        let metrics = non_empty_snapshot(&bencher.metrics);
        let report = BenchReport::from_samples(id, bencher.samples_ns, metrics);
        println!(
            "{}/{}: mean {} (min {}, max {}, {} samples)",
            self.name,
            report.id,
            fmt_ns(report.mean_ns),
            fmt_ns(report.min_ns as f64),
            fmt_ns(report.max_ns as f64),
            report.samples,
        );
        self.reports.push(report);
    }

    /// Write the group report. Called implicitly on drop if omitted.
    pub fn finish(mut self) {
        self.write_report();
    }

    fn write_report(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let mut root = Json::Null;
        root.set("group", self.name.as_str());
        if let Some(Throughput::Elements(elems)) = self.throughput {
            root.set("throughput_elements", elems);
        }
        root.set(
            "benchmarks",
            Json::Arr(
                self.reports
                    .iter()
                    .map(|r| r.to_json(self.throughput))
                    .collect(),
            ),
        );
        let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| default_out_dir());
        let file = sanitize(&self.name);
        let path = std::path::Path::new(&dir).join(format!("BENCH_{file}.json"));
        if std::fs::create_dir_all(&dir).is_ok() {
            match std::fs::write(&path, root.to_string_pretty() + "\n") {
                Ok(()) => println!("{}: wrote {}", self.name, path.display()),
                Err(err) => eprintln!("{}: failed to write {}: {err}", self.name, path.display()),
            }
        }
        let _ = &self.criterion; // group lifetime ties reports to the runner
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.write_report();
    }
}

/// `results/` under the workspace root, so every bench writes to one place
/// no matter which package it runs from. Cargo runs bench binaries with the
/// package directory as cwd; the workspace root is the nearest ancestor
/// holding a `Cargo.lock`. Falls back to cwd-relative `results/`.
fn default_out_dir() -> String {
    let start = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let mut dir = start.as_path();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.join("results").to_string_lossy().into_owned();
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return "results".to_string(),
        }
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The bench runner configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Env override mirrors upstream's CLI flag; keeps CI smoke runs fast.
        let sample_size = std::env::var("BENCH_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion { sample_size }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size,
            reports: Vec::new(),
            finished: false,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function("default", f);
        group.finish();
        self
    }
}

/// `criterion_group! { name = benches; config = ...; targets = a, b }` or
/// `criterion_group!(benches, a, b)` — defines `fn benches()` running each
/// target against the configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!(benches)` — the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench`/`--test` harness flags; nothing to parse.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_requested_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("shim_test_iter");
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        // 1 warmup + 5 samples.
        assert_eq!(calls, 6);
        assert_eq!(group.reports.len(), 1);
        assert_eq!(group.reports[0].samples, 5);
        group.finished = true; // skip the report write in unit tests
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim_test_batched");
        let mut setups = 0u32;
        group.bench_with_input(BenchmarkId::new("b", 7), &7usize, |b, &_n| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 8]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 4); // warmup + 3 samples
        assert_eq!(group.reports[0].id, "b/7");
        group.finished = true;
    }

    #[test]
    fn report_statistics_are_ordered() {
        let r = BenchReport::from_samples("x".into(), vec![30, 10, 20], None);
        assert_eq!(r.min_ns, 10);
        assert_eq!(r.median_ns, 20);
        assert_eq!(r.max_ns, 30);
        assert!((r.mean_ns - 20.0).abs() < 1e-9);
        let json = r.to_json(Some(Throughput::Elements(1_000)));
        assert_eq!(json.get("samples").and_then(|v| v.as_i64()), Some(3));
        assert!(json.get("elements_per_sec").is_some());
    }

    #[test]
    fn bencher_metrics_are_embedded_only_when_recorded() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("shim_test_metrics");
        group.bench_function("silent", |b| b.iter(|| 1 + 1));
        group.bench_function("counting", |b| {
            let counter = b.metrics().counter("bench.work");
            b.iter(|| counter.inc())
        });
        assert!(group.reports[0].metrics.is_none());
        let snap = group.reports[1].metrics.as_ref().expect("snapshot");
        assert!(
            snap.get("counters")
                .and_then(|c| c.get("bench.work"))
                .and_then(|v| v.as_i64())
                .is_some_and(|n| n >= 2),
            "{snap}"
        );
        // And the snapshot rides into the JSON report entry.
        let json = group.reports[1].to_json(None);
        assert!(json.get("metrics").is_some());
        group.finished = true;
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("cRepair", 50).id, "cRepair/50");
        assert_eq!(BenchmarkId::from_parameter("hosp").id, "hosp");
        assert_eq!(sanitize("fig13 repair/x"), "fig13_repair_x");
    }
}
