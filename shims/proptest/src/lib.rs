//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network and no vendored registry, so the
//! workspace ships the slice of proptest's API its property tests use:
//! the [`Strategy`] trait with `prop_map`, integer/float range strategies,
//! simple character-class regex string strategies (`"[a-z]{1,4}"`),
//! tuples, `collection::{vec, hash_set}`, `any::<bool>()`, and the
//! `proptest!`/`prop_assert*` macros. Differences from upstream: cases are
//! generated from a fixed seed (fully deterministic runs, no persistence
//! files) and failures report the failing case without shrinking.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Number of cases per property (upstream default is 256).
pub const DEFAULT_CASES: u32 = 64;

/// A generator of values (`proptest::strategy::Strategy` subset).
///
/// Upstream strategies produce value *trees* for shrinking; this stand-in
/// produces plain values.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

/// `&str` strategies are character-class regexes: `"[a-zA-Z0-9 ]{0,12}"`.
/// Supported grammar: one `[...]` class (literals and `a-z` ranges) plus a
/// `{m,n}` or `{n}` repetition; or a plain literal string.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let (chars, min, max) = parse_class_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy `{self}`"));
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Parse `[class]{m,n}` into (alphabet, min, max); a literal string parses
/// as itself repeated exactly once.
fn parse_class_regex(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for c in lo..=hi {
                alphabet.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let reps = &rest[close + 1..];
    let body = reps.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match body.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((alphabet, min, max))
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `any::<T>()` (`proptest::arbitrary` subset).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical strategy.
pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Uniform `bool` strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

pub mod collection {
    use super::*;

    /// Size specification for collection strategies: accepts `a..b`,
    /// `a..=b`, or an exact `usize` (upstream's `SizeRange` conversions).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end_excl: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.start..self.end_excl)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end_excl: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end_excl: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end_excl: n + 1,
            }
        }
    }

    /// `Vec` strategy with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` strategy targeting a size drawn from `len`; when the
    /// element domain is too small the set saturates below the target
    /// (upstream errors after too many rejects; saturating is kinder).
    pub fn hash_set<S>(element: S, len: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            len: len.into(),
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = self.len.sample(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 50 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Per-test driver used by the [`proptest!`] expansion.
pub struct TestRunner {
    seed: u64,
}

impl TestRunner {
    /// Seed derived from the test name so distinct properties explore
    /// distinct streams, deterministically across runs.
    pub fn new(name: &str) -> Self {
        let mut seed = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRunner { seed }
    }

    pub fn cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(n) => n,
            None => DEFAULT_CASES,
        }
    }

    pub fn rng_for_case(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)))
    }
}

/// `proptest!` — each `arg in strategy` binding is generated per case and
/// the body runs [`DEFAULT_CASES`] times with deterministic seeds.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let runner = $crate::TestRunner::new(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..runner.cases() {
                    let mut prop_rng = runner.rng_for_case(case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                    let result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = result {
                        panic!(
                            "property `{}` failed at case {case}/{}: {message}",
                            stringify!($name),
                            runner.cases(),
                        );
                    }
                }
            }
        )*
    };
}

/// Fallible assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fallible equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: `{:?}` == `{:?}`", l, r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l, r,
                ::std::format!($($fmt)*),
            ));
        }
    }};
}

/// Fallible inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: `{:?}` != `{:?}`", l, r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r,
                ::std::format!($($fmt)*),
            ));
        }
    }};
}

/// The usual glob import target.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, y in 0usize..5, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn regex_class_strategies(s in "[a-c]{2,4}", t in "[ -~]{0,10}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.len() <= 10);
            prop_assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn collections_and_tuples(
            v in crate::collection::vec((0u16..128, any::<bool>()), 0..200),
            s in crate::collection::hash_set(0u16..5, 1..3),
        ) {
            prop_assert!(v.len() < 200);
            prop_assert!(!s.is_empty() && s.len() <= 2);
            prop_assert!(s.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_composes(n in (0u32..4).prop_map(|x| x * 10)) {
            prop_assert!(n % 10 == 0 && n <= 30);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let runner = TestRunner::new("x");
        let strat = crate::collection::vec(0u32..1000, 0..50);
        let a: Vec<Vec<u32>> = (0..5)
            .map(|c| strat.generate(&mut runner.rng_for_case(c)))
            .collect();
        let b: Vec<Vec<u32>> = (0..5)
            .map(|c| strat.generate(&mut runner.rng_for_case(c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn failing_property_reports_case() {
        // Expand the macro by hand to observe the Err path.
        let runner = TestRunner::new("fails");
        let mut rng = runner.rng_for_case(0);
        let x = (0u32..10).generate(&mut rng);
        let result: Result<(), String> = (|| {
            prop_assert!(x >= 10, "never true");
            Ok(())
        })();
        assert!(result.is_err());
    }
}
