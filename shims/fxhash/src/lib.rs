//! Offline stand-in for the `fxhash` crate (the Firefox / rustc hasher).
//!
//! [`FxHasher`] folds each 8-byte word of the input into the state with one
//! rotate, one xor and one multiply by a 64-bit odd constant. It is not
//! collision-resistant against adversarial keys, but for the short
//! fixed-width keys on the repair hot path — `(AttrId, Symbol)` pairs,
//! small `Box<[Symbol]>` projections — it beats std's SipHash-1-3 by a wide
//! margin while spreading the low bits well enough for `HashMap`.
//!
//! API surface matches the slice of the real crate this workspace uses:
//! [`FxHashMap`], [`FxHashSet`], [`FxBuildHasher`], [`hash64`].

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The multiplier from FxHash: `(sqrt(5) - 1) / 2 * 2^64`, rounded to odd.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic, word-at-a-time hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s; plug into any std collection.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash one value with [`FxHasher`] (fresh state per call).
#[inline]
pub fn hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash64(&(3u16, 17u32)), hash64(&(3u16, 17u32)));
        assert_eq!(hash64("projection"), hash64("projection"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash64(&(3u16, 17u32)), hash64(&(3u16, 18u32)));
        assert_ne!(hash64(&(3u16, 17u32)), hash64(&(4u16, 17u32)));
        assert_ne!(hash64(&[1u32, 2u32][..]), hash64(&[2u32, 1u32][..]));
    }

    #[test]
    fn byte_stream_chunking_covers_remainders() {
        // 0..=10 byte inputs exercise the exact-chunk and remainder paths.
        // Non-zero bytes: a zero tail is indistinguishable from padding (as
        // in the real crate, where the slice length prefix disambiguates).
        let bytes: Vec<u8> = (1u8..=10).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=bytes.len() {
            let mut h = FxHasher::default();
            h.write(&bytes[..len]);
            assert!(seen.insert(h.finish()), "collision at prefix length {len}");
        }
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<(u16, u32), Vec<u32>> = FxHashMap::default();
        map.entry((1, 2)).or_default().push(7);
        map.entry((1, 2)).or_default().push(8);
        assert_eq!(map[&(1, 2)], vec![7, 8]);
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(42));
        assert!(!set.insert(42));
    }

    #[test]
    fn low_bits_spread_for_sequential_keys() {
        // HashMap uses the low bits for bucketing; sequential symbol ids
        // must not collapse into a few buckets.
        let mut buckets = std::collections::HashSet::new();
        for i in 0u32..256 {
            buckets.insert(hash64(&i) & 0x3f);
        }
        assert!(
            buckets.len() > 48,
            "only {} of 64 buckets hit",
            buckets.len()
        );
    }
}
