#!/usr/bin/env bash
# Offline-safe CI gate: formatting, lints, tests. Everything here runs
# without network access — all dependencies are workspace-local (see
# shims/ and DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "CI green."
