#!/usr/bin/env bash
# Offline-safe CI gate: formatting, lints, tests. Everything here runs
# without network access — all dependencies are workspace-local (see
# shims/ and DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== fixctl lint =="
cargo build -q -p fixctl
FIXCTL=target/debug/fixctl
for f in examples/rulesets/*.frl; do
    echo "-- lint $f (must be clean)"
    "$FIXCTL" lint "$f" --deny warnings
done
for f in examples/lint/*.frl; do
    echo "-- lint $f (must report findings)"
    if "$FIXCTL" lint "$f" --deny warnings >/dev/null; then
        echo "expected lint findings in $f, got none" >&2
        exit 1
    fi
done

echo "CI green."
