#!/usr/bin/env bash
# Offline-safe CI gate: formatting, lints, tests. Everything here runs
# without network access — all dependencies are workspace-local (see
# shims/ and DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== fixctl lint =="
cargo build -q -p fixctl
FIXCTL=target/debug/fixctl
for f in examples/rulesets/*.frl; do
    echo "-- lint $f (must be clean)"
    "$FIXCTL" lint "$f" --deny warnings
done
for f in examples/lint/*.frl; do
    echo "-- lint $f (must report findings)"
    if "$FIXCTL" lint "$f" --deny warnings >/dev/null; then
        echo "expected lint findings in $f, got none" >&2
        exit 1
    fi
done

TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT

echo "== fixctl certify =="
# Whole-set chase certification: every shipped ruleset must earn a green
# certificate (terminating + confluent), even under --deny warnings.
for f in examples/rulesets/*.frl; do
    echo "-- certify $f (must be green)"
    "$FIXCTL" certify "$f" --deny warnings >/dev/null
done
# The conflicting fixture must certify RED with a concrete synthesized
# witness tuple and both divergent end states (FR009).
if "$FIXCTL" certify examples/lint/conflicting.frl > "$TRACE_DIR/certify_conflicting.txt"; then
    echo "expected a red certificate for examples/lint/conflicting.frl" >&2
    exit 1
fi
grep -q 'error\[FR009\]' "$TRACE_DIR/certify_conflicting.txt" \
    || { echo "red certificate missing the FR009 confluence error" >&2; exit 1; }
grep -q 'witness tuple:' "$TRACE_DIR/certify_conflicting.txt" \
    || { echo "FR009 missing the synthesized witness tuple" >&2; exit 1; }
grep -q 'end state under order' "$TRACE_DIR/certify_conflicting.txt" \
    || { echo "FR009 missing the divergent end states" >&2; exit 1; }
echo "-- conflicting.frl rejected with witness tuple and end states"
# Per-rule hygiene problems are lint's business, not the certificate's:
# dead/redundant rules still certify green.
"$FIXCTL" certify examples/lint/dead_redundant.frl >/dev/null \
    || { echo "dead_redundant.frl must still certify green" >&2; exit 1; }
echo "-- dead_redundant.frl certifies green (lint-only findings)"

echo "== SARIF output smoke =="
# The SARIF serializer is deterministic: lint over the conflicting
# fixture must reproduce the golden file byte for byte (lint exits 1 on
# findings — that's the point of the fixture).
"$FIXCTL" lint examples/lint/conflicting.frl --format sarif \
    > "$TRACE_DIR/conflicting.sarif" || true
cmp "$TRACE_DIR/conflicting.sarif" examples/lint/conflicting.sarif \
    || { echo "SARIF output drifted from the golden file" >&2; exit 1; }
# Capture to a file rather than piping into grep -q: an early grep exit
# closes the pipe and turns the writer's println into an EPIPE panic.
"$FIXCTL" certify examples/rulesets/hosp_zip.frl --format sarif \
    > "$TRACE_DIR/certify_hosp.sarif"
grep -q '"version": "2.1.0"' "$TRACE_DIR/certify_hosp.sarif" \
    || { echo "certify --format sarif is not SARIF 2.1.0" >&2; exit 1; }
echo "-- SARIF matches the golden file; certify emits SARIF 2.1.0"

echo "== fixctl trace round trip =="
# repair --trace → explain → trace export, and the determinism gate: two
# identical runs under the default logical clock must produce
# byte-identical journals.
for run in 1 2; do
    "$FIXCTL" repair \
        --rules examples/rulesets/hosp_zip.frl \
        --data examples/data/hosp_dirty.csv \
        --out "$TRACE_DIR/repaired_$run.csv" \
        --trace "$TRACE_DIR/trace_$run.jsonl" >/dev/null
done
cmp "$TRACE_DIR/trace_1.jsonl" "$TRACE_DIR/trace_2.jsonl" \
    || { echo "trace journals differ between identical runs" >&2; exit 1; }
echo "-- journals byte-identical across two runs"
"$FIXCTL" explain "$TRACE_DIR/trace_1.jsonl" --row 0 --attr city \
    | grep -q 'fix\[row 0, city\]' \
    || { echo "explain did not render the rule chain" >&2; exit 1; }
echo "-- explain renders the rule chain"
"$FIXCTL" trace export "$TRACE_DIR/trace_1.jsonl" --chrome "$TRACE_DIR/chrome.json" >/dev/null
grep -q traceEvents "$TRACE_DIR/chrome.json" \
    || { echo "chrome export has no traceEvents" >&2; exit 1; }
echo "-- chrome export valid"

echo "== plan-cache equivalence smoke =="
# The compiled engine must be byte-identical with the plan cache on and
# off: same repaired CSV, same repair counters in --metrics (DESIGN.md
# §12 "metrics parity"). Only repair.plan_cache.*/repair.plan.* counters
# may differ — they count cache traffic and actual engine work. Tile the
# example rows so repeated signatures actually hit the cache.
{
    cat examples/data/hosp_dirty.csv
    tail -n +2 examples/data/hosp_dirty.csv
    tail -n +2 examples/data/hosp_dirty.csv
} > "$TRACE_DIR/hosp_dup.csv"
for cache in on off; do
    "$FIXCTL" repair \
        --rules examples/rulesets/hosp_zip.frl \
        --data "$TRACE_DIR/hosp_dup.csv" \
        --engine compiled --plan-cache "$cache" \
        --out "$TRACE_DIR/compiled_$cache.csv" \
        --metrics "$TRACE_DIR/metrics_$cache.json" >/dev/null
    grep -o '"repair\.[a-z_.]*": [0-9][0-9]*' "$TRACE_DIR/metrics_$cache.json" \
        | grep -v 'repair\.plan' > "$TRACE_DIR/counters_$cache.txt"
    sed -n '/"repair\.tuple_/,/}/p' "$TRACE_DIR/metrics_$cache.json" \
        >> "$TRACE_DIR/counters_$cache.txt"
done
cmp "$TRACE_DIR/compiled_on.csv" "$TRACE_DIR/compiled_off.csv" \
    || { echo "compiled output differs with plan cache on vs off" >&2; exit 1; }
diff "$TRACE_DIR/counters_on.txt" "$TRACE_DIR/counters_off.txt" \
    || { echo "repair metrics differ with plan cache on vs off" >&2; exit 1; }
grep -q '"repair\.plan_cache\.hits": [1-9]' "$TRACE_DIR/metrics_on.json" \
    || { echo "cached run recorded no plan-cache hits" >&2; exit 1; }
echo "-- compiled output and repair counters byte-identical, cache on/off"

echo "== columnar group-by-plan equivalence smoke =="
# The columnar engine must reproduce the row-at-a-time compiled engine
# byte for byte (DESIGN.md §17): same repaired CSV, same repair counters
# — only the repair.plan_cache.* probe counts (k probes instead of n)
# and the columnar-only repair.batch.* group-by counters may differ —
# and the same repair.cell provenance records. Journal seq numbers are
# position-dependent, so they are stripped before comparing.
for engine in compiled columnar; do
    "$FIXCTL" repair \
        --rules examples/rulesets/hosp_zip.frl \
        --data "$TRACE_DIR/hosp_dup.csv" \
        --engine "$engine" \
        --out "$TRACE_DIR/eng_$engine.csv" \
        --metrics "$TRACE_DIR/eng_metrics_$engine.json" \
        --trace "$TRACE_DIR/eng_trace_$engine.jsonl" >/dev/null
    grep -o '"repair\.[a-z_.]*": [0-9][0-9]*' "$TRACE_DIR/eng_metrics_$engine.json" \
        | grep -v 'repair\.plan_cache' | grep -v 'repair\.batch' \
        > "$TRACE_DIR/eng_counters_$engine.txt"
    grep '"repair\.cell"' "$TRACE_DIR/eng_trace_$engine.jsonl" \
        | sed -E 's/"seq": *[0-9]+, *//' > "$TRACE_DIR/eng_cells_$engine.txt"
done
cmp "$TRACE_DIR/eng_compiled.csv" "$TRACE_DIR/eng_columnar.csv" \
    || { echo "columnar output differs from compiled" >&2; exit 1; }
diff "$TRACE_DIR/eng_counters_compiled.txt" "$TRACE_DIR/eng_counters_columnar.txt" \
    || { echo "repair counters differ, compiled vs columnar" >&2; exit 1; }
cmp "$TRACE_DIR/eng_cells_compiled.txt" "$TRACE_DIR/eng_cells_columnar.txt" \
    || { echo "repair.cell provenance differs, compiled vs columnar" >&2; exit 1; }
grep -q '"repair\.batch\.groups": [1-9]' "$TRACE_DIR/eng_metrics_columnar.json" \
    || { echo "columnar run recorded no signature groups" >&2; exit 1; }
echo "-- columnar matches compiled: CSV, repair counters, provenance"

echo "== attribution profile determinism smoke =="
# Two identical --profile-json runs must be byte-identical: the profile
# deliberately excludes measured nanoseconds (DESIGN.md §13).
for run in 1 2; do
    "$FIXCTL" repair \
        --rules examples/rulesets/hosp_zip.frl \
        --data "$TRACE_DIR/hosp_dup.csv" \
        --engine compiled \
        --out "$TRACE_DIR/profiled_$run.csv" \
        --profile-json "$TRACE_DIR/profile_$run.json" >/dev/null
done
cmp "$TRACE_DIR/profile_1.json" "$TRACE_DIR/profile_2.json" \
    || { echo "attribution profiles differ between identical runs" >&2; exit 1; }
grep -q '"rule": "r0"' "$TRACE_DIR/profile_1.json" \
    || { echo "profile JSON has no per-rule rows" >&2; exit 1; }
echo "-- profile JSON byte-identical across two runs"

echo "== metrics exposition smoke =="
# repair --expose binds an ephemeral scrape endpoint; --expose-hold 1
# keeps it alive until one /metrics scrape lands. fixctl scrape fetches
# it over HTTP and validates the exposition with the in-repo Prometheus
# text parser.
"$FIXCTL" repair \
    --rules examples/rulesets/hosp_zip.frl \
    --data "$TRACE_DIR/hosp_dup.csv" \
    --out "$TRACE_DIR/exposed.csv" \
    --expose 127.0.0.1:0 --expose-hold 1 > "$TRACE_DIR/expose.log" &
EXPOSE_PID=$!
URL=""
for _ in $(seq 1 100); do
    URL=$(grep -o 'http://[0-9.:]*/metrics' "$TRACE_DIR/expose.log" || true)
    [ -n "$URL" ] && break
    sleep 0.05
done
[ -n "$URL" ] || { echo "repair --expose never announced its endpoint" >&2; exit 1; }
"$FIXCTL" scrape "$URL" --require repair_rules_applied \
    || { echo "scrape endpoint did not serve valid Prometheus text" >&2; exit 1; }
wait "$EXPOSE_PID" \
    || { echo "repair --expose exited nonzero after scrape" >&2; exit 1; }
grep -q 'served 1 scrape(s)' "$TRACE_DIR/expose.log" \
    || { echo "repair --expose did not count the scrape" >&2; exit 1; }
echo "-- live endpoint served valid exposition and shut down cleanly"

echo "== fixd end-to-end smoke =="
# Boot the repair daemon on an ephemeral port, drive every endpoint a
# client would touch, then drain it: repair a batch, check readiness,
# scrape a labeled per-endpoint series, fetch the request's trace, and
# assert the flushed journal is a parseable trace export.
"$FIXCTL" serve \
    --rules examples/rulesets/hosp_zip.frl \
    --warm examples/data/hosp_dirty.csv \
    --journal "$TRACE_DIR/fixd_journal.jsonl" > "$TRACE_DIR/fixd.log" &
FIXD_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(grep -o 'http://[0-9.:]*' "$TRACE_DIR/fixd.log" || true)
    [ -n "$ADDR" ] && break
    sleep 0.05
done
[ -n "$ADDR" ] || { echo "fixctl serve never announced its address" >&2; exit 1; }
"$FIXCTL" client repair examples/data/hosp_dirty.csv --addr "$ADDR" \
    > "$TRACE_DIR/fixd_repair.json" 2> "$TRACE_DIR/fixd_repair.err" \
    || { echo "fixd POST /repair failed" >&2; exit 1; }
grep -q '"repaired_rows":' "$TRACE_DIR/fixd_repair.json" \
    || { echo "repair response has no repaired_rows" >&2; exit 1; }
"$FIXCTL" client get /readyz --addr "$ADDR" | grep -q '"ready":true' \
    || { echo "fixd /readyz not green after repair traffic" >&2; exit 1; }
"$FIXCTL" scrape "$ADDR/metrics" \
    --require 'http_requests{endpoint="repair",status="200"}' \
    || { echo "live /metrics missing labeled repair series" >&2; exit 1; }
TRACE_ID=$(grep -o 'trace id: t[0-9a-f]*' "$TRACE_DIR/fixd_repair.err" | cut -d' ' -f3)
[ -n "$TRACE_ID" ] || { echo "client repair reported no trace id" >&2; exit 1; }
"$FIXCTL" client get "/trace/$TRACE_ID" --addr "$ADDR" \
    | grep -q '"name": *"request"\|"name":"request"' \
    || { echo "GET /trace/$TRACE_ID returned no request span" >&2; exit 1; }

echo "== fixd certified hot-swap e2e =="
# A conflicting candidate must be rejected by the certification gate with
# the old program untouched: readiness stays green, repairs unchanged.
cat > "$TRACE_DIR/bad_rules.frl" <<'EOF'
IF zip = "36545" AND city IN {"Jaxon"} THEN city := "Jackson"
IF zip = "36545" AND city IN {"Jaxon"} THEN city := "Mobile"
EOF
if "$FIXCTL" client rules "$TRACE_DIR/bad_rules.frl" --addr "$ADDR" \
    > "$TRACE_DIR/swap_bad.json" 2>/dev/null; then
    echo "fixd promoted an uncertified rule set" >&2
    exit 1
fi
grep -q '"promoted":false' "$TRACE_DIR/swap_bad.json" \
    || { echo "bad swap response missing promoted:false" >&2; exit 1; }
grep -q 'FR009' "$TRACE_DIR/swap_bad.json" \
    || { echo "bad swap response missing the FR009 finding" >&2; exit 1; }
"$FIXCTL" client get /readyz --addr "$ADDR" > "$TRACE_DIR/readyz_after_bad.json" \
    || { echo "fixd /readyz went red after a rejected swap" >&2; exit 1; }
grep -q '"generation":0' "$TRACE_DIR/readyz_after_bad.json" \
    || { echo "rejected swap must not advance the generation" >&2; exit 1; }
echo "-- uncertified candidate rejected, old program still ready"
# A certified candidate promotes atomically: generation advances, the
# warm plan cache is discarded, and repairs reflect the new rules.
cat > "$TRACE_DIR/good_rules.frl" <<'EOF'
IF zip = "36545" AND city IN {"Jackson Heights", "Jaxon"} THEN city := "Jacksonville"
IF zip = "36545" AND state IN {"AK"} THEN state := "AL"
EOF
"$FIXCTL" client rules "$TRACE_DIR/good_rules.frl" --addr "$ADDR" \
    > "$TRACE_DIR/swap_good.json" 2>/dev/null \
    || { echo "fixd rejected a certified rule set" >&2; exit 1; }
grep -q '"promoted":true' "$TRACE_DIR/swap_good.json" \
    || { echo "good swap response missing promoted:true" >&2; exit 1; }
grep -q '"generation":1' "$TRACE_DIR/swap_good.json" \
    || { echo "good swap did not advance to generation 1" >&2; exit 1; }
# The promoted bundle starts with an EMPTY plan cache (the invalidation):
# the same signatures repaired before the swap must now be recomputed
# under the new rules, not replayed from stale plans.
"$FIXCTL" client get /readyz --addr "$ADDR" > "$TRACE_DIR/readyz_after_good.json" || true
grep -q '"cache_plans":0' "$TRACE_DIR/readyz_after_good.json" \
    || { echo "promotion did not invalidate the plan cache" >&2; exit 1; }
"$FIXCTL" client repair examples/data/hosp_dirty.csv --addr "$ADDR" \
    > "$TRACE_DIR/fixd_repair_swapped.json" 2>/dev/null \
    || { echo "fixd POST /repair failed after the swap" >&2; exit 1; }
grep -q '"new":"Jacksonville"' "$TRACE_DIR/fixd_repair_swapped.json" \
    || { echo "post-swap repair does not reflect the new rules" >&2; exit 1; }
if grep -q '"new":"Jackson"' "$TRACE_DIR/fixd_repair_swapped.json"; then
    echo "post-swap repair replayed a stale plan from the old rules" >&2
    exit 1
fi
"$FIXCTL" client get /readyz --addr "$ADDR" | grep -q '"ready":true' \
    || { echo "fixd /readyz not green after the promoted swap warmed" >&2; exit 1; }
echo "-- certified candidate promoted, cache invalidated, new rules serving"
"$FIXCTL" client shutdown --addr "$ADDR" | grep -q draining \
    || { echo "fixd /shutdown did not acknowledge the drain" >&2; exit 1; }
wait "$FIXD_PID" \
    || { echo "fixd exited nonzero after graceful shutdown" >&2; exit 1; }
"$FIXCTL" trace export "$TRACE_DIR/fixd_journal.jsonl" \
    --chrome "$TRACE_DIR/fixd_chrome.json" >/dev/null \
    || { echo "flushed fixd journal is not a parseable trace" >&2; exit 1; }
grep -q traceEvents "$TRACE_DIR/fixd_chrome.json" \
    || { echo "fixd journal chrome export has no traceEvents" >&2; exit 1; }
echo "-- daemon served repair/readyz/metrics/trace and drained cleanly"

echo "== repair-quality observatory smoke =="
# Windowed quality monitoring is deterministic under the logical clock:
# two identical stream-engine runs must render byte-identical window
# summaries and --quality-json snapshots (DESIGN.md §16).
for run in 1 2; do
    "$FIXCTL" repair \
        --rules examples/rulesets/hosp_zip.frl \
        --data examples/data/hosp_dirty.csv \
        --engine stream --quality-window 2 \
        --out "$TRACE_DIR/quality_$run.csv" \
        --quality-json "$TRACE_DIR/quality_$run.json" \
        | grep -v '^wrote ' > "$TRACE_DIR/quality_table_$run.txt"
done
cmp "$TRACE_DIR/quality_1.json" "$TRACE_DIR/quality_2.json" \
    || { echo "quality snapshots differ between identical runs" >&2; exit 1; }
cmp "$TRACE_DIR/quality_table_1.txt" "$TRACE_DIR/quality_table_2.txt" \
    || { echo "quality window summaries differ between identical runs" >&2; exit 1; }
"$FIXCTL" quality "$TRACE_DIR/quality_1.json" --require-green \
    | grep -q 'require-green: no active alerts' \
    || { echo "snapshot with no alert rules must be green" >&2; exit 1; }
echo "-- window summaries and snapshots byte-identical across two runs"
# A skewed batch (one dirty tuple repeated) must fire the repair-rate
# alert, and the alert flips /readyz only when the daemon opted into
# --quality-gate; without the gate it is reported but never gates.
printf 'zip,city,state\n36545,Jaxon,AK\n36545,Jaxon,AK\n36545,Jaxon,AK\n36545,Jaxon,AK\n' \
    > "$TRACE_DIR/skewed.csv"
for gate in on off; do
    GATE_FLAG=""
    [ "$gate" = on ] && GATE_FLAG="--quality-gate"
    "$FIXCTL" serve \
        --rules examples/rulesets/hosp_zip.frl \
        --quality-window 2 --quality-alert 'repair_rate>0.5' $GATE_FLAG \
        > "$TRACE_DIR/fixd_quality_$gate.log" &
    QPID=$!
    QADDR=""
    for _ in $(seq 1 100); do
        QADDR=$(grep -o 'http://[0-9.:]*' "$TRACE_DIR/fixd_quality_$gate.log" || true)
        [ -n "$QADDR" ] && break
        sleep 0.05
    done
    [ -n "$QADDR" ] || { echo "quality fixd (gate $gate) never announced its address" >&2; exit 1; }
    "$FIXCTL" client repair "$TRACE_DIR/skewed.csv" --addr "$QADDR" >/dev/null 2>&1 \
        || { echo "skewed batch repair failed (gate $gate)" >&2; exit 1; }
    "$FIXCTL" scrape "$QADDR/metrics" --require quality_drift \
        || { echo "live /metrics missing the quality_drift gauge" >&2; exit 1; }
    if "$FIXCTL" quality "$QADDR" --require-green > "$TRACE_DIR/quality_live_$gate.txt"; then
        echo "fixctl quality --require-green ignored an active alert (gate $gate)" >&2
        exit 1
    fi
    grep -q 'require-green: [1-9]' "$TRACE_DIR/quality_live_$gate.txt" \
        || { echo "fixctl quality did not report the active alert count" >&2; exit 1; }
    if [ "$gate" = on ]; then
        if "$FIXCTL" client get /readyz --addr "$QADDR" > "$TRACE_DIR/readyz_gated.json"; then
            echo "gated daemon stayed ready despite a firing quality alert" >&2
            exit 1
        fi
        grep -q '"quality_ok":false' "$TRACE_DIR/readyz_gated.json" \
            || { echo "gated /readyz body missing quality_ok:false" >&2; exit 1; }
    else
        "$FIXCTL" client get /readyz --addr "$QADDR" | grep -q '"ready":true' \
            || { echo "ungated daemon went unready on a quality alert" >&2; exit 1; }
    fi
    "$FIXCTL" client shutdown --addr "$QADDR" >/dev/null \
        || { echo "quality fixd (gate $gate) refused the drain" >&2; exit 1; }
    wait "$QPID" \
        || { echo "quality fixd (gate $gate) exited nonzero" >&2; exit 1; }
done
echo "-- skewed batch fires the alert; /readyz flips only under --quality-gate"

echo "== coverage lint smoke =="
# Attribution joined against fixlint: rules that never fired on the data
# must surface as FR007 notes.
"$FIXCTL" coverage \
    --rules examples/lint/dead_redundant.frl \
    --data examples/lint/profile_dirty.csv --lint \
    > "$TRACE_DIR/coverage.txt"
grep -q 'note\[FR007\]' "$TRACE_DIR/coverage.txt" \
    || { echo "coverage --lint reported no FR007 unfired-rule note" >&2; exit 1; }
echo "-- coverage --lint reports never-fired rules"

echo "CI green."
