#!/usr/bin/env bash
# Offline-safe CI gate: formatting, lints, tests. Everything here runs
# without network access — all dependencies are workspace-local (see
# shims/ and DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== fixctl lint =="
cargo build -q -p fixctl
FIXCTL=target/debug/fixctl
for f in examples/rulesets/*.frl; do
    echo "-- lint $f (must be clean)"
    "$FIXCTL" lint "$f" --deny warnings
done
for f in examples/lint/*.frl; do
    echo "-- lint $f (must report findings)"
    if "$FIXCTL" lint "$f" --deny warnings >/dev/null; then
        echo "expected lint findings in $f, got none" >&2
        exit 1
    fi
done

echo "== fixctl trace round trip =="
# repair --trace → explain → trace export, and the determinism gate: two
# identical runs under the default logical clock must produce
# byte-identical journals.
TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT
for run in 1 2; do
    "$FIXCTL" repair \
        --rules examples/rulesets/hosp_zip.frl \
        --data examples/data/hosp_dirty.csv \
        --out "$TRACE_DIR/repaired_$run.csv" \
        --trace "$TRACE_DIR/trace_$run.jsonl" >/dev/null
done
cmp "$TRACE_DIR/trace_1.jsonl" "$TRACE_DIR/trace_2.jsonl" \
    || { echo "trace journals differ between identical runs" >&2; exit 1; }
echo "-- journals byte-identical across two runs"
"$FIXCTL" explain "$TRACE_DIR/trace_1.jsonl" --row 0 --attr city \
    | grep -q 'fix\[row 0, city\]' \
    || { echo "explain did not render the rule chain" >&2; exit 1; }
echo "-- explain renders the rule chain"
"$FIXCTL" trace export "$TRACE_DIR/trace_1.jsonl" --chrome "$TRACE_DIR/chrome.json" >/dev/null
grep -q traceEvents "$TRACE_DIR/chrome.json" \
    || { echo "chrome export has no traceEvents" >&2; exit 1; }
echo "-- chrome export valid"

echo "== plan-cache equivalence smoke =="
# The compiled engine must be byte-identical with the plan cache on and
# off: same repaired CSV, same repair counters in --metrics (DESIGN.md
# §12 "metrics parity"). Only repair.plan_cache.*/repair.plan.* counters
# may differ — they count cache traffic and actual engine work. Tile the
# example rows so repeated signatures actually hit the cache.
{
    cat examples/data/hosp_dirty.csv
    tail -n +2 examples/data/hosp_dirty.csv
    tail -n +2 examples/data/hosp_dirty.csv
} > "$TRACE_DIR/hosp_dup.csv"
for cache in on off; do
    "$FIXCTL" repair \
        --rules examples/rulesets/hosp_zip.frl \
        --data "$TRACE_DIR/hosp_dup.csv" \
        --engine compiled --plan-cache "$cache" \
        --out "$TRACE_DIR/compiled_$cache.csv" \
        --metrics "$TRACE_DIR/metrics_$cache.json" >/dev/null
    grep -o '"repair\.[a-z_.]*": [0-9][0-9]*' "$TRACE_DIR/metrics_$cache.json" \
        | grep -v 'repair\.plan' > "$TRACE_DIR/counters_$cache.txt"
    sed -n '/"repair\.tuple_/,/}/p' "$TRACE_DIR/metrics_$cache.json" \
        >> "$TRACE_DIR/counters_$cache.txt"
done
cmp "$TRACE_DIR/compiled_on.csv" "$TRACE_DIR/compiled_off.csv" \
    || { echo "compiled output differs with plan cache on vs off" >&2; exit 1; }
diff "$TRACE_DIR/counters_on.txt" "$TRACE_DIR/counters_off.txt" \
    || { echo "repair metrics differ with plan cache on vs off" >&2; exit 1; }
grep -q '"repair\.plan_cache\.hits": [1-9]' "$TRACE_DIR/metrics_on.json" \
    || { echo "cached run recorded no plan-cache hits" >&2; exit 1; }
echo "-- compiled output and repair counters byte-identical, cache on/off"

echo "CI green."
