#!/usr/bin/env bash
# Offline-safe CI gate: formatting, lints, tests. Everything here runs
# without network access — all dependencies are workspace-local (see
# shims/ and DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== fixctl lint =="
cargo build -q -p fixctl
FIXCTL=target/debug/fixctl
for f in examples/rulesets/*.frl; do
    echo "-- lint $f (must be clean)"
    "$FIXCTL" lint "$f" --deny warnings
done
for f in examples/lint/*.frl; do
    echo "-- lint $f (must report findings)"
    if "$FIXCTL" lint "$f" --deny warnings >/dev/null; then
        echo "expected lint findings in $f, got none" >&2
        exit 1
    fi
done

echo "== fixctl trace round trip =="
# repair --trace → explain → trace export, and the determinism gate: two
# identical runs under the default logical clock must produce
# byte-identical journals.
TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT
for run in 1 2; do
    "$FIXCTL" repair \
        --rules examples/rulesets/hosp_zip.frl \
        --data examples/data/hosp_dirty.csv \
        --out "$TRACE_DIR/repaired_$run.csv" \
        --trace "$TRACE_DIR/trace_$run.jsonl" >/dev/null
done
cmp "$TRACE_DIR/trace_1.jsonl" "$TRACE_DIR/trace_2.jsonl" \
    || { echo "trace journals differ between identical runs" >&2; exit 1; }
echo "-- journals byte-identical across two runs"
"$FIXCTL" explain "$TRACE_DIR/trace_1.jsonl" --row 0 --attr city \
    | grep -q 'fix\[row 0, city\]' \
    || { echo "explain did not render the rule chain" >&2; exit 1; }
echo "-- explain renders the rule chain"
"$FIXCTL" trace export "$TRACE_DIR/trace_1.jsonl" --chrome "$TRACE_DIR/chrome.json" >/dev/null
grep -q traceEvents "$TRACE_DIR/chrome.json" \
    || { echo "chrome export has no traceEvents" >&2; exit 1; }
echo "-- chrome export valid"

echo "CI green."
