#!/usr/bin/env bash
# Offline-safe CI gate: formatting, lints, tests. Everything here runs
# without network access — all dependencies are workspace-local (see
# shims/ and DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== fixctl lint =="
cargo build -q -p fixctl
FIXCTL=target/debug/fixctl
for f in examples/rulesets/*.frl; do
    echo "-- lint $f (must be clean)"
    "$FIXCTL" lint "$f" --deny warnings
done
for f in examples/lint/*.frl; do
    echo "-- lint $f (must report findings)"
    if "$FIXCTL" lint "$f" --deny warnings >/dev/null; then
        echo "expected lint findings in $f, got none" >&2
        exit 1
    fi
done

echo "== fixctl trace round trip =="
# repair --trace → explain → trace export, and the determinism gate: two
# identical runs under the default logical clock must produce
# byte-identical journals.
TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT
for run in 1 2; do
    "$FIXCTL" repair \
        --rules examples/rulesets/hosp_zip.frl \
        --data examples/data/hosp_dirty.csv \
        --out "$TRACE_DIR/repaired_$run.csv" \
        --trace "$TRACE_DIR/trace_$run.jsonl" >/dev/null
done
cmp "$TRACE_DIR/trace_1.jsonl" "$TRACE_DIR/trace_2.jsonl" \
    || { echo "trace journals differ between identical runs" >&2; exit 1; }
echo "-- journals byte-identical across two runs"
"$FIXCTL" explain "$TRACE_DIR/trace_1.jsonl" --row 0 --attr city \
    | grep -q 'fix\[row 0, city\]' \
    || { echo "explain did not render the rule chain" >&2; exit 1; }
echo "-- explain renders the rule chain"
"$FIXCTL" trace export "$TRACE_DIR/trace_1.jsonl" --chrome "$TRACE_DIR/chrome.json" >/dev/null
grep -q traceEvents "$TRACE_DIR/chrome.json" \
    || { echo "chrome export has no traceEvents" >&2; exit 1; }
echo "-- chrome export valid"

echo "== plan-cache equivalence smoke =="
# The compiled engine must be byte-identical with the plan cache on and
# off: same repaired CSV, same repair counters in --metrics (DESIGN.md
# §12 "metrics parity"). Only repair.plan_cache.*/repair.plan.* counters
# may differ — they count cache traffic and actual engine work. Tile the
# example rows so repeated signatures actually hit the cache.
{
    cat examples/data/hosp_dirty.csv
    tail -n +2 examples/data/hosp_dirty.csv
    tail -n +2 examples/data/hosp_dirty.csv
} > "$TRACE_DIR/hosp_dup.csv"
for cache in on off; do
    "$FIXCTL" repair \
        --rules examples/rulesets/hosp_zip.frl \
        --data "$TRACE_DIR/hosp_dup.csv" \
        --engine compiled --plan-cache "$cache" \
        --out "$TRACE_DIR/compiled_$cache.csv" \
        --metrics "$TRACE_DIR/metrics_$cache.json" >/dev/null
    grep -o '"repair\.[a-z_.]*": [0-9][0-9]*' "$TRACE_DIR/metrics_$cache.json" \
        | grep -v 'repair\.plan' > "$TRACE_DIR/counters_$cache.txt"
    sed -n '/"repair\.tuple_/,/}/p' "$TRACE_DIR/metrics_$cache.json" \
        >> "$TRACE_DIR/counters_$cache.txt"
done
cmp "$TRACE_DIR/compiled_on.csv" "$TRACE_DIR/compiled_off.csv" \
    || { echo "compiled output differs with plan cache on vs off" >&2; exit 1; }
diff "$TRACE_DIR/counters_on.txt" "$TRACE_DIR/counters_off.txt" \
    || { echo "repair metrics differ with plan cache on vs off" >&2; exit 1; }
grep -q '"repair\.plan_cache\.hits": [1-9]' "$TRACE_DIR/metrics_on.json" \
    || { echo "cached run recorded no plan-cache hits" >&2; exit 1; }
echo "-- compiled output and repair counters byte-identical, cache on/off"

echo "== attribution profile determinism smoke =="
# Two identical --profile-json runs must be byte-identical: the profile
# deliberately excludes measured nanoseconds (DESIGN.md §13).
for run in 1 2; do
    "$FIXCTL" repair \
        --rules examples/rulesets/hosp_zip.frl \
        --data "$TRACE_DIR/hosp_dup.csv" \
        --engine compiled \
        --out "$TRACE_DIR/profiled_$run.csv" \
        --profile-json "$TRACE_DIR/profile_$run.json" >/dev/null
done
cmp "$TRACE_DIR/profile_1.json" "$TRACE_DIR/profile_2.json" \
    || { echo "attribution profiles differ between identical runs" >&2; exit 1; }
grep -q '"rule": "r0"' "$TRACE_DIR/profile_1.json" \
    || { echo "profile JSON has no per-rule rows" >&2; exit 1; }
echo "-- profile JSON byte-identical across two runs"

echo "== metrics exposition smoke =="
# repair --expose binds an ephemeral scrape endpoint; --expose-hold 1
# keeps it alive until one /metrics scrape lands. fixctl scrape fetches
# it over HTTP and validates the exposition with the in-repo Prometheus
# text parser.
"$FIXCTL" repair \
    --rules examples/rulesets/hosp_zip.frl \
    --data "$TRACE_DIR/hosp_dup.csv" \
    --out "$TRACE_DIR/exposed.csv" \
    --expose 127.0.0.1:0 --expose-hold 1 > "$TRACE_DIR/expose.log" &
EXPOSE_PID=$!
URL=""
for _ in $(seq 1 100); do
    URL=$(grep -o 'http://[0-9.:]*/metrics' "$TRACE_DIR/expose.log" || true)
    [ -n "$URL" ] && break
    sleep 0.05
done
[ -n "$URL" ] || { echo "repair --expose never announced its endpoint" >&2; exit 1; }
"$FIXCTL" scrape "$URL" --require repair_rules_applied \
    || { echo "scrape endpoint did not serve valid Prometheus text" >&2; exit 1; }
wait "$EXPOSE_PID" \
    || { echo "repair --expose exited nonzero after scrape" >&2; exit 1; }
grep -q 'served 1 scrape(s)' "$TRACE_DIR/expose.log" \
    || { echo "repair --expose did not count the scrape" >&2; exit 1; }
echo "-- live endpoint served valid exposition and shut down cleanly"

echo "== fixd end-to-end smoke =="
# Boot the repair daemon on an ephemeral port, drive every endpoint a
# client would touch, then drain it: repair a batch, check readiness,
# scrape a labeled per-endpoint series, fetch the request's trace, and
# assert the flushed journal is a parseable trace export.
"$FIXCTL" serve \
    --rules examples/rulesets/hosp_zip.frl \
    --warm examples/data/hosp_dirty.csv \
    --journal "$TRACE_DIR/fixd_journal.jsonl" > "$TRACE_DIR/fixd.log" &
FIXD_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(grep -o 'http://[0-9.:]*' "$TRACE_DIR/fixd.log" || true)
    [ -n "$ADDR" ] && break
    sleep 0.05
done
[ -n "$ADDR" ] || { echo "fixctl serve never announced its address" >&2; exit 1; }
"$FIXCTL" client repair examples/data/hosp_dirty.csv --addr "$ADDR" \
    > "$TRACE_DIR/fixd_repair.json" 2> "$TRACE_DIR/fixd_repair.err" \
    || { echo "fixd POST /repair failed" >&2; exit 1; }
grep -q '"repaired_rows":' "$TRACE_DIR/fixd_repair.json" \
    || { echo "repair response has no repaired_rows" >&2; exit 1; }
"$FIXCTL" client get /readyz --addr "$ADDR" | grep -q '"ready":true' \
    || { echo "fixd /readyz not green after repair traffic" >&2; exit 1; }
"$FIXCTL" scrape "$ADDR/metrics" \
    --require 'http_requests{endpoint="repair",status="200"}' \
    || { echo "live /metrics missing labeled repair series" >&2; exit 1; }
TRACE_ID=$(grep -o 'trace id: t[0-9a-f]*' "$TRACE_DIR/fixd_repair.err" | cut -d' ' -f3)
[ -n "$TRACE_ID" ] || { echo "client repair reported no trace id" >&2; exit 1; }
"$FIXCTL" client get "/trace/$TRACE_ID" --addr "$ADDR" \
    | grep -q '"name": *"request"\|"name":"request"' \
    || { echo "GET /trace/$TRACE_ID returned no request span" >&2; exit 1; }
"$FIXCTL" client shutdown --addr "$ADDR" | grep -q draining \
    || { echo "fixd /shutdown did not acknowledge the drain" >&2; exit 1; }
wait "$FIXD_PID" \
    || { echo "fixd exited nonzero after graceful shutdown" >&2; exit 1; }
"$FIXCTL" trace export "$TRACE_DIR/fixd_journal.jsonl" \
    --chrome "$TRACE_DIR/fixd_chrome.json" >/dev/null \
    || { echo "flushed fixd journal is not a parseable trace" >&2; exit 1; }
grep -q traceEvents "$TRACE_DIR/fixd_chrome.json" \
    || { echo "fixd journal chrome export has no traceEvents" >&2; exit 1; }
echo "-- daemon served repair/readyz/metrics/trace and drained cleanly"

echo "== coverage lint smoke =="
# Attribution joined against fixlint: rules that never fired on the data
# must surface as FR007 notes.
"$FIXCTL" coverage \
    --rules examples/lint/dead_redundant.frl \
    --data examples/lint/profile_dirty.csv --lint \
    > "$TRACE_DIR/coverage.txt"
grep -q 'note\[FR007\]' "$TRACE_DIR/coverage.txt" \
    || { echo "coverage --lint reported no FR007 unfired-rule note" >&2; exit 1; }
echo "-- coverage --lint reports never-fired rules"

echo "CI green."
