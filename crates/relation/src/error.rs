//! Error type shared by the relational substrate.

use std::fmt;

/// Errors raised while building schemas and tables or doing CSV I/O.
#[derive(Debug)]
pub enum RelationError {
    /// A schema was declared with a duplicate attribute name.
    DuplicateAttribute(String),
    /// A schema was declared with no attributes.
    EmptySchema,
    /// A schema would exceed the maximum number of attributes supported by
    /// [`crate::AttrSet`] (128).
    TooManyAttributes(usize),
    /// An attribute name was looked up that is not part of the schema.
    UnknownAttribute(String),
    /// A row had a different arity than its schema.
    ArityMismatch {
        /// Attributes in the schema.
        expected: usize,
        /// Cells supplied in the row.
        got: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Rows in the table.
        len: usize,
    },
    /// Underlying CSV/IO failure.
    Io(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name `{name}` in schema")
            }
            RelationError::EmptySchema => write!(f, "schema must have at least one attribute"),
            RelationError::TooManyAttributes(n) => {
                write!(f, "schema has {n} attributes; at most 128 are supported")
            }
            RelationError::UnknownAttribute(name) => {
                write!(f, "attribute `{name}` is not part of the schema")
            }
            RelationError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row has {got} cells but the schema has {expected} attributes"
                )
            }
            RelationError::RowOutOfBounds { row, len } => {
                write!(f, "row index {row} out of bounds for table of {len} rows")
            }
            RelationError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for RelationError {}

impl From<std::io::Error> for RelationError {
    fn from(e: std::io::Error) -> Self {
        RelationError::Io(e.to_string())
    }
}

impl From<csv::Error> for RelationError {
    fn from(e: csv::Error) -> Self {
        RelationError::Io(e.to_string())
    }
}
