//! Relational substrate for the `fixrules` workspace.
//!
//! The SIGMOD'14 fixing-rules algorithms only ever compare attribute values
//! for equality, so this crate represents every cell as an interned
//! [`Symbol`] (a `u32` handle into a [`SymbolTable`]). Schemas assign a dense
//! [`AttrId`] to each attribute, tuples are flat `Vec<Symbol>` rows inside a
//! [`Table`], and sets of attributes are tracked with an [`AttrSet`] bitset
//! so the hot repair loops never hash strings.
//!
//! # Quick tour
//!
//! ```
//! use relation::{Schema, SymbolTable, Table};
//!
//! let schema = Schema::new(
//!     "Travel",
//!     ["name", "country", "capital", "city", "conf"],
//! ).unwrap();
//! let mut symbols = SymbolTable::new();
//! let mut table = Table::new(schema.clone());
//! table.push_strs(&mut symbols, &["George", "China", "Beijing", "Beijing", "SIGMOD"]).unwrap();
//! assert_eq!(table.len(), 1);
//! let capital = schema.attr("capital").unwrap();
//! assert_eq!(symbols.resolve(table.row(0)[capital.index()]), "Beijing");
//! ```

pub mod attrset;
pub mod column;
pub mod csv_io;
pub mod error;
pub mod schema;
pub mod symbol;
pub mod table;

pub use attrset::AttrSet;
pub use column::ColumnTable;
pub use error::RelationError;
pub use schema::{AttrId, Schema};
pub use symbol::{Symbol, SymbolTable};
pub use table::{Table, TupleRef};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RelationError>;
