//! In-memory tables of interned rows.

use std::collections::{HashMap, HashSet};

use crate::{AttrId, RelationError, Result, Schema, Symbol, SymbolTable};

/// A table: a schema plus a dense `rows × arity` matrix of [`Symbol`]s.
///
/// Rows are stored in one flat `Vec<Symbol>` (row-major) so scanning a table
/// touches memory sequentially and cloning a table for a repair run is a
/// single memcpy-able allocation.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    cells: Vec<Symbol>,
}

/// Borrowed view of a single row.
pub type TupleRef<'a> = &'a [Symbol];

impl Table {
    /// Create an empty table over `schema`.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            cells: Vec::new(),
        }
    }

    /// Create an empty table with space reserved for `rows` rows.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let arity = schema.arity();
        Table {
            schema,
            cells: Vec::with_capacity(rows * arity),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        if self.schema.arity() == 0 {
            0
        } else {
            self.cells.len() / self.schema.arity()
        }
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Append a row of pre-interned symbols.
    pub fn push_row(&mut self, row: &[Symbol]) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.cells.extend_from_slice(row);
        Ok(())
    }

    /// Intern `values` into `symbols` and append them as a row.
    pub fn push_strs(&mut self, symbols: &mut SymbolTable, values: &[&str]) -> Result<()> {
        if values.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        self.cells.extend(values.iter().map(|v| symbols.intern(v)));
        Ok(())
    }

    /// Borrow row `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    #[inline]
    pub fn row(&self, i: usize) -> TupleRef<'_> {
        let a = self.schema.arity();
        &self.cells[i * a..(i + 1) * a]
    }

    /// Borrow row `i` mutably.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [Symbol] {
        let a = self.schema.arity();
        &mut self.cells[i * a..(i + 1) * a]
    }

    /// Checked row access.
    pub fn try_row(&self, i: usize) -> Result<TupleRef<'_>> {
        if i >= self.len() {
            return Err(RelationError::RowOutOfBounds {
                row: i,
                len: self.len(),
            });
        }
        Ok(self.row(i))
    }

    /// Read one cell.
    #[inline]
    pub fn cell(&self, row: usize, attr: AttrId) -> Symbol {
        self.cells[row * self.schema.arity() + attr.index()]
    }

    /// Overwrite one cell.
    #[inline]
    pub fn set_cell(&mut self, row: usize, attr: AttrId, value: Symbol) {
        let a = self.schema.arity();
        self.cells[row * a + attr.index()] = value;
    }

    /// Iterate over all rows.
    pub fn rows(&self) -> impl Iterator<Item = TupleRef<'_>> {
        self.cells.chunks_exact(self.schema.arity().max(1))
    }

    /// Split the table into mutable chunks of at most `chunk_rows` rows
    /// each (the last chunk may be shorter). Chunks are disjoint, so they
    /// can be handed to worker threads for parallel per-tuple repair.
    pub fn rows_mut_chunks(&mut self, chunk_rows: usize) -> impl Iterator<Item = &mut [Symbol]> {
        let a = self.schema.arity().max(1);
        self.cells.chunks_mut(chunk_rows.max(1) * a)
    }

    /// Resolve a row back to strings (for display / CSV output).
    pub fn row_strs<'a>(&'a self, symbols: &'a SymbolTable, i: usize) -> Vec<&'a str> {
        self.row(i).iter().map(|&s| symbols.resolve(s)).collect()
    }

    /// The active domain of one attribute: every distinct symbol appearing
    /// in that column. Used by the noise generator ("errors from the active
    /// domain", §7.1) and by rule enrichment.
    pub fn active_domain(&self, attr: AttrId) -> HashSet<Symbol> {
        let mut out = HashSet::new();
        let a = self.schema.arity();
        let idx = attr.index();
        let mut i = idx;
        while i < self.cells.len() {
            out.insert(self.cells[i]);
            i += a;
        }
        out
    }

    /// Frequency histogram of one attribute's values.
    pub fn value_counts(&self, attr: AttrId) -> HashMap<Symbol, usize> {
        let mut out = HashMap::new();
        let a = self.schema.arity();
        let mut i = attr.index();
        while i < self.cells.len() {
            *out.entry(self.cells[i]).or_insert(0) += 1;
            i += a;
        }
        out
    }

    /// Count cells that differ between two tables of identical shape.
    ///
    /// This is the "number of changes" cost used when evaluating repairs.
    pub fn diff_cells(&self, other: &Table) -> Result<usize> {
        if self.schema.arity() != other.schema.arity() || self.len() != other.len() {
            return Err(RelationError::ArityMismatch {
                expected: self.cells.len(),
                got: other.cells.len(),
            });
        }
        Ok(self
            .cells
            .iter()
            .zip(other.cells.iter())
            .filter(|(a, b)| a != b)
            .count())
    }

    /// List `(row, attr)` positions where two tables differ.
    pub fn diff_positions(&self, other: &Table) -> Result<Vec<(usize, AttrId)>> {
        if self.schema.arity() != other.schema.arity() || self.len() != other.len() {
            return Err(RelationError::ArityMismatch {
                expected: self.cells.len(),
                got: other.cells.len(),
            });
        }
        let a = self.schema.arity();
        Ok(self
            .cells
            .iter()
            .zip(other.cells.iter())
            .enumerate()
            .filter(|(_, (x, y))| x != y)
            .map(|(i, _)| (i / a, AttrId((i % a) as u16)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Schema, SymbolTable, Table) {
        let schema = Schema::new("Cap", ["country", "capital"]).unwrap();
        let symbols = SymbolTable::new();
        let table = Table::new(schema.clone());
        (schema, symbols, table)
    }

    #[test]
    fn push_and_read_rows() {
        let (schema, mut sy, mut t) = setup();
        t.push_strs(&mut sy, &["China", "Beijing"]).unwrap();
        t.push_strs(&mut sy, &["Canada", "Ottawa"]).unwrap();
        assert_eq!(t.len(), 2);
        let cap = schema.attr("capital").unwrap();
        assert_eq!(sy.resolve(t.cell(1, cap)), "Ottawa");
        assert_eq!(t.row_strs(&sy, 0), vec!["China", "Beijing"]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (_, mut sy, mut t) = setup();
        let err = t.push_strs(&mut sy, &["China"]).unwrap_err();
        assert!(matches!(
            err,
            RelationError::ArityMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn set_cell_updates_in_place() {
        let (schema, mut sy, mut t) = setup();
        t.push_strs(&mut sy, &["China", "Shanghai"]).unwrap();
        let cap = schema.attr("capital").unwrap();
        let beijing = sy.intern("Beijing");
        t.set_cell(0, cap, beijing);
        assert_eq!(sy.resolve(t.cell(0, cap)), "Beijing");
    }

    #[test]
    fn active_domain_collects_distinct_values() {
        let (schema, mut sy, mut t) = setup();
        t.push_strs(&mut sy, &["China", "Beijing"]).unwrap();
        t.push_strs(&mut sy, &["China", "Shanghai"]).unwrap();
        t.push_strs(&mut sy, &["Canada", "Ottawa"]).unwrap();
        let dom = t.active_domain(schema.attr("country").unwrap());
        assert_eq!(dom.len(), 2);
        assert!(dom.contains(&sy.get("China").unwrap()));
    }

    #[test]
    fn value_counts_histograms() {
        let (schema, mut sy, mut t) = setup();
        t.push_strs(&mut sy, &["China", "Beijing"]).unwrap();
        t.push_strs(&mut sy, &["China", "Beijing"]).unwrap();
        t.push_strs(&mut sy, &["Canada", "Ottawa"]).unwrap();
        let counts = t.value_counts(schema.attr("country").unwrap());
        assert_eq!(counts[&sy.get("China").unwrap()], 2);
        assert_eq!(counts[&sy.get("Canada").unwrap()], 1);
    }

    #[test]
    fn diff_counts_changed_cells() {
        let (schema, mut sy, mut t) = setup();
        t.push_strs(&mut sy, &["China", "Shanghai"]).unwrap();
        let mut fixed = t.clone();
        fixed.set_cell(0, schema.attr("capital").unwrap(), sy.intern("Beijing"));
        assert_eq!(t.diff_cells(&fixed).unwrap(), 1);
        let pos = t.diff_positions(&fixed).unwrap();
        assert_eq!(pos, vec![(0, schema.attr("capital").unwrap())]);
    }

    #[test]
    fn diff_rejects_shape_mismatch() {
        let (_, mut sy, mut t) = setup();
        t.push_strs(&mut sy, &["China", "Beijing"]).unwrap();
        let empty = Table::new(t.schema().clone());
        assert!(t.diff_cells(&empty).is_err());
    }

    #[test]
    fn try_row_bounds_checked() {
        let (_, _, t) = setup();
        assert!(matches!(
            t.try_row(0),
            Err(RelationError::RowOutOfBounds { row: 0, len: 0 })
        ));
    }

    #[test]
    fn rows_iterator_matches_row_access() {
        let (_, mut sy, mut t) = setup();
        t.push_strs(&mut sy, &["A", "B"]).unwrap();
        t.push_strs(&mut sy, &["C", "D"]).unwrap();
        let collected: Vec<Vec<Symbol>> = t.rows().map(|r| r.to_vec()).collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[1], t.row(1).to_vec());
    }
}
