//! Columnar table storage: one dense `Vec<Symbol>` per attribute.
//!
//! The repair semantics only ever read a tuple's projection on the
//! relevant-attribute closure, so a column-major layout turns signature
//! gathering into one tight integer scan per relevant attribute instead
//! of a strided walk across full rows. [`ColumnTable`] is the lossless
//! column-major twin of [`Table`]: conversion either way is a single
//! pass over the cells and `Table::from(ColumnTable::from(t)) == t`
//! cell for cell.

use crate::{AttrId, RelationError, Result, Schema, Symbol, Table};

/// A table stored column-major: `columns[a][i]` is row `i`'s value for
/// attribute `a`. `columns.len()` always equals the schema arity (which
/// [`Schema::new`] guarantees is at least 1); every column has the same
/// length, so `columns[0].len()` is the row count.
#[derive(Debug, Clone)]
pub struct ColumnTable {
    schema: Schema,
    columns: Vec<Vec<Symbol>>,
}

impl ColumnTable {
    /// Create an empty columnar table over `schema`.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        ColumnTable {
            schema,
            columns: vec![Vec::new(); arity],
        }
    }

    /// Create an empty columnar table with space reserved for `rows` rows
    /// in every column.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let arity = schema.arity();
        ColumnTable {
            schema,
            columns: (0..arity).map(|_| Vec::with_capacity(rows)).collect(),
        }
    }

    /// Transpose a row-major table into columns. One pass over the cells.
    pub fn from_table(table: &Table) -> Self {
        let mut out = ColumnTable::with_capacity(table.schema().clone(), table.len());
        for row in table.rows() {
            for (col, &sym) in out.columns.iter_mut().zip(row.iter()) {
                col.push(sym);
            }
        }
        out
    }

    /// Transpose back into a row-major [`Table`]. One pass over the cells.
    pub fn to_table(&self) -> Table {
        let mut out = Table::with_capacity(self.schema.clone(), self.len());
        let mut row = Vec::with_capacity(self.schema.arity());
        for i in 0..self.len() {
            row.clear();
            row.extend(self.columns.iter().map(|col| col[i]));
            out.push_row(&row).expect("columns match own schema arity");
        }
        out
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a row of pre-interned symbols.
    pub fn push_row(&mut self, row: &[Symbol]) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (col, &sym) in self.columns.iter_mut().zip(row.iter()) {
            col.push(sym);
        }
        Ok(())
    }

    /// Read one cell.
    #[inline]
    pub fn cell(&self, row: usize, attr: AttrId) -> Symbol {
        self.columns[attr.index()][row]
    }

    /// Overwrite one cell.
    #[inline]
    pub fn set_cell(&mut self, row: usize, attr: AttrId, value: Symbol) {
        self.columns[attr.index()][row] = value;
    }

    /// Borrow one attribute's column.
    #[inline]
    pub fn column(&self, attr: AttrId) -> &[Symbol] {
        &self.columns[attr.index()]
    }

    /// Borrow every column at once (index = attribute index).
    pub fn columns(&self) -> Vec<&[Symbol]> {
        self.columns.iter().map(Vec::as_slice).collect()
    }

    /// Borrow every column mutably at once (index = attribute index).
    pub fn columns_mut(&mut self) -> Vec<&mut [Symbol]> {
        self.columns.iter_mut().map(Vec::as_mut_slice).collect()
    }

    /// Copy row `i` into `buf` (cleared first), in attribute order.
    pub fn gather_row(&self, i: usize, buf: &mut Vec<Symbol>) {
        buf.clear();
        buf.extend(self.columns.iter().map(|col| col[i]));
    }

    /// Split the table into disjoint horizontal chunks of at most
    /// `chunk_rows` rows each (the last chunk may be shorter). Each chunk
    /// is a per-attribute list of mutable column slices, so chunks can be
    /// handed to worker threads for parallel grouped repair — the columnar
    /// analogue of [`Table::rows_mut_chunks`].
    pub fn columns_mut_chunks(&mut self, chunk_rows: usize) -> Vec<Vec<&mut [Symbol]>> {
        let chunk_rows = chunk_rows.max(1);
        let num_chunks = self.len().div_ceil(chunk_rows);
        let mut chunks: Vec<Vec<&mut [Symbol]>> = (0..num_chunks)
            .map(|_| Vec::with_capacity(self.columns.len()))
            .collect();
        for col in &mut self.columns {
            for (ci, chunk) in col.chunks_mut(chunk_rows).enumerate() {
                chunks[ci].push(chunk);
            }
        }
        chunks
    }
}

impl From<&Table> for ColumnTable {
    fn from(table: &Table) -> Self {
        ColumnTable::from_table(table)
    }
}

impl From<&ColumnTable> for Table {
    fn from(table: &ColumnTable) -> Self {
        table.to_table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolTable;

    fn sample() -> (Schema, SymbolTable, Table) {
        let schema = Schema::new("Cap", ["country", "capital"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(schema.clone());
        t.push_strs(&mut sy, &["China", "Beijing"]).unwrap();
        t.push_strs(&mut sy, &["Canada", "Ottawa"]).unwrap();
        t.push_strs(&mut sy, &["China", "Shanghai"]).unwrap();
        (schema, sy, t)
    }

    #[test]
    fn round_trip_preserves_cells() {
        let (_, _, t) = sample();
        let cols = ColumnTable::from_table(&t);
        assert_eq!(cols.len(), 3);
        let back = cols.to_table();
        assert_eq!(t.diff_cells(&back).unwrap(), 0);
    }

    #[test]
    fn columns_are_dense_per_attribute() {
        let (schema, sy, t) = sample();
        let cols = ColumnTable::from_table(&t);
        let country = schema.attr("country").unwrap();
        let col = cols.column(country);
        assert_eq!(col.len(), 3);
        assert_eq!(col[0], sy.get("China").unwrap());
        assert_eq!(col[1], sy.get("Canada").unwrap());
        assert_eq!(col[2], sy.get("China").unwrap());
    }

    #[test]
    fn cell_access_matches_row_major() {
        let (schema, _, t) = sample();
        let mut cols = ColumnTable::from_table(&t);
        let cap = schema.attr("capital").unwrap();
        for i in 0..t.len() {
            assert_eq!(cols.cell(i, cap), t.cell(i, cap));
        }
        let fresh = Symbol(999);
        cols.set_cell(1, cap, fresh);
        assert_eq!(cols.cell(1, cap), fresh);
        assert_eq!(cols.to_table().cell(1, cap), fresh);
    }

    #[test]
    fn push_row_checks_arity() {
        let (schema, _, _) = sample();
        let mut cols = ColumnTable::new(schema);
        assert!(cols.push_row(&[Symbol(0)]).is_err());
        cols.push_row(&[Symbol(0), Symbol(1)]).unwrap();
        assert_eq!(cols.len(), 1);
    }

    #[test]
    fn empty_table_round_trips() {
        let schema = Schema::new("R", ["a", "b"]).unwrap();
        let t = Table::new(schema);
        let mut cols = ColumnTable::from_table(&t);
        assert_eq!(cols.len(), 0);
        assert!(cols.is_empty());
        assert!(cols.columns_mut_chunks(4).is_empty());
        assert_eq!(cols.to_table().len(), 0);
    }

    #[test]
    fn chunks_cover_all_rows_disjointly() {
        let (_, _, t) = sample();
        let mut cols = ColumnTable::from_table(&t);
        let chunks = cols.columns_mut_chunks(2);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0][0].len(), 2);
        assert_eq!(chunks[1][0].len(), 1);
        // Writing through a chunk hits the underlying column.
        let fresh = Symbol(777);
        let mut chunks = cols.columns_mut_chunks(2);
        chunks[1][1][0] = fresh;
        assert_eq!(cols.cell(2, AttrId(1)), fresh);
    }
}
