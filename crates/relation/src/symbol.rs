//! String interning.
//!
//! Every distinct attribute value in play (table cells, rule patterns, facts)
//! is interned once into a [`SymbolTable`] and handled as a [`Symbol`]
//! afterwards. All equality tests in the repair and consistency algorithms
//! then become `u32` comparisons, and hash maps keyed by values hash a
//! single integer.

use std::collections::HashMap;
use std::fmt;

/// Interned handle for a string value.
///
/// Symbols are only meaningful relative to the [`SymbolTable`] that produced
/// them; two tables assign ids independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Raw index into the owning table's storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Append-only string interner.
///
/// `intern` is amortised O(1); `resolve` is a vector index. The table never
/// frees strings — the workloads here intern bounded vocabularies (active
/// domains plus typo corpora) so this is the right trade.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    by_name: HashMap<Box<str>, Symbol>,
    names: Vec<Box<str>>,
}

impl SymbolTable {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an interner sized for roughly `cap` distinct values.
    pub fn with_capacity(cap: usize) -> Self {
        SymbolTable {
            by_name: HashMap::with_capacity(cap),
            names: Vec::with_capacity(cap),
        }
    }

    /// Reserve space for at least `additional` more distinct values, so a
    /// bulk load (CSV import) interns without intermediate rehashes.
    pub fn reserve(&mut self, additional: usize) {
        self.by_name.reserve(additional);
        self.names.reserve(additional);
    }

    /// Intern `value`, returning the existing symbol if already present.
    pub fn intern(&mut self, value: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(value) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("more than u32::MAX symbols"));
        let boxed: Box<str> = value.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, sym);
        sym
    }

    /// Look up a value without interning it.
    pub fn get(&self, value: &str) -> Option<Symbol> {
        self.by_name.get(value).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this table.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Resolve without panicking.
    pub fn try_resolve(&self, sym: Symbol) -> Option<&str> {
        self.names.get(sym.index()).map(|s| &**s)
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(symbol, value)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("Beijing");
        let b = t.intern("Beijing");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_values_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("Beijing");
        let b = t.intern("Shanghai");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "Beijing");
        assert_eq!(t.resolve(b), "Shanghai");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert_eq!(t.get("Tokyo"), None);
        let s = t.intern("Tokyo");
        assert_eq!(t.get("Tokyo"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_string_is_a_value() {
        let mut t = SymbolTable::new();
        let e = t.intern("");
        assert_eq!(t.resolve(e), "");
        assert_ne!(e, t.intern("x"));
    }

    #[test]
    fn iter_in_interning_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        t.intern("c");
        let collected: Vec<&str> = t.iter().map(|(_, s)| s).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn try_resolve_unknown_is_none() {
        let t = SymbolTable::new();
        assert!(t.try_resolve(Symbol(42)).is_none());
    }

    #[test]
    fn with_capacity_starts_empty() {
        let t = SymbolTable::with_capacity(1024);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
