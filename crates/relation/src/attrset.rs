//! Fixed-size attribute bitsets.
//!
//! The repairing semantics of fixing rules revolve around the *assured* set
//! `A ⊆ attr(R)` that grows monotonically as rules are applied (§3.2 of the
//! paper). The chase tests membership on every candidate rule, so the set is
//! a `u128` bitset: insert/contains are single bit ops and the whole set fits
//! in two machine words (schemas are capped at 128 attributes by
//! [`crate::Schema::new`]).

use std::fmt;

use crate::AttrId;

/// A set of [`AttrId`]s backed by a `u128` bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AttrSet(u128);

impl AttrSet {
    /// The empty set.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// Create an empty set.
    pub fn new() -> Self {
        AttrSet(0)
    }

    /// Create a set from an iterator of attribute ids (also available via
    /// the `FromIterator` impl).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        let mut s = AttrSet(0);
        for a in iter {
            s.insert(a);
        }
        s
    }

    /// Singleton set.
    pub fn singleton(a: AttrId) -> Self {
        let mut s = AttrSet(0);
        s.insert(a);
        s
    }

    /// Insert an attribute; returns true if it was newly added.
    #[inline]
    pub fn insert(&mut self, a: AttrId) -> bool {
        let bit = 1u128 << a.0;
        let added = self.0 & bit == 0;
        self.0 |= bit;
        added
    }

    /// Remove an attribute; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, a: AttrId) -> bool {
        let bit = 1u128 << a.0;
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, a: AttrId) -> bool {
        self.0 & (1u128 << a.0) != 0
    }

    /// Union in place.
    #[inline]
    pub fn union_with(&mut self, other: AttrSet) {
        self.0 |= other.0;
    }

    /// Union, returning a new set.
    #[inline]
    pub fn union(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// Intersection, returning a new set.
    #[inline]
    pub fn intersect(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & !other.0)
    }

    /// True when the sets share no attribute.
    #[inline]
    pub fn is_disjoint(&self, other: AttrSet) -> bool {
        self.0 & other.0 == 0
    }

    /// True when every attribute of `self` is in `other`.
    #[inline]
    pub fn is_subset(&self, other: AttrSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Number of attributes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterate attribute ids in ascending order.
    pub fn iter(&self) -> AttrSetIter {
        AttrSetIter(self.0)
    }
}

/// Iterator over the attributes of an [`AttrSet`].
pub struct AttrSetIter(u128);

impl Iterator for AttrSetIter {
    type Item = AttrId;

    #[inline]
    fn next(&mut self) -> Option<AttrId> {
        if self.0 == 0 {
            return None;
        }
        let tz = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(AttrId(tz as u16))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrSetIter {}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        AttrSet::from_iter(iter)
    }
}

impl IntoIterator for AttrSet {
    type Item = AttrId;
    type IntoIter = AttrSetIter;

    fn into_iter(self) -> AttrSetIter {
        self.iter()
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|a| a.0)).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = AttrSet::new();
        assert!(s.insert(AttrId(3)));
        assert!(!s.insert(AttrId(3)));
        assert!(s.contains(AttrId(3)));
        assert!(!s.contains(AttrId(4)));
        assert!(s.remove(AttrId(3)));
        assert!(!s.remove(AttrId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn union_and_intersection() {
        let a = AttrSet::from_iter([AttrId(0), AttrId(2)]);
        let b = AttrSet::from_iter([AttrId(2), AttrId(5)]);
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersect(b), AttrSet::singleton(AttrId(2)));
        assert_eq!(a.difference(b), AttrSet::singleton(AttrId(0)));
    }

    #[test]
    fn disjoint_and_subset() {
        let a = AttrSet::from_iter([AttrId(1)]);
        let b = AttrSet::from_iter([AttrId(2), AttrId(3)]);
        assert!(a.is_disjoint(b));
        assert!(a.is_subset(a.union(b)));
        assert!(!b.is_subset(a));
        assert!(AttrSet::EMPTY.is_subset(a));
    }

    #[test]
    fn iterates_in_ascending_order() {
        let s = AttrSet::from_iter([AttrId(7), AttrId(1), AttrId(127)]);
        let ids: Vec<u16> = s.iter().map(|a| a.0).collect();
        assert_eq!(ids, vec![1, 7, 127]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn highest_bit_round_trips() {
        let mut s = AttrSet::new();
        s.insert(AttrId(127));
        assert!(s.contains(AttrId(127)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_with_grows_monotonically() {
        // Mirrors the assured-set growth in the chase: unioning in X ∪ {B}
        // never removes anything.
        let mut assured = AttrSet::new();
        let step1 = AttrSet::from_iter([AttrId(1), AttrId(2)]);
        let step2 = AttrSet::from_iter([AttrId(2), AttrId(4)]);
        assured.union_with(step1);
        let before = assured;
        assured.union_with(step2);
        assert!(before.is_subset(assured));
        assert_eq!(assured.len(), 3);
    }
}
