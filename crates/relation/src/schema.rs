//! Relation schemas.
//!
//! A [`Schema`] is an ordered list of attribute names with a dense
//! [`AttrId`] per attribute. Schemas are immutable after construction and
//! cheaply clonable (`Arc` inside), because tables, rules, and rule sets all
//! hold a reference to the schema they are defined on.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::{RelationError, Result};

/// Dense identifier for an attribute within one [`Schema`].
///
/// Stored as `u16`: the fixing-rule machinery tracks attribute sets in a
/// 128-bit bitset ([`crate::AttrSet`]), so 128 attributes is the hard cap
/// anyway and a small id keeps rule structs compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u16);

impl AttrId {
    /// Position of the attribute in the schema (= column index in a table).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr#{}", self.0)
    }
}

#[derive(Debug)]
struct SchemaInner {
    name: String,
    attrs: Vec<String>,
    by_name: HashMap<String, AttrId>,
}

/// An immutable relation schema.
#[derive(Debug, Clone)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

impl Schema {
    /// Build a schema from a relation name and attribute names.
    ///
    /// Fails on duplicate names, an empty attribute list, or more than 128
    /// attributes.
    pub fn new<N, I, S>(name: N, attrs: I) -> Result<Self>
    where
        N: Into<String>,
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        if attrs.is_empty() {
            return Err(RelationError::EmptySchema);
        }
        if attrs.len() > 128 {
            return Err(RelationError::TooManyAttributes(attrs.len()));
        }
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            if by_name.insert(a.clone(), AttrId(i as u16)).is_some() {
                return Err(RelationError::DuplicateAttribute(a.clone()));
            }
        }
        Ok(Schema {
            inner: Arc::new(SchemaInner {
                name: name.into(),
                attrs,
                by_name,
            }),
        })
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of attributes (`|R|` in the paper).
    pub fn arity(&self) -> usize {
        self.inner.attrs.len()
    }

    /// Look up an attribute id by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.inner.by_name.get(name).copied()
    }

    /// Look up an attribute id by name, erroring with the name on failure.
    pub fn attr_or_err(&self, name: &str) -> Result<AttrId> {
        self.attr(name)
            .ok_or_else(|| RelationError::UnknownAttribute(name.to_string()))
    }

    /// Name of an attribute.
    ///
    /// # Panics
    /// Panics if `id` is not an attribute of this schema.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.inner.attrs[id.index()]
    }

    /// All attribute ids in schema order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> {
        (0..self.inner.attrs.len() as u16).map(AttrId)
    }

    /// All attribute names in schema order.
    pub fn attr_names(&self) -> impl Iterator<Item = &str> {
        self.inner.attrs.iter().map(|s| &**s)
    }

    /// True when two values refer to the same schema object.
    ///
    /// Rules and tables are only compatible when built against the *same*
    /// schema instance; structural equality of attribute names is not enough
    /// because attribute ids index into tables positionally.
    pub fn same_as(&self, other: &Schema) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.inner.name)?;
        for (i, a) in self.inner.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn travel() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    #[test]
    fn attrs_get_dense_ids() {
        let s = travel();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.attr("name"), Some(AttrId(0)));
        assert_eq!(s.attr("conf"), Some(AttrId(4)));
        assert_eq!(s.attr("missing"), None);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Schema::new("R", ["a", "b", "a"]).unwrap_err();
        assert!(matches!(err, RelationError::DuplicateAttribute(n) if n == "a"));
    }

    #[test]
    fn empty_schema_rejected() {
        let err = Schema::new("R", Vec::<String>::new()).unwrap_err();
        assert!(matches!(err, RelationError::EmptySchema));
    }

    #[test]
    fn oversized_schema_rejected() {
        let names: Vec<String> = (0..129).map(|i| format!("a{i}")).collect();
        let err = Schema::new("R", names).unwrap_err();
        assert!(matches!(err, RelationError::TooManyAttributes(129)));
    }

    #[test]
    fn exactly_128_attributes_allowed() {
        let names: Vec<String> = (0..128).map(|i| format!("a{i}")).collect();
        let s = Schema::new("R", names).unwrap();
        assert_eq!(s.arity(), 128);
    }

    #[test]
    fn display_lists_attributes() {
        let s = travel();
        assert_eq!(s.to_string(), "Travel(name, country, capital, city, conf)");
    }

    #[test]
    fn same_as_is_identity_not_structure() {
        let a = travel();
        let b = a.clone();
        let c = travel();
        assert!(a.same_as(&b));
        assert!(!a.same_as(&c));
    }

    #[test]
    fn attr_names_round_trip() {
        let s = travel();
        for id in s.attr_ids() {
            assert_eq!(s.attr(s.attr_name(id)), Some(id));
        }
    }

    #[test]
    fn attr_or_err_reports_name() {
        let s = travel();
        let err = s.attr_or_err("nope").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }
}
