//! CSV import/export for [`Table`]s.
//!
//! The paper's datasets (hosp, uis) ship as delimited files; experiments in
//! `crates/eval` can persist generated datasets and repaired outputs so runs
//! are inspectable. Readers are buffered (`csv` buffers internally) and every
//! cell goes through the shared [`SymbolTable`] so a loaded table is
//! immediately usable by the rule engine.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::{Result, Schema, SymbolTable, Table};

/// Read a table from CSV text with a header row.
///
/// The header names become the schema attributes; `relation_name` names the
/// schema. Rows with a different arity than the header are rejected.
pub fn read_csv<R: Read>(
    mut reader: R,
    relation_name: &str,
    symbols: &mut SymbolTable,
) -> Result<Table> {
    // Buffer the whole input up front: the table retains every cell anyway,
    // and a newline count gives a row estimate that lets the symbol table
    // and the cell storage allocate once instead of rehashing/reallocating
    // through a million-row load. (Quoted embedded newlines only make the
    // estimate generous — capacity is a hint, not a contract.)
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    let estimated_rows = buf
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        .saturating_sub(1);
    let mut rdr = csv::ReaderBuilder::new()
        .has_headers(true)
        .flexible(false)
        .from_reader(buf.as_slice());
    let headers = rdr.headers()?.clone();
    let schema = Schema::new(relation_name, headers.iter())?;
    symbols.reserve(estimated_rows);
    let mut table = Table::with_capacity(schema, estimated_rows);
    let mut row: Vec<crate::Symbol> = Vec::with_capacity(headers.len());
    for record in rdr.records() {
        let record = record?;
        row.clear();
        row.extend(record.iter().map(|cell| symbols.intern(cell)));
        table.push_row(&row)?;
    }
    Ok(table)
}

/// Read a table from a CSV file on disk.
pub fn read_csv_file<P: AsRef<Path>>(
    path: P,
    relation_name: &str,
    symbols: &mut SymbolTable,
) -> Result<Table> {
    let file = File::open(path)?;
    read_csv(file, relation_name, symbols)
}

/// Write a table as CSV with a header row.
pub fn write_csv<W: Write>(writer: W, table: &Table, symbols: &SymbolTable) -> Result<()> {
    let mut wtr = csv::Writer::from_writer(writer);
    wtr.write_record(table.schema().attr_names())?;
    for i in 0..table.len() {
        wtr.write_record(table.row(i).iter().map(|&s| symbols.resolve(s)))?;
    }
    wtr.flush()?;
    Ok(())
}

/// Write a table to a CSV file on disk (buffered).
pub fn write_csv_file<P: AsRef<Path>>(path: P, table: &Table, symbols: &SymbolTable) -> Result<()> {
    let file = BufWriter::new(File::create(path)?);
    write_csv(file, table, symbols)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "country,capital\nChina,Beijing\nCanada,Ottawa\n";

    #[test]
    fn read_builds_schema_from_header() {
        let mut sy = SymbolTable::new();
        let t = read_csv(SAMPLE.as_bytes(), "Cap", &mut sy).unwrap();
        assert_eq!(t.schema().name(), "Cap");
        assert_eq!(t.schema().arity(), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row_strs(&sy, 1), vec!["Canada", "Ottawa"]);
    }

    #[test]
    fn round_trip_preserves_content() {
        let mut sy = SymbolTable::new();
        let t = read_csv(SAMPLE.as_bytes(), "Cap", &mut sy).unwrap();
        let mut out = Vec::new();
        write_csv(&mut out, &t, &sy).unwrap();
        let mut sy2 = SymbolTable::new();
        let t2 = read_csv(out.as_slice(), "Cap", &mut sy2).unwrap();
        assert_eq!(t.len(), t2.len());
        for i in 0..t.len() {
            assert_eq!(t.row_strs(&sy, i), t2.row_strs(&sy2, i));
        }
    }

    #[test]
    fn ragged_rows_rejected() {
        let bad = "a,b\n1\n";
        let mut sy = SymbolTable::new();
        assert!(read_csv(bad.as_bytes(), "R", &mut sy).is_err());
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        let mut sy = SymbolTable::new();
        let schema = Schema::new("R", ["addr", "city"]).unwrap();
        let mut t = Table::new(schema);
        t.push_strs(&mut sy, &["12 Main St, Apt 4", "Doha"])
            .unwrap();
        let mut out = Vec::new();
        write_csv(&mut out, &t, &sy).unwrap();
        let mut sy2 = SymbolTable::new();
        let t2 = read_csv(out.as_slice(), "R", &mut sy2).unwrap();
        assert_eq!(t2.row_strs(&sy2, 0)[0], "12 Main St, Apt 4");
    }

    #[test]
    fn file_round_trip() {
        let mut sy = SymbolTable::new();
        let t = read_csv(SAMPLE.as_bytes(), "Cap", &mut sy).unwrap();
        let dir = std::env::temp_dir().join("relation_csv_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cap.csv");
        write_csv_file(&path, &t, &sy).unwrap();
        let mut sy2 = SymbolTable::new();
        let t2 = read_csv_file(&path, "Cap", &mut sy2).unwrap();
        assert_eq!(t2.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
