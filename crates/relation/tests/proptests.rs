//! Property-based tests for the relational substrate.

use proptest::prelude::*;
use relation::{AttrId, AttrSet, Schema, SymbolTable, Table};

proptest! {
    /// Interning the same strings twice yields the same symbols, and
    /// resolving always round-trips.
    #[test]
    fn symbol_round_trip(values in proptest::collection::vec("[a-zA-Z0-9 ]{0,12}", 0..64)) {
        let mut t = SymbolTable::new();
        let first: Vec<_> = values.iter().map(|v| t.intern(v)).collect();
        let second: Vec<_> = values.iter().map(|v| t.intern(v)).collect();
        prop_assert_eq!(&first, &second);
        for (sym, v) in first.iter().zip(values.iter()) {
            prop_assert_eq!(t.resolve(*sym), v.as_str());
        }
        // Distinct strings must have distinct symbols.
        let mut seen = std::collections::HashMap::new();
        for (sym, v) in first.iter().zip(values.iter()) {
            if let Some(prev) = seen.insert(v.clone(), *sym) {
                prop_assert_eq!(prev, *sym);
            }
        }
    }

    /// AttrSet behaves like a HashSet<u16> under insert/remove/union.
    #[test]
    fn attrset_models_hashset(ops in proptest::collection::vec((0u16..128, any::<bool>()), 0..200)) {
        let mut bits = AttrSet::new();
        let mut model = std::collections::HashSet::new();
        for (attr, insert) in ops {
            let a = AttrId(attr);
            if insert {
                prop_assert_eq!(bits.insert(a), model.insert(attr));
            } else {
                prop_assert_eq!(bits.remove(a), model.remove(&attr));
            }
        }
        prop_assert_eq!(bits.len(), model.len());
        for a in bits.iter() {
            prop_assert!(model.contains(&a.0));
        }
    }

    /// Union/intersection/difference satisfy the usual algebraic laws.
    #[test]
    fn attrset_algebra(
        xs in proptest::collection::vec(0u16..128, 0..32),
        ys in proptest::collection::vec(0u16..128, 0..32),
    ) {
        let a = AttrSet::from_iter(xs.into_iter().map(AttrId));
        let b = AttrSet::from_iter(ys.into_iter().map(AttrId));
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.intersect(b), b.intersect(a));
        prop_assert_eq!(a.union(b).len() , a.len() + b.len() - a.intersect(b).len());
        prop_assert!(a.difference(b).is_disjoint(b));
        prop_assert!(a.intersect(b).is_subset(a));
        prop_assert!(a.is_subset(a.union(b)));
    }

    /// Table cell writes are visible at exactly the written position.
    #[test]
    fn table_set_cell_is_local(
        rows in proptest::collection::vec(("[a-z]{1,4}", "[a-z]{1,4}", "[a-z]{1,4}"), 1..20),
        target_row in 0usize..20,
        target_col in 0u16..3,
    ) {
        let schema = Schema::new("R", ["a", "b", "c"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(schema.clone());
        for (x, y, z) in &rows {
            t.push_strs(&mut sy, &[x, y, z]).unwrap();
        }
        let target_row = target_row % rows.len();
        let before = t.clone();
        let fresh = sy.intern("zz-unique-value-zz");
        t.set_cell(target_row, AttrId(target_col), fresh);
        let diffs = before.diff_positions(&t).unwrap();
        if before.cell(target_row, AttrId(target_col)) == fresh {
            prop_assert!(diffs.is_empty());
        } else {
            prop_assert_eq!(diffs, vec![(target_row, AttrId(target_col))]);
        }
    }

    /// Row-major ↔ column-major conversion is lossless in both
    /// directions, and the columnar cell view agrees with the row view.
    #[test]
    fn column_table_round_trip(
        rows in proptest::collection::vec(("[a-z]{0,6}", "[a-z]{0,6}", "[a-z]{0,6}"), 0..24),
    ) {
        let schema = Schema::new("R", ["a", "b", "c"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(schema);
        for (x, y, z) in &rows {
            t.push_strs(&mut sy, &[x, y, z]).unwrap();
        }
        let cols = relation::ColumnTable::from(&t);
        prop_assert_eq!(cols.len(), t.len());
        for i in 0..t.len() {
            for a in 0..3u16 {
                prop_assert_eq!(cols.cell(i, AttrId(a)), t.cell(i, AttrId(a)));
            }
        }
        let back = cols.to_table();
        prop_assert!(back.diff_positions(&t).unwrap().is_empty());
        // And the other direction: Table built from columns round-trips.
        let cols2 = relation::ColumnTable::from(&back);
        prop_assert_eq!(cols2.to_table().diff_positions(&t).unwrap(), vec![]);
    }

    /// CSV round-trips arbitrary printable content, including separators.
    #[test]
    fn csv_round_trip(rows in proptest::collection::vec(("[ -~]{0,10}", "[ -~]{0,10}"), 1..16)) {
        let schema = Schema::new("R", ["x", "y"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(schema);
        for (x, y) in &rows {
            t.push_strs(&mut sy, &[x, y]).unwrap();
        }
        let mut buf = Vec::new();
        relation::csv_io::write_csv(&mut buf, &t, &sy).unwrap();
        let mut sy2 = SymbolTable::new();
        let t2 = relation::csv_io::read_csv(buf.as_slice(), "R", &mut sy2).unwrap();
        prop_assert_eq!(t.len(), t2.len());
        for i in 0..t.len() {
            prop_assert_eq!(t.row_strs(&sy, i), t2.row_strs(&sy2, i));
        }
    }
}
