//! Property-based tests for the baseline repair algorithms.

use proptest::prelude::*;

use baselines::{csm_repair, edit_repair, heu_repair, heu_repair_equiv, EditRuleSet};
use fd::violation::satisfies_all;
use fd::Fd;
use relation::{AttrId, Schema, Symbol, SymbolTable, Table};

const ARITY: usize = 4;

fn schema() -> Schema {
    Schema::new("R", ["a0", "a1", "a2", "a3"]).unwrap()
}

fn tables() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..4, ARITY..=ARITY), 0..24)
}

fn fd_specs() -> impl Strategy<Value = Vec<(Vec<u16>, u16)>> {
    proptest::collection::vec(
        (
            proptest::collection::hash_set(0u16..ARITY as u16, 1..2)
                .prop_map(|s| s.into_iter().collect::<Vec<u16>>()),
            0u16..ARITY as u16,
        ),
        1..4,
    )
}

fn build(rows: &[Vec<u32>], specs: &[(Vec<u16>, u16)]) -> Option<(Table, Vec<Fd>, SymbolTable)> {
    let s = schema();
    let mut fds = Vec::new();
    for (lhs, rhs) in specs {
        if lhs.contains(rhs) {
            continue;
        }
        fds.push(
            Fd::new(
                &s,
                lhs.iter().map(|&a| AttrId(a)).collect(),
                vec![AttrId(*rhs)],
            )
            .ok()?,
        );
    }
    if fds.is_empty() {
        return None;
    }
    let mut sy = SymbolTable::new();
    // Intern the numeric vocabulary so Symbol ids are dense and resolvable
    // (Heu's fresh values extend the same interner).
    for v in 0..4u32 {
        sy.intern(&v.to_string());
    }
    let mut t = Table::new(s);
    for r in rows {
        let syms: Vec<Symbol> = r.iter().map(|v| Symbol(*v)).collect();
        t.push_row(&syms).ok()?;
    }
    Some((t, fds, sy))
}

proptest! {
    /// Heu (both variants) terminates and produces an FD-consistent table.
    #[test]
    fn heu_always_reaches_consistency(rows in tables(), specs in fd_specs()) {
        let Some((t, fds, mut sy)) = build(&rows, &specs) else { return Ok(()) };
        let mut a = t.clone();
        let out = heu_repair(&mut a, &fds, 20, &mut sy);
        prop_assert!(out.consistent, "default Heu stuck: {out:?}");
        prop_assert!(satisfies_all(&a, &fds));
        // The equivalence-class variant guarantees consistency only when
        // no FD's RHS feeds another FD's LHS (changing an RHS cell then
        // re-keys the other FD's partition). Check termination always and
        // the consistency flag's honesty; check full consistency in the
        // non-overlapping case.
        let mut b = t.clone();
        let out = heu_repair_equiv(&mut b, &fds, 20);
        prop_assert!(out.rounds <= 20);
        prop_assert_eq!(out.consistent, satisfies_all(&b, &fds));
        let rhs_feeds_lhs = fds.iter().any(|x| {
            fds.iter().any(|y| !x.rhs_set().is_disjoint(y.lhs_set()))
        });
        if !rhs_feeds_lhs {
            prop_assert!(out.consistent, "equiv Heu stuck: {out:?}");
        }
    }

    /// Csm terminates, produces a consistent sample, and is seed-stable.
    #[test]
    fn csm_consistent_and_deterministic(rows in tables(), specs in fd_specs(), seed in 0u64..64) {
        let Some((t, fds, _sy)) = build(&rows, &specs) else { return Ok(()) };
        let mut a = t.clone();
        let out = csm_repair(&mut a, &fds, 30, seed);
        prop_assert!(out.consistent, "Csm stuck: {out:?}");
        prop_assert!(satisfies_all(&a, &fds));
        let mut b = t.clone();
        csm_repair(&mut b, &fds, 30, seed);
        prop_assert_eq!(a.diff_cells(&b).unwrap(), 0, "same seed, different repair");
    }

    /// Automated edit rules: every change writes the rule's fact, and
    /// repaired tuples no longer match any rule.
    #[test]
    fn edit_rules_apply_facts_exactly(
        rows in tables(),
        evidences in proptest::collection::vec((0u16..ARITY as u16, 0u32..4, 0u32..4), 1..4),
    ) {
        let s = schema();
        let mut sy = SymbolTable::new();
        for v in 0..4u32 {
            sy.intern(&v.to_string());
        }
        let mut fixing = fixrules::RuleSet::new(s.clone());
        for (attr, ev, fact) in &evidences {
            let b = AttrId((attr + 1) % ARITY as u16);
            let neg = vec![Symbol((*fact + 1) % 4)];
            if let Ok(rule) = fixrules::FixingRule::new(
                vec![(AttrId(*attr), Symbol(*ev))],
                b,
                neg,
                Symbol(*fact),
            ) {
                fixing.push(rule);
            }
        }
        let edits = EditRuleSet::from_fixing_rules(&fixing);
        let mut t = Table::new(s);
        for r in &rows {
            let syms: Vec<Symbol> = r.iter().map(|v| Symbol(*v)).collect();
            t.push_row(&syms).unwrap();
        }
        let ups = edit_repair(&edits, &mut t);
        for u in &ups {
            prop_assert_eq!(t.cell(u.row, u.attr), u.new);
            prop_assert_ne!(u.old, u.new);
        }
        // Each rule fires at most once per row.
        let mut seen = std::collections::HashSet::new();
        for u in &ups {
            prop_assert!(seen.insert((u.row, u.rule.0)), "rule fired twice on a row");
        }
    }
}
