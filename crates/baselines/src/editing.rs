//! `Edit` — automated editing rules, the Exp-2(d) comparator.
//!
//! Editing rules [Fan et al., VLDBJ'12] update a tuple from master data once
//! a user certifies the matched region. The paper automates them for a fair
//! fight: *"we removed negative patterns in fixing rules, to simulate
//! editing rules. Specifically, each time when seeing an evidence pattern,
//! it simulated users by saying yes, and then updated the right hand side
//! value to the fact."*
//!
//! So an [`EditRule`] is a fixing rule minus `Tp[B]`: whenever `t[X] =
//! tp[X]` and `t[B] ≠ tp+[B]`, set `t[B] := tp+[B]` (and assure `X ∪ {B}`,
//! keeping the chase semantics aligned). The predictable failure mode —
//! and the reason Fix beats Edit in Fig 12(b) — is that an error *inside the
//! evidence* is trusted as correct and triggers a wrong update, whereas a
//! fixing rule would not have matched its negative patterns.

use relation::{AttrId, AttrSet, Symbol, Table};

use fixrules::{RuleId, RuleSet};

/// An automated editing rule: evidence pattern → fact, no negative patterns.
#[derive(Debug, Clone)]
pub struct EditRule {
    x: Vec<AttrId>,
    tp: Vec<Symbol>,
    x_set: AttrSet,
    b: AttrId,
    fact: Symbol,
}

impl EditRule {
    /// The evidence attributes.
    pub fn x(&self) -> &[AttrId] {
        &self.x
    }

    /// The repaired attribute.
    pub fn b(&self) -> AttrId {
        self.b
    }

    /// The fact written on a match.
    pub fn fact(&self) -> Symbol {
        self.fact
    }

    fn matches(&self, row: &[Symbol]) -> bool {
        self.x
            .iter()
            .zip(self.tp.iter())
            .all(|(&a, &v)| row[a.index()] == v)
            && row[self.b.index()] != self.fact
    }
}

/// A set of automated editing rules derived from fixing rules.
#[derive(Debug, Clone)]
pub struct EditRuleSet {
    rules: Vec<EditRule>,
}

impl EditRuleSet {
    /// Strip the negative patterns off every fixing rule in `rules`.
    pub fn from_fixing_rules(rules: &RuleSet) -> Self {
        let rules = rules
            .rules()
            .iter()
            .map(|r| EditRule {
                x: r.x().to_vec(),
                tp: r.tp().to_vec(),
                x_set: r.x_set(),
                b: r.b(),
                fact: r.fact(),
            })
            .collect();
        EditRuleSet { rules }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// One applied edit.
#[derive(Debug, Clone, Copy)]
pub struct EditUpdate {
    /// Row index.
    pub row: usize,
    /// Updated attribute.
    pub attr: AttrId,
    /// Previous value.
    pub old: Symbol,
    /// New value (the fact).
    pub new: Symbol,
    /// Index of the edit rule that fired.
    pub rule: RuleId,
}

/// Repair `table` in place with automated editing rules (chase semantics,
/// assured attributes frozen as in the fixing-rule engine).
pub fn edit_repair(rules: &EditRuleSet, table: &mut Table) -> Vec<EditUpdate> {
    let mut updates = Vec::new();
    for i in 0..table.len() {
        let row = table.row_mut(i);
        let mut assured = AttrSet::EMPTY;
        let mut used = vec![false; rules.rules.len()];
        let mut progressed = true;
        while progressed {
            progressed = false;
            for (k, rule) in rules.rules.iter().enumerate() {
                if used[k] || assured.contains(rule.b) || !rule.matches(row) {
                    continue;
                }
                let old = row[rule.b.index()];
                row[rule.b.index()] = rule.fact;
                let mut delta = rule.x_set;
                delta.insert(rule.b);
                assured.union_with(delta);
                used[k] = true;
                progressed = true;
                updates.push(EditUpdate {
                    row: i,
                    attr: rule.b,
                    old,
                    new: rule.fact,
                    rule: RuleId(k as u32),
                });
            }
        }
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn setup() -> (Schema, SymbolTable, RuleSet) {
        let s = Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s.clone());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        rs.push_named(
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        (s, sy, rs)
    }

    #[test]
    fn strips_negative_patterns() {
        let (_, _, rs) = setup();
        let edits = EditRuleSet::from_fixing_rules(&rs);
        assert_eq!(edits.len(), 2);
    }

    #[test]
    fn fires_without_negative_evidence() {
        // (China, Nanjing): the fixing rule would NOT fire (Nanjing is not
        // a negative pattern) — the edit rule does.
        let (s, mut sy, rs) = setup();
        let edits = EditRuleSet::from_fixing_rules(&rs);
        let mut t = Table::new(s.clone());
        t.push_strs(&mut sy, &["p", "China", "Nanjing", "x", "c"])
            .unwrap();
        let ups = edit_repair(&edits, &mut t);
        assert_eq!(ups.len(), 1);
        assert_eq!(sy.resolve(t.cell(0, s.attr("capital").unwrap())), "Beijing");
    }

    #[test]
    fn evidence_error_causes_wrong_fix() {
        // Truth is (Canada, Ottawa) but country was corrupted to China: the
        // edit rule trusts the evidence and wrongly rewrites the correct
        // capital — the Fig 12(b) failure mode.
        let (s, mut sy, rs) = setup();
        let edits = EditRuleSet::from_fixing_rules(&rs);
        let mut t = Table::new(s.clone());
        t.push_strs(&mut sy, &["p", "China", "Ottawa", "x", "c"])
            .unwrap();
        let ups = edit_repair(&edits, &mut t);
        assert_eq!(ups.len(), 1);
        assert_eq!(sy.resolve(t.cell(0, s.attr("capital").unwrap())), "Beijing");
        // The corresponding fixing rule stays conservative:
        let mut t2 = Table::new(s.clone());
        t2.push_strs(&mut sy, &["p", "China", "Ottawa", "x", "c"])
            .unwrap();
        let index = fixrules::repair::LRepairIndex::build(&rs);
        let out = fixrules::repair::lrepair_table(&rs, &index, &mut t2);
        assert_eq!(out.total_updates(), 0);
    }

    #[test]
    fn already_fact_is_a_noop() {
        let (s, mut sy, rs) = setup();
        let edits = EditRuleSet::from_fixing_rules(&rs);
        let mut t = Table::new(s.clone());
        t.push_strs(&mut sy, &["p", "China", "Beijing", "x", "c"])
            .unwrap();
        assert!(edit_repair(&edits, &mut t).is_empty());
    }

    #[test]
    fn assured_attributes_freeze_chains() {
        // Two edit rules targeting the same B: first match assures B, the
        // second cannot re-edit.
        let s = Schema::new("T", ["a", "b", "c"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s.clone());
        rs.push_named(&mut sy, &[("a", "k")], "c", &["z"], "v1")
            .unwrap();
        rs.push_named(&mut sy, &[("b", "k")], "c", &["z"], "v2")
            .unwrap();
        let edits = EditRuleSet::from_fixing_rules(&rs);
        let mut t = Table::new(s.clone());
        t.push_strs(&mut sy, &["k", "k", "z"]).unwrap();
        let ups = edit_repair(&edits, &mut t);
        assert_eq!(ups.len(), 1);
        assert_eq!(sy.resolve(t.cell(0, s.attr("c").unwrap())), "v1");
    }
}
