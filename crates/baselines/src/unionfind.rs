//! Union–find over table cells, the substrate of the `Heu` equivalence
//! classes.

/// Disjoint-set forest with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p];
            self.parent[x] = gp;
            x = gp as usize;
        }
    }

    /// Merge the sets of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        big
    }

    /// Are `a` and `b` in the same set?
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_separate() {
        let mut uf = UnionFind::new(4);
        assert!(!uf.same(0, 1));
        assert_eq!(uf.find(2), 2);
    }

    #[test]
    fn union_links_transitively() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(3);
        let r1 = uf.union(0, 1);
        let r2 = uf.union(0, 1);
        assert_eq!(r1, r2);
    }

    #[test]
    fn large_chain_is_flattened() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        let root = uf.find(0);
        for i in 0..n {
            assert_eq!(uf.find(i), root);
        }
    }
}
