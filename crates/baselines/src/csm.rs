//! `Csm` — cardinality-set-minimal repair sampling, after Beskales et al.
//! (PVLDB'10, "Sampling the repairs of functional dependency violations
//! under hard constraints").
//!
//! The published sampler draws one repair from the space of
//! *cardinality-set-minimal* repairs: repairs where un-changing any subset
//! of the modified cells re-violates some FD. Our reimplementation walks
//! violations in a random order and resolves each violated group by
//! nominating a random witness row whose RHS value the rest of the group
//! adopts — every change is forced by a violation, so no changed cell can be
//! reverted alone, giving the set-minimality shape. Rounds repeat while
//! violations remain (interacting FDs) up to `max_rounds`.

use fd::violation::{detect_violations, satisfies_all};
use fd::Fd;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use relation::Table;

/// Statistics of a `Csm` run.
#[derive(Debug, Clone, Default)]
pub struct CsmOutcome {
    /// Cells changed.
    pub updates: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether the sampled repair satisfies every FD.
    pub consistent: bool,
}

/// Sample one repair of `table` against `fds`, seeded for reproducibility.
pub fn csm_repair(table: &mut Table, fds: &[Fd], max_rounds: usize, seed: u64) -> CsmOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let singles: Vec<Fd> = fds.iter().flat_map(|fd| fd.split_rhs()).collect();
    let mut outcome = CsmOutcome::default();
    for _ in 0..max_rounds.max(1) {
        outcome.rounds += 1;
        // Random FD processing order, as the sampler explores repair space.
        let mut order: Vec<usize> = (0..singles.len()).collect();
        order.shuffle(&mut rng);
        let mut changed = 0usize;
        for &fi in &order {
            let fd = &singles[fi];
            let rhs = fd.rhs()[0];
            // Violations against the *current* table state.
            let violations = detect_violations(table, fd);
            for v in violations {
                // Nominate a random value among those present (weighted by
                // support, by picking a random member row).
                let total: usize = v.values.iter().map(|(_, rows)| rows.len()).sum();
                let mut pick = rng.gen_range(0..total);
                let mut target = v.values[0].0;
                'outer: for (val, rows) in &v.values {
                    if pick < rows.len() {
                        target = *val;
                        break 'outer;
                    }
                    pick -= rows.len();
                }
                for (val, rows) in &v.values {
                    if *val == target {
                        continue;
                    }
                    for &r in rows {
                        table.set_cell(r, rhs, target);
                        changed += 1;
                    }
                }
            }
        }
        outcome.updates += changed;
        if satisfies_all(table, fds) {
            outcome.consistent = true;
            return outcome;
        }
        if changed == 0 {
            break;
        }
    }
    outcome.consistent = satisfies_all(table, fds);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn setup() -> (Schema, SymbolTable) {
        (
            Schema::new("T", ["country", "capital"]).unwrap(),
            SymbolTable::new(),
        )
    }

    #[test]
    fn sampled_repair_is_consistent() {
        let (s, mut sy) = setup();
        let mut t = Table::new(s.clone());
        for row in [
            ["China", "Beijing"],
            ["China", "Shanghai"],
            ["China", "Beijing"],
            ["Canada", "Ottawa"],
        ] {
            t.push_strs(&mut sy, &row).unwrap();
        }
        let fd = Fd::from_names(&s, ["country"], ["capital"]).unwrap();
        let out = csm_repair(&mut t, &[fd], 10, 42);
        assert!(out.consistent);
        let cap = s.attr("capital").unwrap();
        assert_eq!(t.cell(0, cap), t.cell(1, cap));
        assert_eq!(t.cell(1, cap), t.cell(2, cap));
    }

    #[test]
    fn same_seed_same_repair() {
        let (s, mut sy) = setup();
        let mut base = Table::new(s.clone());
        for row in [["China", "A"], ["China", "B"], ["China", "C"]] {
            base.push_strs(&mut sy, &row).unwrap();
        }
        let fd = Fd::from_names(&s, ["country"], ["capital"]).unwrap();
        let mut t1 = base.clone();
        let mut t2 = base.clone();
        csm_repair(&mut t1, std::slice::from_ref(&fd), 10, 7);
        csm_repair(&mut t2, &[fd], 10, 7);
        assert_eq!(t1.diff_cells(&t2).unwrap(), 0);
    }

    #[test]
    fn different_seeds_sample_different_repairs() {
        // With 3 equally-supported values, different seeds should
        // eventually nominate different targets.
        let (s, mut sy) = setup();
        let mut base = Table::new(s.clone());
        for row in [["China", "A"], ["China", "B"], ["China", "C"]] {
            base.push_strs(&mut sy, &row).unwrap();
        }
        let fd = Fd::from_names(&s, ["country"], ["capital"]).unwrap();
        let cap = s.attr("capital").unwrap();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..20 {
            let mut t = base.clone();
            csm_repair(&mut t, std::slice::from_ref(&fd), 10, seed);
            seen.insert(t.cell(0, cap));
        }
        assert!(seen.len() > 1, "sampler collapsed to one repair");
    }

    #[test]
    fn clean_table_untouched() {
        let (s, mut sy) = setup();
        let mut t = Table::new(s.clone());
        t.push_strs(&mut sy, &["China", "Beijing"]).unwrap();
        t.push_strs(&mut sy, &["Japan", "Tokyo"]).unwrap();
        let fd = Fd::from_names(&s, ["country"], ["capital"]).unwrap();
        let out = csm_repair(&mut t, &[fd], 10, 1);
        assert!(out.consistent);
        assert_eq!(out.updates, 0);
    }

    #[test]
    fn multi_fd_interaction_converges() {
        let s = Schema::new("T", ["zip", "state", "mc", "avg"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(s.clone());
        for row in [
            ["10001", "NY", "m1", "x"],
            ["10001", "NJ", "m1", "y"],
            ["10002", "NY", "m1", "z"],
        ] {
            t.push_strs(&mut sy, &row).unwrap();
        }
        let fds = vec![
            Fd::from_names(&s, ["zip"], ["state"]).unwrap(),
            Fd::from_names(&s, ["state", "mc"], ["avg"]).unwrap(),
        ];
        let out = csm_repair(&mut t, &fds, 20, 5);
        assert!(out.consistent, "rounds: {}", out.rounds);
    }
}
