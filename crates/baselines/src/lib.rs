//! Comparator algorithms for the fixing-rules evaluation (§7).
//!
//! The paper compares fixing rules against:
//!
//! * [`heu`] — `Heu`: the cost-based heuristic FD repair of Bohannon et al.
//!   (SIGMOD'05), reimplemented via cell equivalence classes and weighted
//!   majority targets.
//! * [`csm`] — `Csm`: cardinality-set-minimal repair sampling of Beskales
//!   et al. (PVLDB'10), a randomized set-minimal repair generator.
//! * [`editing`] — `Edit`: the automated editing-rules simulation of
//!   Exp-2(d): fixing rules with their negative patterns stripped, evidence
//!   matches auto-confirmed.
//!
//! All three are reimplementations of the published algorithms' cores, not
//! the authors' binaries — see DESIGN.md §5 for why this preserves the
//! comparison's shape.

pub mod csm;
pub mod editing;
pub mod heu;
pub mod unionfind;

pub use csm::csm_repair;
pub use editing::{edit_repair, EditRuleSet};
pub use heu::{heu_repair, heu_repair_equiv, heu_repair_with, HeuConfig};
