//! `Heu` — cost-based heuristic FD repair, after Bohannon et al. (SIGMOD'05,
//! "A cost-based model and effective heuristic for repairing constraints by
//! value modification").
//!
//! The published algorithm repairs each violation with the **cheapest**
//! value modification, measured in changed cells: tuples that disagree with
//! their group's majority on a few RHS attributes are conformed to the
//! majority. [`HeuConfig::lhs_eviction`] additionally enables a cheap-side
//! repair: a tuple that disagrees on *more* RHS cells than its LHS has
//! attributes is detached by setting its LHS cells to fresh values outside
//! every active domain (cost = |LHS| cells). The classical equivalence-class
//! implementations the paper benchmarked conform RHS cells only, and the
//! paper's measured Heu precision collapse under active-domain noise matches
//! that behaviour, so eviction defaults to **off**; turning it on isolates
//! how much of Heu's precision loss comes from key-corrupted tuples (see the
//! `ablation` benches and EXPERIMENTS.md).
//!
//! Because grouping uses the *dirty* LHS values, an error on an LHS
//! attribute still drags an innocent tuple into a foreign group; with few
//! deviating cells the majority then overwrites the tuple's correct RHS —
//! the paper's explanation for why heuristic repairs lose precision as
//! active-domain errors grow (Fig 10(a)). Rounds repeat until no FD is
//! violated or `max_rounds` is reached (repairing one FD's RHS can perturb
//! another FD whose LHS overlaps it).

use std::collections::HashMap;

use fd::partition::Partition;
use fd::violation::satisfies_all;
use fd::Fd;
use relation::{Symbol, SymbolTable, Table};

/// Configuration for [`heu_repair_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuConfig {
    /// Repair key-suspect tuples by detaching their LHS (fresh values)
    /// instead of conforming their RHS cells when that is cheaper.
    pub lhs_eviction: bool,
}

/// Statistics of a `Heu` run.
#[derive(Debug, Clone, Default)]
pub struct HeuOutcome {
    /// Cells changed.
    pub updates: usize,
    /// Tuples repaired by LHS modification (detached into fresh groups).
    pub evictions: usize,
    /// Rows quarantined by the last-resort fallback (all FD-covered cells
    /// freshened — the value-modification analogue of tuple deletion).
    pub quarantined: usize,
    /// Full rounds executed.
    pub rounds: usize,
    /// Whether the final table satisfies every FD.
    pub consistent: bool,
}

/// Repair `table` in place against `fds`.
///
/// `symbols` is needed to mint the fresh LHS values used by cheap-side
/// repairs.
pub fn heu_repair(
    table: &mut Table,
    fds: &[Fd],
    max_rounds: usize,
    symbols: &mut SymbolTable,
) -> HeuOutcome {
    heu_repair_with(table, fds, max_rounds, symbols, HeuConfig::default())
}

/// [`heu_repair`] with explicit configuration.
pub fn heu_repair_with(
    table: &mut Table,
    fds: &[Fd],
    max_rounds: usize,
    symbols: &mut SymbolTable,
    config: HeuConfig,
) -> HeuOutcome {
    let mut outcome = HeuOutcome::default();
    let mut fresh_counter = 0usize;
    for _ in 0..max_rounds.max(1) {
        outcome.rounds += 1;
        let mut changed = 0usize;
        for fd in fds {
            let rhs_attrs: Vec<_> = fd.rhs().to_vec();
            let partition = Partition::build(table, fd.lhs());
            // Collect per-group majorities first (immutable borrow), then
            // apply the cost-based repairs.
            #[allow(clippy::type_complexity)]
            let mut planned: Vec<(usize, Vec<(relation::AttrId, Symbol)>)> = Vec::new();
            let mut evict: Vec<usize> = Vec::new();
            for (_, rows) in partition.non_singleton_groups() {
                // Majority value per RHS attribute (ties: smaller symbol).
                let majorities: Vec<Symbol> = rhs_attrs
                    .iter()
                    .map(|&a| {
                        let mut counts: HashMap<Symbol, usize> = HashMap::new();
                        for &r in rows {
                            *counts.entry(table.cell(r, a)).or_insert(0) += 1;
                        }
                        counts
                            .into_iter()
                            .max_by(|x, y| x.1.cmp(&y.1).then(y.0.cmp(&x.0)))
                            .map(|(v, _)| v)
                            .expect("non-empty group")
                    })
                    .collect();
                for &r in rows {
                    let deviations: Vec<(relation::AttrId, Symbol)> = rhs_attrs
                        .iter()
                        .zip(majorities.iter())
                        .filter(|(&a, &m)| table.cell(r, a) != m)
                        .map(|(&a, &m)| (a, m))
                        .collect();
                    if deviations.is_empty() {
                        continue;
                    }
                    if config.lhs_eviction && deviations.len() > fd.lhs().len() {
                        // Cheaper to repair the LHS: detach the tuple.
                        evict.push(r);
                    } else {
                        planned.push((r, deviations));
                    }
                }
            }
            for (r, deviations) in planned {
                for (a, m) in deviations {
                    table.set_cell(r, a, m);
                    changed += 1;
                }
            }
            for r in evict {
                for &a in fd.lhs() {
                    let fresh = symbols.intern(&format!("__heu_fresh_{fresh_counter}"));
                    fresh_counter += 1;
                    table.set_cell(r, a, fresh);
                    changed += 1;
                }
                outcome.evictions += 1;
            }
        }
        outcome.updates += changed;
        if satisfies_all(table, fds) {
            outcome.consistent = true;
            return outcome;
        }
        if changed == 0 {
            break;
        }
    }
    // Convergence ladder. Interacting FDs that share a RHS attribute can
    // make per-group majorities flip-flop forever (group A says `1`, group
    // B says `0`, each round undoes the other). Escalate:
    // 1. one equivalence-class pass — transitive merging assigns every
    //    linked cell a single value, which settles pure RHS interactions;
    // 2. quarantine any still-violating rows by freshening all their
    //    FD-covered cells: every group they belong to becomes a singleton,
    //    so consistency is guaranteed. This is the value-modification
    //    analogue of the tuple-deletion repairs in the minimal-change
    //    literature.
    if !satisfies_all(table, fds) {
        let eq = heu_repair_equiv(table, fds, 3);
        outcome.updates += eq.updates;
        outcome.rounds += eq.rounds;
    }
    if !satisfies_all(table, fds) {
        let mut covered: Vec<relation::AttrId> = fds
            .iter()
            .flat_map(|fd| fd.lhs().iter().chain(fd.rhs().iter()).copied())
            .collect();
        covered.sort();
        covered.dedup();
        let singles: Vec<Fd> = fds.iter().flat_map(|fd| fd.split_rhs()).collect();
        loop {
            let mut violating: Vec<usize> = Vec::new();
            for fd in &singles {
                for v in fd::violation::detect_violations(table, fd) {
                    // Quarantine every non-majority row of the group.
                    let majority = v.majority_value();
                    for (value, rows) in &v.values {
                        if *value != majority {
                            violating.extend(rows.iter().copied());
                        }
                    }
                }
            }
            if violating.is_empty() {
                break;
            }
            violating.sort_unstable();
            violating.dedup();
            for r in violating {
                for &a in &covered {
                    let fresh = symbols.intern(&format!("__heu_fresh_{fresh_counter}"));
                    fresh_counter += 1;
                    table.set_cell(r, a, fresh);
                    outcome.updates += 1;
                }
                outcome.quarantined += 1;
            }
        }
    }
    outcome.consistent = satisfies_all(table, fds);
    outcome
}

/// The global equivalence-class variant, closest to Bohannon et al.'s
/// published algorithm: one union–find node per `(row, RHS-attribute)`
/// cell; for every single-RHS FD, the RHS cells of each LHS group are
/// unioned (they must agree in any repair — including transitively across
/// FDs); every class then takes its weighted-majority original value.
///
/// Compared to [`heu_repair`]'s per-FD-group majorities, class merging
/// propagates a corrupted key's damage across *all* FDs sharing the RHS
/// attribute, which is the strongest form of the paper's "erroneously
/// connect tuples" effect — precision under active-domain noise drops even
/// further.
pub fn heu_repair_equiv(table: &mut Table, fds: &[Fd], max_rounds: usize) -> HeuOutcome {
    let singles: Vec<Fd> = fds.iter().flat_map(|fd| fd.split_rhs()).collect();
    let arity = table.schema().arity();
    let mut outcome = HeuOutcome::default();
    for _ in 0..max_rounds.max(1) {
        outcome.rounds += 1;
        let mut uf = crate::unionfind::UnionFind::new(table.len() * arity);
        for fd in &singles {
            let rhs = fd.rhs()[0];
            let partition = Partition::build(table, fd.lhs());
            for (_, rows) in partition.non_singleton_groups() {
                let first = rows[0] * arity + rhs.index();
                for &r in &rows[1..] {
                    uf.union(first, r * arity + rhs.index());
                }
            }
        }
        let rhs_attrs: Vec<relation::AttrId> = {
            let mut v: Vec<relation::AttrId> = singles.iter().map(|fd| fd.rhs()[0]).collect();
            v.sort();
            v.dedup();
            v
        };
        let mut class_counts: HashMap<usize, HashMap<Symbol, usize>> = HashMap::new();
        for row in 0..table.len() {
            for &attr in &rhs_attrs {
                let root = uf.find(row * arity + attr.index());
                *class_counts
                    .entry(root)
                    .or_default()
                    .entry(table.cell(row, attr))
                    .or_insert(0) += 1;
            }
        }
        let targets: HashMap<usize, Symbol> = class_counts
            .into_iter()
            .map(|(root, counts)| {
                let best = counts
                    .into_iter()
                    .max_by(|x, y| x.1.cmp(&y.1).then(y.0.cmp(&x.0)))
                    .map(|(v, _)| v)
                    .expect("non-empty class");
                (root, best)
            })
            .collect();
        let mut changed = 0usize;
        for row in 0..table.len() {
            for &attr in &rhs_attrs {
                let target = targets[&uf.find(row * arity + attr.index())];
                if table.cell(row, attr) != target {
                    table.set_cell(row, attr, target);
                    changed += 1;
                }
            }
        }
        outcome.updates += changed;
        if satisfies_all(table, fds) {
            outcome.consistent = true;
            return outcome;
        }
        if changed == 0 {
            break;
        }
    }
    outcome.consistent = satisfies_all(table, fds);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::Schema;

    fn setup() -> (Schema, SymbolTable) {
        (
            Schema::new("T", ["country", "capital", "city"]).unwrap(),
            SymbolTable::new(),
        )
    }

    #[test]
    fn majority_wins_within_group() {
        let (s, mut sy) = setup();
        let mut t = Table::new(s.clone());
        for row in [
            ["China", "Beijing", "a"],
            ["China", "Beijing", "b"],
            ["China", "Shanghai", "c"],
        ] {
            t.push_strs(&mut sy, &row).unwrap();
        }
        let fd = Fd::from_names(&s, ["country"], ["capital"]).unwrap();
        let out = heu_repair(&mut t, &[fd], 5, &mut sy);
        assert!(out.consistent);
        assert_eq!(out.updates, 1);
        assert_eq!(out.evictions, 0);
        assert_eq!(sy.resolve(t.cell(2, s.attr("capital").unwrap())), "Beijing");
    }

    #[test]
    fn produces_consistent_database() {
        // Even with no majority (2 values, 1 row each) a consistent result
        // is produced — the "compute a consistent database" objective.
        let (s, mut sy) = setup();
        let mut t = Table::new(s.clone());
        t.push_strs(&mut sy, &["China", "Beijing", "a"]).unwrap();
        t.push_strs(&mut sy, &["China", "Shanghai", "b"]).unwrap();
        let fd = Fd::from_names(&s, ["country"], ["capital"]).unwrap();
        let out = heu_repair(&mut t, &[fd], 5, &mut sy);
        assert!(out.consistent);
        let cap = s.attr("capital").unwrap();
        assert_eq!(t.cell(0, cap), t.cell(1, cap));
    }

    #[test]
    fn lhs_error_with_few_deviations_still_clobbers() {
        // The precision-loss mechanism survives the cost model: one
        // deviating RHS cell (≤ |LHS|) is conformed to the foreign
        // majority.
        let (s, mut sy) = setup();
        let mut t = Table::new(s.clone());
        for row in [
            ["China", "Beijing", "a"],
            ["China", "Beijing", "b"],
            ["China", "Ottawa", "c"], // truly (Canada, Ottawa)
        ] {
            t.push_strs(&mut sy, &row).unwrap();
        }
        let fd = Fd::from_names(&s, ["country"], ["capital"]).unwrap();
        heu_repair(&mut t, &[fd], 5, &mut sy);
        assert_eq!(sy.resolve(t.cell(2, s.attr("capital").unwrap())), "Beijing");
    }

    #[test]
    fn many_deviations_trigger_cheap_lhs_eviction() {
        // A row disagreeing on both RHS cells of a 1-attribute-LHS FD is
        // cheaper to detach than to conform (2 > 1).
        let s = Schema::new("T", ["k", "x", "y"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(s.clone());
        for row in [
            ["g", "1", "2"],
            ["g", "1", "2"],
            ["g", "9", "8"], // foreign record with wrong key
        ] {
            t.push_strs(&mut sy, &row).unwrap();
        }
        let fd = Fd::from_names(&s, ["k"], ["x", "y"]).unwrap();
        let out = heu_repair_with(&mut t, &[fd], 5, &mut sy, HeuConfig { lhs_eviction: true });
        assert!(out.consistent);
        assert_eq!(out.evictions, 1);
        // The foreign record keeps its own x/y; only its key changed.
        assert_eq!(sy.resolve(t.cell(2, s.attr("x").unwrap())), "9");
        assert_eq!(sy.resolve(t.cell(2, s.attr("y").unwrap())), "8");
        assert!(sy
            .resolve(t.cell(2, s.attr("k").unwrap()))
            .starts_with("__heu_fresh_"));
    }

    #[test]
    fn chained_fds_converge_within_rounds() {
        let s = Schema::new("T", ["zip", "state", "mc", "avg"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(s.clone());
        for row in [
            ["10001", "NY", "m1", "x"],
            ["10001", "NJ", "m1", "x"],
            ["10001", "NY", "m1", "y"],
        ] {
            t.push_strs(&mut sy, &row).unwrap();
        }
        let fds = vec![
            Fd::from_names(&s, ["zip"], ["state"]).unwrap(),
            Fd::from_names(&s, ["state", "mc"], ["avg"]).unwrap(),
        ];
        let out = heu_repair(&mut t, &fds, 10, &mut sy);
        assert!(out.consistent, "rounds: {}", out.rounds);
        let state = s.attr("state").unwrap();
        assert_eq!(t.cell(0, state), t.cell(1, state));
    }

    #[test]
    fn default_config_conforms_instead_of_evicting() {
        // Without eviction (the paper's measured behaviour), the foreign
        // record's RHS cells are clobbered by the majority.
        let s = Schema::new("T", ["k", "x", "y"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(s.clone());
        for row in [["g", "1", "2"], ["g", "1", "2"], ["g", "9", "8"]] {
            t.push_strs(&mut sy, &row).unwrap();
        }
        let fd = Fd::from_names(&s, ["k"], ["x", "y"]).unwrap();
        let out = heu_repair(&mut t, &[fd], 5, &mut sy);
        assert!(out.consistent);
        assert_eq!(out.evictions, 0);
        assert_eq!(sy.resolve(t.cell(2, s.attr("x").unwrap())), "1");
        assert_eq!(sy.resolve(t.cell(2, s.attr("y").unwrap())), "2");
    }

    #[test]
    fn equiv_variant_reaches_consistency_and_merges_transitively() {
        // Two FDs sharing the RHS attribute `state`: the equivalence-class
        // variant must union across both and still converge.
        let s = Schema::new("T", ["zip", "phn", "state"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(s.clone());
        for row in [
            ["10001", "p1", "NY"],
            ["10001", "p2", "NJ"], // zip group: {NY, NJ}
            ["10002", "p2", "NY"], // phn p2 group: {NJ, NY}
        ] {
            t.push_strs(&mut sy, &row).unwrap();
        }
        let fds = vec![
            Fd::from_names(&s, ["zip"], ["state"]).unwrap(),
            Fd::from_names(&s, ["phn"], ["state"]).unwrap(),
        ];
        let out = heu_repair_equiv(&mut t, &fds, 10);
        assert!(out.consistent, "{out:?}");
        // Transitive merge pulls all three cells into one class: all equal.
        let state = s.attr("state").unwrap();
        assert_eq!(t.cell(0, state), t.cell(1, state));
        assert_eq!(t.cell(1, state), t.cell(2, state));
    }

    #[test]
    fn equiv_variant_clean_table_untouched() {
        let (s, mut sy) = setup();
        let mut t = Table::new(s.clone());
        t.push_strs(&mut sy, &["China", "Beijing", "a"]).unwrap();
        t.push_strs(&mut sy, &["Japan", "Tokyo", "b"]).unwrap();
        let fd = Fd::from_names(&s, ["country"], ["capital"]).unwrap();
        let out = heu_repair_equiv(&mut t, &[fd], 5);
        assert!(out.consistent);
        assert_eq!(out.updates, 0);
    }

    #[test]
    fn clean_table_is_untouched() {
        let (s, mut sy) = setup();
        let mut t = Table::new(s.clone());
        t.push_strs(&mut sy, &["China", "Beijing", "a"]).unwrap();
        t.push_strs(&mut sy, &["Japan", "Tokyo", "b"]).unwrap();
        let fd = Fd::from_names(&s, ["country"], ["capital"]).unwrap();
        let out = heu_repair(&mut t, &[fd], 5, &mut sy);
        assert!(out.consistent);
        assert_eq!(out.updates, 0);
        assert_eq!(out.rounds, 1);
    }
}
