//! One module per §7 experiment; see DESIGN.md's per-experiment index.

pub mod discovery;
pub mod editing;
pub mod exp1;
pub mod exp2;
pub mod exp3;
pub mod negpat;

use datagen::noise::{inject, InjectedError, NoiseConfig};
use datagen::Dataset;
use fixrules::RuleSet;
use relation::Table;

use crate::config::ExpConfig;
use crate::rules::{build_ruleset, RuleGenConfig, RuleGenReport};

/// Which dataset an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// 115K-row hospital data, 1000 rules.
    Hosp,
    /// 15K-row mailing list, 100 rules.
    Uis,
}

impl Which {
    /// Dataset name for titles and CSV files.
    pub fn name(self) -> &'static str {
        match self {
            Which::Hosp => "hosp",
            Which::Uis => "uis",
        }
    }
}

/// A fully prepared experiment input: ground truth, one dirty instance, the
/// injected-error log, and a consistent rule set generated from it.
pub struct Prepared {
    /// The generated dataset (truth + FDs + symbols).
    pub dataset: Dataset,
    /// The dirty instance.
    pub dirty: Table,
    /// Ground-truth error log.
    pub errors: Vec<InjectedError>,
    /// Rules from the §7.1 pipeline.
    pub rules: RuleSet,
    /// Pipeline statistics.
    pub genreport: RuleGenReport,
}

/// Generate a dataset, corrupt it, and run the rule pipeline.
pub fn prepare(which: Which, cfg: &ExpConfig, typo_fraction: f64) -> Prepared {
    let (mut dataset, target) = match which {
        Which::Hosp => (
            datagen::hosp::generate(cfg.hosp_rows, cfg.seed),
            cfg.hosp_rules,
        ),
        Which::Uis => (
            datagen::uis::generate(cfg.uis_rows, cfg.seed),
            cfg.uis_rules,
        ),
    };
    let attrs = dataset.constrained_attrs();
    let mut dirty = dataset.clean.clone();
    let errors = inject(
        &mut dirty,
        &mut dataset.symbols,
        &attrs,
        NoiseConfig {
            rate: cfg.noise_rate,
            typo_fraction,
            seed: cfg.seed ^ 0xD147,
        },
    );
    let (rules, genreport) = build_ruleset(
        &mut dataset,
        &dirty,
        RuleGenConfig {
            target,
            seed: cfg.seed,
            enrich_factor: 1.0,
        },
    );
    Prepared {
        dataset,
        dirty,
        errors,
        rules,
        genreport,
    }
}

/// The x-axis steps for a |Σ| sweep: 10%, 20%, …, 100% of the rule count.
pub fn rule_steps(total: usize) -> Vec<usize> {
    (1..=10).map(|i| (total * i).div_ceil(10).max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_steps_are_monotone_deciles() {
        let steps = rule_steps(1000);
        assert_eq!(steps.len(), 10);
        assert_eq!(steps[0], 100);
        assert_eq!(steps[9], 1000);
        assert!(steps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn prepare_produces_consistent_rules_and_errors() {
        let cfg = ExpConfig {
            uis_rows: 800,
            uis_rules: 30,
            ..ExpConfig::default()
        };
        let p = prepare(Which::Uis, &cfg, 0.5);
        assert_eq!(p.errors.len(), 80);
        assert!(p.rules.check_consistency().is_consistent());
        assert!(p.rules.len() <= 30);
        assert_eq!(p.dataset.clean.diff_cells(&p.dirty).unwrap(), 80);
    }
}
