//! Ablation: automatically *discovered* rules (paper §8 future work — no
//! master data, support/confidence over FD groups) vs the §7.1 oracle
//! pipeline, on the same dirty instance.
//!
//! Expected shape: on redundant data (hosp) discovery recovers a large
//! share of the oracle pipeline's recall at comparable precision; on
//! sparse data (uis) discovery finds almost nothing — quantifying exactly
//! when the paper's experts/master data are indispensable.

use fixrules::consistency::resolve::ensure_consistent_batch;
use fixrules::discovery::{discover_all, DiscoveryConfig};
use fixrules::repair::{lrepair_table, LRepairIndex};
use fixrules::RuleSet;

use crate::config::ExpConfig;
use crate::experiments::{prepare, Which};
use crate::metrics::{score, Accuracy};

/// One row of the discovery ablation.
#[derive(Debug, Clone)]
pub struct DiscoveryPoint {
    /// `oracle` (§7.1 pipeline) or `discovered` (§8 future work).
    pub source: &'static str,
    /// Rules used.
    pub n_rules: usize,
    /// Accuracy on the shared dirty instance.
    pub acc: Accuracy,
}

/// Run both rule sources on one dirty instance of `which`.
pub fn run_discovery_ablation(which: Which, cfg: &ExpConfig) -> Vec<DiscoveryPoint> {
    let p = prepare(which, cfg, 0.5);
    let clean = &p.dataset.clean;
    let mut out = Vec::new();

    // Oracle pipeline (already prepared).
    let index = LRepairIndex::build(&p.rules);
    let mut fixed = p.dirty.clone();
    lrepair_table(&p.rules, &index, &mut fixed);
    out.push(DiscoveryPoint {
        source: "oracle",
        n_rules: p.rules.len(),
        acc: score(clean, &p.dirty, &fixed),
    });

    // Discovery from the dirty data alone, impact-ranked, same budget.
    let discovered = discover_all(&p.dirty, &p.dataset.fds, DiscoveryConfig::default());
    let mut rules = RuleSet::new(p.dataset.schema.clone());
    for d in discovered.into_iter().take(p.rules.len().max(1)) {
        rules.push(d.rule);
    }
    ensure_consistent_batch(&mut rules);
    let index = LRepairIndex::build(&rules);
    let mut fixed = p.dirty.clone();
    lrepair_table(&rules, &index, &mut fixed);
    out.push(DiscoveryPoint {
        source: "discovered",
        n_rules: rules.len(),
        acc: score(clean, &p.dirty, &fixed),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_competitive_on_redundant_hosp() {
        let cfg = ExpConfig {
            hosp_rows: 2_000,
            hosp_rules: 80,
            ..ExpConfig::default()
        };
        let points = run_discovery_ablation(Which::Hosp, &cfg);
        let oracle = points.iter().find(|p| p.source == "oracle").unwrap();
        let disc = points.iter().find(|p| p.source == "discovered").unwrap();
        assert!(disc.n_rules > 0, "no rules discovered on redundant data");
        assert!(
            disc.acc.precision() > 0.8,
            "discovered rules imprecise: {disc:?}"
        );
        // Discovery should recover a meaningful share of oracle recall.
        assert!(
            disc.acc.recall() >= oracle.acc.recall() * 0.3,
            "oracle {oracle:?} vs discovered {disc:?}"
        );
    }

    #[test]
    fn discovery_starves_on_sparse_uis() {
        let cfg = ExpConfig {
            uis_rows: 1_000,
            uis_rules: 40,
            ..ExpConfig::default()
        };
        let points = run_discovery_ablation(Which::Uis, &cfg);
        let disc = points.iter().find(|p| p.source == "discovered").unwrap();
        let oracle = points.iter().find(|p| p.source == "oracle").unwrap();
        // Sparse FD groups: discovery finds (almost) nothing, oracle still
        // works.
        assert!(
            disc.acc.corrected <= oracle.acc.corrected,
            "oracle {oracle:?} vs discovered {disc:?}"
        );
        assert!(disc.n_rules <= oracle.n_rules);
    }
}
