//! Exp-3 (Fig 13 + runtime table): efficiency of repairing.
//!
//! * Fig 13(a)/(b) — repair time vs |Σ| for `cRepair` and `lRepair` (the
//!   latter including its one-off index build, which is the overhead that
//!   lets `cRepair` win at very small |Σ| in Fig 13(b));
//! * the §7.2 runtime table — `lRepair` vs `Heu` vs `Csm` end-to-end.

use baselines::{csm_repair, heu_repair};
use fixrules::repair::{crepair_table, lrepair_table, par_lrepair_table, LRepairIndex};

use crate::config::ExpConfig;
use crate::experiments::{prepare, rule_steps, Which};
use crate::timing::{stage_ms, time_ms};

/// One Fig 13 point.
#[derive(Debug, Clone)]
pub struct Fig13Point {
    /// Rule count (x-axis).
    pub n_rules: usize,
    /// `cRepair` or `lRepair`.
    pub algo: &'static str,
    /// Wall-clock milliseconds for the full table (y-axis).
    pub millis: f64,
}

/// Fig 13: repair time as |Σ| grows.
pub fn run_fig13(which: Which, cfg: &ExpConfig) -> Vec<Fig13Point> {
    let p = prepare(which, cfg, 0.5);
    let mut out = Vec::new();
    for &k in &rule_steps(p.rules.len()) {
        let mut subset = p.rules.clone();
        subset.truncate(k);
        let mut table_c = p.dirty.clone();
        let (_, ms_c) = stage_ms("repair", || crepair_table(&subset, &mut table_c));
        out.push(Fig13Point {
            n_rules: k,
            algo: "cRepair",
            millis: ms_c,
        });
        let mut table_l = p.dirty.clone();
        // Index construction counts: it is part of using lRepair. Timing
        // the two stages separately keeps the `stage.*` histogram names
        // aligned with `fixctl repair --metrics`.
        let (index, ms_build) = stage_ms("index_build", || LRepairIndex::build(&subset));
        let (_, ms_run) = stage_ms("repair", || lrepair_table(&subset, &index, &mut table_l));
        out.push(Fig13Point {
            n_rules: k,
            algo: "lRepair",
            millis: ms_build + ms_run,
        });
        debug_assert_eq!(table_c.diff_cells(&table_l).unwrap(), 0);
    }
    out
}

/// One row of the §7.2 runtime table.
#[derive(Debug, Clone)]
pub struct RuntimeRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Algorithm name.
    pub algo: &'static str,
    /// Wall-clock milliseconds.
    pub millis: f64,
}

/// The §7.2 runtime comparison: lRepair vs Heu vs Csm (plus the parallel
/// lRepair extension for reference).
pub fn run_runtime_table(which: Which, cfg: &ExpConfig) -> Vec<RuntimeRow> {
    let mut p = prepare(which, cfg, 0.5);
    let name = which.name();
    let mut out = Vec::new();

    let mut t = p.dirty.clone();
    let (index, ms_build) = stage_ms("index_build", || LRepairIndex::build(&p.rules));
    let (_, ms_run) = stage_ms("repair", || lrepair_table(&p.rules, &index, &mut t));
    out.push(RuntimeRow {
        dataset: name,
        algo: "lRepair",
        millis: ms_build + ms_run,
    });

    let mut t = p.dirty.clone();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let (_, ms) = time_ms(|| {
        let index = LRepairIndex::build(&p.rules);
        par_lrepair_table(&p.rules, &index, &mut t, threads)
    });
    out.push(RuntimeRow {
        dataset: name,
        algo: "lRepair(par)",
        millis: ms,
    });

    let mut t = p.dirty.clone();
    let symbols = &mut p.dataset.symbols;
    let (_, ms) = time_ms(|| heu_repair(&mut t, &p.dataset.fds, 5, symbols));
    out.push(RuntimeRow {
        dataset: name,
        algo: "Heu",
        millis: ms,
    });

    let mut t = p.dirty.clone();
    let (_, ms) = time_ms(|| csm_repair(&mut t, &p.dataset.fds, 10, cfg.seed));
    out.push(RuntimeRow {
        dataset: name,
        algo: "Csm",
        millis: ms,
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            uis_rows: 700,
            uis_rules: 30,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn fig13_emits_both_algorithms_per_step() {
        let points = run_fig13(Which::Uis, &tiny_cfg());
        let c = points.iter().filter(|p| p.algo == "cRepair").count();
        let l = points.iter().filter(|p| p.algo == "lRepair").count();
        assert_eq!(c, l);
        assert!(c >= 5);
    }

    #[test]
    fn runtime_table_covers_all_algorithms() {
        let rows = run_runtime_table(Which::Uis, &tiny_cfg());
        let algos: Vec<&str> = rows.iter().map(|r| r.algo).collect();
        assert!(algos.contains(&"lRepair"));
        assert!(algos.contains(&"lRepair(par)"));
        assert!(algos.contains(&"Heu"));
        assert!(algos.contains(&"Csm"));
        assert!(rows.iter().all(|r| r.millis >= 0.0));
    }
}
