//! Exp-1 (Fig 9): efficiency of consistency checking.
//!
//! For each rule-count step, time the worst case of both checkers (all
//! pairs inspected) and ten "real cases" — sets containing an injected
//! conflict, where checking stops at the first inconsistent pair, exactly
//! as in Fig 9's small markers below the worst-case curve.

use fixrules::consistency::{is_consistent_characterize, is_consistent_enumerate};
use fixrules::{FixingRule, RuleSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::SymbolTable;

use crate::timing::{stage_ms, time_ms};

/// One measured point of Fig 9.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// Rule count (x-axis).
    pub n_rules: usize,
    /// `isConsist_t` or `isConsist_r`.
    pub algo: &'static str,
    /// `worst` (all pairs) or `real` (stop at first conflict).
    pub case: &'static str,
    /// Wall-clock milliseconds (y-axis).
    pub millis: f64,
}

/// Run Fig 9 over prefix sizes `steps` of `rules`.
///
/// `symbols` is needed to mint fresh conflicting facts for the real cases.
pub fn run_fig9(
    rules: &RuleSet,
    symbols: &mut SymbolTable,
    steps: &[usize],
    seed: u64,
    real_cases: usize,
) -> Vec<Fig9Point> {
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for &n in steps {
        let n = n.min(rules.len());
        if n == 0 {
            continue;
        }
        let mut subset = rules.clone();
        subset.truncate(n);
        // Worst case: inspect every pair.
        let (rep_r, ms_r) = stage_ms("consistency_check", || {
            is_consistent_characterize(&subset, usize::MAX)
        });
        let (rep_t, ms_t) = stage_ms("consistency_check", || {
            is_consistent_enumerate(&subset, usize::MAX)
        });
        debug_assert_eq!(rep_r.is_consistent(), rep_t.is_consistent());
        out.push(Fig9Point {
            n_rules: n,
            algo: "isConsist_r",
            case: "worst",
            millis: ms_r,
        });
        out.push(Fig9Point {
            n_rules: n,
            algo: "isConsist_t",
            case: "worst",
            millis: ms_t,
        });
        // Real cases: inject one conflict, stop at first detection.
        for k in 0..real_cases {
            let mut dirty_set = subset.clone();
            inject_conflict(&mut dirty_set, symbols, &mut rng, k);
            let (rep, ms) = time_ms(|| is_consistent_characterize(&dirty_set, 1));
            debug_assert!(!rep.is_consistent());
            out.push(Fig9Point {
                n_rules: n,
                algo: "isConsist_r",
                case: "real",
                millis: ms,
            });
            let (rep, ms) = time_ms(|| is_consistent_enumerate(&dirty_set, 1));
            debug_assert!(!rep.is_consistent());
            out.push(Fig9Point {
                n_rules: n,
                algo: "isConsist_t",
                case: "real",
                millis: ms,
            });
        }
    }
    out
}

/// Clone a random rule with a fresh, different fact — a guaranteed case-1
/// conflict with its original — and insert it at a random position.
fn inject_conflict(rules: &mut RuleSet, symbols: &mut SymbolTable, rng: &mut StdRng, tag: usize) {
    assert!(!rules.is_empty());
    let victim = rules
        .rule(fixrules::RuleId(rng.gen_range(0..rules.len()) as u32))
        .clone();
    let fresh_fact = symbols.intern(&format!("__conflict_fact_{tag}"));
    let evidence = victim
        .x()
        .iter()
        .copied()
        .zip(victim.tp().iter().copied())
        .collect();
    let clone = FixingRule::new(evidence, victim.b(), victim.neg().to_vec(), fresh_fact)
        .expect("fresh fact cannot collide with negatives");
    rules.push(clone);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_rules() -> (RuleSet, SymbolTable) {
        let schema = relation::Schema::new("T", ["a", "b", "c"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(schema);
        for i in 0..20 {
            let k = format!("k{i}");
            rs.push_named(&mut sy, &[("a", k.as_str())], "b", &["w1", "w2"], "ok")
                .unwrap();
        }
        (rs, sy)
    }

    #[test]
    fn produces_worst_and_real_points() {
        let (rules, mut sy) = small_rules();
        let points = run_fig9(&rules, &mut sy, &[10, 20], 1, 3);
        // Per step: 2 worst + 3×2 real = 8 points.
        assert_eq!(points.len(), 16);
        assert!(points.iter().all(|p| p.millis >= 0.0));
        assert!(points
            .iter()
            .any(|p| p.case == "worst" && p.algo == "isConsist_t"));
        assert!(points
            .iter()
            .any(|p| p.case == "real" && p.algo == "isConsist_r"));
    }

    #[test]
    fn injected_conflict_is_detected() {
        let (mut rules, mut sy) = small_rules();
        let mut rng = StdRng::seed_from_u64(5);
        inject_conflict(&mut rules, &mut sy, &mut rng, 0);
        assert!(!rules.check_consistency().is_consistent());
    }
}
