//! Fig 11: evaluation of negative patterns (hosp).
//!
//! * **(a)** — the per-rule negative-pattern-count distribution: rules
//!   sorted by count, every 30th point plotted;
//! * **(b)** — Fix precision/recall as the *total* number of negative
//!   patterns grows (sweeping the enrichment factor).

use fixrules::repair::{lrepair_table, LRepairIndex};

use crate::config::ExpConfig;
use crate::experiments::{prepare, Which};
use crate::metrics::{score, Accuracy};

/// One Fig 11(a) point: rule rank → #negative patterns.
#[derive(Debug, Clone, Copy)]
pub struct Fig11aPoint {
    /// Rule rank after sorting by pattern count.
    pub rank: usize,
    /// Number of negative patterns of that rule.
    pub neg_patterns: usize,
}

/// Fig 11(a): sorted per-rule counts, one point every `stride` rules
/// (paper: 30).
pub fn run_fig11a(which: Which, cfg: &ExpConfig, stride: usize) -> (Vec<Fig11aPoint>, Vec<usize>) {
    let p = prepare(which, cfg, 0.5);
    let mut counts: Vec<usize> = p.rules.rules().iter().map(|r| r.neg().len()).collect();
    counts.sort_unstable();
    let points = counts
        .iter()
        .enumerate()
        .step_by(stride.max(1))
        .map(|(rank, &neg_patterns)| Fig11aPoint { rank, neg_patterns })
        .collect();
    (points, counts)
}

/// One Fig 11(b) point.
#[derive(Debug, Clone, Copy)]
pub struct Fig11bPoint {
    /// Fraction of each rule's negative patterns kept (the sweep knob).
    pub factor: f64,
    /// Total negative patterns across all rules (x-axis).
    pub total_neg_patterns: usize,
    /// Fix accuracy at this pattern budget.
    pub acc: Accuracy,
}

/// Fig 11(b): accuracy as the *total* number of negative patterns grows.
///
/// As in the paper, the rule set is fixed and the sweep varies how many
/// negative patterns each rule keeps — `factor` is the kept fraction of
/// each rule's (frequency-ranked) negative list, 1.0 being the full sets.
/// Capping can only remove Fig 4 conflict conditions, so every capped set
/// stays consistent.
pub fn run_fig11b(which: Which, cfg: &ExpConfig, factors: &[f64]) -> Vec<Fig11bPoint> {
    let p = prepare(which, cfg, 0.5);
    let dataset = p.dataset;
    let dirty = p.dirty;
    factors
        .iter()
        .map(|&factor| {
            let mut capped = fixrules::RuleSet::new(dataset.schema.clone());
            for (_, rule) in p.rules.iter() {
                let keep =
                    ((rule.neg().len() as f64 * factor).ceil() as usize).clamp(1, rule.neg().len());
                capped.push(rule.with_capped_negatives(keep));
            }
            debug_assert!(capped.check_consistency().is_consistent());
            let total = capped.rules().iter().map(|r| r.neg().len()).sum();
            let index = LRepairIndex::build(&capped);
            let mut fixed = dirty.clone();
            lrepair_table(&capped, &index, &mut fixed);
            Fig11bPoint {
                factor,
                total_neg_patterns: total,
                acc: score(&dataset.clean, &dirty, &fixed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            hosp_rows: 1_500,
            hosp_rules: 60,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn fig11a_counts_are_sorted_and_small() {
        let (points, counts) = run_fig11a(Which::Hosp, &tiny_cfg(), 5);
        assert!(!points.is_empty());
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        // The Fig 11(a) claim: most rules carry few negative patterns.
        let small = counts.iter().filter(|&&c| c <= 3).count();
        assert!(small * 2 > counts.len(), "{counts:?}");
    }

    #[test]
    fn fig11b_more_patterns_improves_recall() {
        let points = run_fig11b(Which::Hosp, &tiny_cfg(), &[0.25, 0.5, 1.0]);
        assert_eq!(points.len(), 3);
        assert!(points[2].total_neg_patterns > points[0].total_neg_patterns);
        assert!(
            points[2].acc.recall() >= points[0].acc.recall(),
            "recall did not grow: {points:?}"
        );
        // Precision stays high throughout — the "dependable" property.
        for p in &points {
            assert!(p.acc.precision() > 0.85, "{p:?}");
        }
    }
}
