//! Exp-2 (Fig 10): repair accuracy.
//!
//! * `(a,b)` / `(e,f)` — precision/recall of Fix vs Heu vs Csm as the typo
//!   share of the noise sweeps 0%→100% at a fixed 10% noise rate;
//! * `(c,d)` / `(g,h)` — the same metrics as the rule count sweeps over
//!   deciles of |Σ| at 50% typos (Heu/Csm do not consume rules, so their
//!   curves are horizontal lines, as in the paper).

use baselines::{csm_repair, heu_repair, heu_repair_with, HeuConfig};
use datagen::noise::{inject, NoiseConfig};
use fixrules::repair::{lrepair_table, LRepairIndex};
use relation::Table;

use crate::config::ExpConfig;
use crate::experiments::{prepare, rule_steps, Which};
use crate::metrics::{score, Accuracy};
use crate::rules::{build_ruleset, RuleGenConfig};

/// Rounds given to the iterative baselines.
const HEU_ROUNDS: usize = 5;
const CSM_ROUNDS: usize = 10;

/// One accuracy measurement.
#[derive(Debug, Clone)]
pub struct AccuracyPoint {
    /// Sweep position: typo fraction (fig10 a/b/e/f) or rule count (c/d/g/h).
    pub x: f64,
    /// `Fix`, `Heu`, or `Csm`.
    pub algo: &'static str,
    /// Cell-level counts.
    pub acc: Accuracy,
}

/// Fig 10 (a,b) / (e,f): accuracy vs typo rate.
pub fn run_typo_sweep(which: Which, cfg: &ExpConfig) -> Vec<AccuracyPoint> {
    let mut out = Vec::new();
    for step in 0..=10 {
        let typo_fraction = step as f64 / 10.0;
        let mut p = prepare(which, cfg, typo_fraction);
        let datagen::Dataset {
            clean,
            symbols,
            fds,
            ..
        } = &mut p.dataset;
        let clean = &*clean;

        // Fix.
        let index = LRepairIndex::build(&p.rules);
        let mut fixed = p.dirty.clone();
        lrepair_table(&p.rules, &index, &mut fixed);
        out.push(AccuracyPoint {
            x: typo_fraction,
            algo: "Fix",
            acc: score(clean, &p.dirty, &fixed),
        });

        // Heu.
        let mut heu_t = p.dirty.clone();
        heu_repair(&mut heu_t, fds, HEU_ROUNDS, symbols);
        out.push(AccuracyPoint {
            x: typo_fraction,
            algo: "Heu",
            acc: score(clean, &p.dirty, &heu_t),
        });

        // Csm.
        let mut csm_t = p.dirty.clone();
        csm_repair(&mut csm_t, fds, CSM_ROUNDS, cfg.seed ^ 0xC531);
        out.push(AccuracyPoint {
            x: typo_fraction,
            algo: "Csm",
            acc: score(clean, &p.dirty, &csm_t),
        });
    }
    out
}

/// Fig 10 (c,d) / (g,h): accuracy vs |Σ| at 50% typos.
pub fn run_rulecount_sweep(which: Which, cfg: &ExpConfig) -> Vec<AccuracyPoint> {
    let mut p = prepare(which, cfg, 0.5);
    let datagen::Dataset {
        clean,
        symbols,
        fds,
        ..
    } = &mut p.dataset;
    let clean = &*clean;
    let mut out = Vec::new();

    // Baselines once — they do not depend on |Σ|.
    let mut heu_t = p.dirty.clone();
    heu_repair(&mut heu_t, fds, HEU_ROUNDS, symbols);
    let heu_acc = score(clean, &p.dirty, &heu_t);
    let mut csm_t = p.dirty.clone();
    csm_repair(&mut csm_t, fds, CSM_ROUNDS, cfg.seed ^ 0xC531);
    let csm_acc = score(clean, &p.dirty, &csm_t);

    for &k in &rule_steps(p.rules.len()) {
        let mut subset = p.rules.clone();
        subset.truncate(k);
        let index = LRepairIndex::build(&subset);
        let mut fixed = p.dirty.clone();
        lrepair_table(&subset, &index, &mut fixed);
        out.push(AccuracyPoint {
            x: k as f64,
            algo: "Fix",
            acc: score(clean, &p.dirty, &fixed),
        });
        out.push(AccuracyPoint {
            x: k as f64,
            algo: "Heu",
            acc: heu_acc,
        });
        out.push(AccuracyPoint {
            x: k as f64,
            algo: "Csm",
            acc: csm_acc,
        });
    }
    out
}

/// Ablation: Heu with and without cost-based LHS eviction, at three typo
/// mixes. Quantifies how much of Heu's precision loss is attributable to
/// key-corrupted tuples being conformed to foreign majorities.
pub fn run_heu_ablation(which: Which, cfg: &ExpConfig) -> Vec<AccuracyPoint> {
    let mut out = Vec::new();
    for typo_fraction in [0.0, 0.5, 1.0] {
        let mut p = prepare(which, cfg, typo_fraction);
        let datagen::Dataset {
            clean,
            symbols,
            fds,
            ..
        } = &mut p.dataset;
        let clean = &*clean;
        let mut plain = p.dirty.clone();
        heu_repair(&mut plain, fds, HEU_ROUNDS, symbols);
        out.push(AccuracyPoint {
            x: typo_fraction,
            algo: "Heu",
            acc: score(clean, &p.dirty, &plain),
        });
        let mut evicting = p.dirty.clone();
        heu_repair_with(
            &mut evicting,
            fds,
            HEU_ROUNDS,
            symbols,
            HeuConfig { lhs_eviction: true },
        );
        out.push(AccuracyPoint {
            x: typo_fraction,
            algo: "Heu(evict)",
            acc: score(clean, &p.dirty, &evicting),
        });
    }
    out
}

/// Variant of the typo sweep for a *fixed* rule set built once at 50%
/// typos, used by unit tests to validate monotonicity cheaply.
pub fn fix_accuracy_on(
    dataset: &mut datagen::Dataset,
    typo_fraction: f64,
    target_rules: usize,
    seed: u64,
) -> Accuracy {
    let attrs = dataset.constrained_attrs();
    let mut dirty = dataset.clean.clone();
    inject(
        &mut dirty,
        &mut dataset.symbols,
        &attrs,
        NoiseConfig {
            rate: 0.10,
            typo_fraction,
            seed,
        },
    );
    let (rules, _) = build_ruleset(
        dataset,
        &dirty,
        RuleGenConfig {
            target: target_rules,
            seed,
            enrich_factor: 1.0,
        },
    );
    let index = LRepairIndex::build(&rules);
    let mut fixed: Table = dirty.clone();
    lrepair_table(&rules, &index, &mut fixed);
    score(&dataset.clean, &dirty, &fixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            uis_rows: 900,
            uis_rules: 40,
            hosp_rows: 1_500,
            hosp_rules: 60,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn typo_sweep_emits_all_algorithms() {
        let points = run_typo_sweep(Which::Uis, &tiny_cfg());
        assert_eq!(points.len(), 33); // 11 steps × 3 algos
        for algo in ["Fix", "Heu", "Csm"] {
            assert_eq!(points.iter().filter(|p| p.algo == algo).count(), 11);
        }
    }

    #[test]
    fn fix_precision_beats_baselines_on_hosp() {
        // The paper's headline: Fix repairs with the highest precision.
        let points = run_typo_sweep(Which::Hosp, &tiny_cfg());
        let avg = |algo: &str| {
            let v: Vec<f64> = points
                .iter()
                .filter(|p| p.algo == algo)
                .map(|p| p.acc.precision())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let (fix, heu, csm) = (avg("Fix"), avg("Heu"), avg("Csm"));
        assert!(fix > heu, "Fix {fix:.3} vs Heu {heu:.3}");
        assert!(fix > csm, "Fix {fix:.3} vs Csm {csm:.3}");
        assert!(fix > 0.9, "Fix precision should be high, got {fix:.3}");
    }

    #[test]
    fn rulecount_sweep_recall_is_monotone_for_fix() {
        let points = run_rulecount_sweep(Which::Hosp, &tiny_cfg());
        let fix_recalls: Vec<f64> = points
            .iter()
            .filter(|p| p.algo == "Fix")
            .map(|p| p.acc.recall())
            .collect();
        assert_eq!(fix_recalls.len(), 10);
        // More rules → recall should not decrease (allow tiny jitter from
        // conflict resolution).
        assert!(
            fix_recalls.last().unwrap() >= &(fix_recalls[0] - 1e-9),
            "{fix_recalls:?}"
        );
    }

    #[test]
    fn heu_eviction_improves_precision_under_active_domain_noise() {
        let points = run_heu_ablation(Which::Hosp, &tiny_cfg());
        let get = |algo: &str, x: f64| {
            points
                .iter()
                .find(|p| p.algo == algo && (p.x - x).abs() < 1e-9)
                .unwrap()
                .acc
                .precision()
        };
        // At 0% typos (all active-domain errors) eviction must help.
        assert!(get("Heu(evict)", 0.0) > get("Heu", 0.0), "{points:?}");
    }

    #[test]
    fn baselines_are_horizontal_in_rulecount_sweep() {
        let points = run_rulecount_sweep(Which::Uis, &tiny_cfg());
        let heus: Vec<usize> = points
            .iter()
            .filter(|p| p.algo == "Heu")
            .map(|p| p.acc.corrected)
            .collect();
        assert!(heus.windows(2).all(|w| w[0] == w[1]));
    }
}
