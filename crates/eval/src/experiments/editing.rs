//! Fig 12: comparison with editing rules (hosp, 100 rules, 10% noise).
//!
//! * **(a)** — errors corrected per fixing rule: each correction would have
//!   cost one user interaction under editing rules, so a rule correcting
//!   fifty tuples saves fifty confirmations;
//! * **(b)** — Fix vs automated Edit (negative patterns stripped,
//!   evidence auto-confirmed) precision/recall.

use baselines::{edit_repair, EditRuleSet};
use fixrules::repair::{lrepair_table, LRepairIndex};

use crate::config::ExpConfig;
use crate::experiments::{prepare, Which};
use crate::metrics::{score, Accuracy};

/// Fig 12(a) output: per-rule correction counts, sorted descending, plus
/// the total interactions editing rules would have needed.
#[derive(Debug, Clone)]
pub struct Fig12a {
    /// Corrections per rule, descending (only rules that fired).
    pub per_rule: Vec<usize>,
    /// Total corrections = user interactions saved vs editing rules.
    pub total_corrections: usize,
}

/// Fig 12(b) output.
#[derive(Debug, Clone)]
pub struct Fig12b {
    /// Fixing-rule accuracy.
    pub fix: Accuracy,
    /// Automated editing-rule accuracy.
    pub edit: Accuracy,
}

/// Run both halves of Fig 12 with `rule_target` rules (paper: 100).
pub fn run_fig12(which: Which, cfg: &ExpConfig, rule_target: usize) -> (Fig12a, Fig12b) {
    let mut cfg = cfg.clone();
    match which {
        Which::Hosp => cfg.hosp_rules = rule_target,
        Which::Uis => cfg.uis_rules = rule_target,
    }
    let p = prepare(which, &cfg, 0.5);
    let clean = &p.dataset.clean;

    // Fix.
    let index = LRepairIndex::build(&p.rules);
    let mut fixed = p.dirty.clone();
    let outcome = lrepair_table(&p.rules, &index, &mut fixed);
    let fix_acc = score(clean, &p.dirty, &fixed);

    // Per-rule corrections: count only updates that matched the truth.
    let mut per_rule = vec![0usize; p.rules.len()];
    for u in &outcome.updates {
        if clean.cell(u.row, u.attr) == u.new {
            per_rule[u.rule.index()] += 1;
        }
    }
    let total_corrections: usize = per_rule.iter().sum();
    let mut fired: Vec<usize> = per_rule.into_iter().filter(|&c| c > 0).collect();
    fired.sort_unstable_by(|a, b| b.cmp(a));

    // Edit: same rules, negative patterns stripped.
    let edits = EditRuleSet::from_fixing_rules(&p.rules);
    let mut edited = p.dirty.clone();
    edit_repair(&edits, &mut edited);
    let edit_acc = score(clean, &p.dirty, &edited);

    (
        Fig12a {
            per_rule: fired,
            total_corrections,
        },
        Fig12b {
            fix: fix_acc,
            edit: edit_acc,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            hosp_rows: 2_000,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn fix_beats_automated_edit_on_precision() {
        let (_, fig12b) = run_fig12(Which::Hosp, &tiny_cfg(), 80);
        assert!(
            fig12b.fix.precision() >= fig12b.edit.precision(),
            "fix {:?} edit {:?}",
            fig12b.fix,
            fig12b.edit
        );
        assert!(fig12b.fix.precision() > 0.85);
    }

    #[test]
    fn per_rule_counts_are_descending_and_sum_to_total() {
        let (fig12a, _) = run_fig12(Which::Hosp, &tiny_cfg(), 80);
        assert!(fig12a.per_rule.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(
            fig12a.per_rule.iter().sum::<usize>(),
            fig12a.total_corrections
        );
    }

    #[test]
    fn single_rules_repair_multiple_tuples() {
        // Fig 12(a)'s point: one fixing rule fixes many errors (= many
        // saved user interactions).
        let (fig12a, _) = run_fig12(Which::Hosp, &tiny_cfg(), 80);
        if let Some(&max) = fig12a.per_rule.first() {
            assert!(max >= 1);
        }
    }
}
