//! The end-to-end rule-generation pipeline of §7.1, assembled from the
//! `fixrules::generation` primitives:
//!
//! 1. **Seed** rules from the dirty table's FD violations (expert = master
//!    oracle);
//! 2. **Enrich** each seed's negative patterns from same-domain pools, the
//!    per-rule budget following the Fig 11(a) distribution;
//! 3. **Pad** to the target count with ontology-style rules generated
//!    directly from the master data;
//! 4. **Shuffle** (so any prefix is FD-diverse — the |Σ| sweeps truncate
//!    prefixes) and **resolve** conflicts with the batch shrink workflow.

use fixrules::consistency::resolve::ensure_consistent_batch;
use fixrules::generation::{generate_from_master, seed_rules_all_fds};
use fixrules::{FixingRule, RuleSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use relation::Table;

use datagen::master::{build_enrichment, build_master_indexes, neg_budget_schedule};
use datagen::Dataset;

/// Statistics of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct RuleGenReport {
    /// Rules seeded from observed FD violations.
    pub seeded: usize,
    /// Rules padded from the master oracle.
    pub padded: usize,
    /// Negative patterns / rules removed by conflict resolution.
    pub resolution_actions: usize,
    /// Final rule count.
    pub final_count: usize,
}

/// Pipeline knobs.
#[derive(Debug, Clone, Copy)]
pub struct RuleGenConfig {
    /// Requested rule count (paper: 1000 hosp / 100 uis).
    pub target: usize,
    /// RNG seed (budgets, shuffle, enrichment order).
    pub seed: u64,
    /// Scales per-rule negative-pattern budgets; 1.0 reproduces the Fig
    /// 11(a) distribution, 0.0 keeps only the observed wrong values
    /// (the Fig 11(b) sweep varies this).
    pub enrich_factor: f64,
}

impl Default for RuleGenConfig {
    fn default() -> Self {
        RuleGenConfig {
            target: 1_000,
            seed: 2014,
            enrich_factor: 1.0,
        }
    }
}

/// Run the pipeline against a dataset and one dirty instance of it.
pub fn build_ruleset(
    dataset: &mut Dataset,
    dirty: &Table,
    cfg: RuleGenConfig,
) -> (RuleSet, RuleGenReport) {
    let mut report = RuleGenReport::default();
    let masters = build_master_indexes(dataset);
    let enrichment = build_enrichment(dataset, 40, 2, cfg.seed ^ 0xE11);
    let budgets = neg_budget_schedule(cfg.target.max(1), cfg.seed ^ 0xB0D);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5F0);

    // 1. Seeds from violations, per original (multi-RHS) FD so the
    // key-suspect filter can see all of a row's deviations at once.
    // `masters` aligns with the single-RHS decomposition, so hand each FD
    // its consecutive chunk. Each FD's candidates come back sorted by
    // yield (errors they fix); a round-robin merge keeps the budgeted set
    // both high-impact (the expert triages by impact, which is what makes
    // single rules fix 50+ tuples in Fig 12(a)) and FD-diverse, so the |Σ|
    // sweeps truncate meaningful prefixes.
    let per_fd: Vec<Vec<(FixingRule, usize)>> = seed_rules_all_fds(dirty, &dataset.fds, &masters);
    let mut seeds: Vec<FixingRule> = Vec::new();
    let mut cursors = vec![0usize; per_fd.len()];
    loop {
        let mut advanced = false;
        for (list, cursor) in per_fd.iter().zip(cursors.iter_mut()) {
            if *cursor < list.len() {
                seeds.push(list[*cursor].0.clone());
                *cursor += 1;
                advanced = true;
            }
        }
        if !advanced {
            break;
        }
    }
    dedupe_rules(&mut seeds);
    // Keep ~15% headroom over the target so conflict resolution can consume
    // rules and still leave `target`.
    let padded_target = cfg.target + cfg.target.div_ceil(7) + 8;
    seeds.truncate(padded_target);
    report.seeded = seeds.len();

    // 2. Enrichment: half of each rule's extra budget is spent on
    // known-misspelling variants of its fact (the typo corpus), half on
    // same-domain values — both are "related tables in the same domain" in
    // the paper's sense.
    let mut rules: Vec<FixingRule> = seeds
        .into_iter()
        .enumerate()
        .map(|(i, rule)| {
            let want = (budgets[i % budgets.len()] as f64 * cfg.enrich_factor).round() as usize;
            let extra_budget = want.saturating_sub(rule.neg().len());
            if extra_budget == 0 {
                return rule;
            }
            let typo_budget = extra_budget.div_ceil(2);
            let mut extra = datagen::noise::typo_neighborhood(
                &mut dataset.symbols,
                rule.fact(),
                typo_budget,
                cfg.seed ^ 0x7E90,
            );
            extra.retain(|v| !rule.neg().contains(v));
            let domain_budget = extra_budget - extra.len().min(extra_budget);
            extra.extend(enrichment.candidates(rule.b(), rule.fact(), rule.neg(), domain_budget));
            rule.with_extra_negatives(&extra)
        })
        .collect();

    // 3. Pad from the master oracle, up to the same padded target.
    if rules.len() < padded_target {
        let mut pool = RuleSet::new(dataset.schema.clone());
        let deficit = padded_target - rules.len();
        let per_master = deficit.div_ceil(masters.len().max(1)) + 4;
        let pad_budgets: Vec<usize> = budgets
            .iter()
            .map(|&b| ((b as f64 * cfg.enrich_factor).round() as usize).max(1))
            .collect();
        for master in &masters {
            generate_from_master(&mut pool, master, &enrichment, &pad_budgets, per_master);
        }
        let mut pads: Vec<FixingRule> = pool.rules().to_vec();
        pads.shuffle(&mut rng);
        for pad in pads {
            if rules.len() >= padded_target {
                break;
            }
            rules.push(pad);
        }
        dedupe_rules(&mut rules);
        report.padded = rules.len() - report.seeded.min(rules.len());
    }

    // 4. Resolve (rule order is yield-ranked; resolution preserves it).
    let mut set = RuleSet::new(dataset.schema.clone());
    for r in rules {
        set.push(r);
    }
    let log = ensure_consistent_batch(&mut set);
    report.resolution_actions = log.actions.len();
    set.truncate(cfg.target);
    report.final_count = set.len();
    debug_assert!(set.check_consistency().is_consistent());
    (set, report)
}

/// Remove duplicates by (evidence, B) key, keeping the first occurrence
/// (seeds win over pads; two rules with the same evidence and B but
/// different facts would be a case-1 conflict anyway).
fn dedupe_rules(rules: &mut Vec<FixingRule>) {
    use std::collections::HashSet;
    let mut seen: HashSet<(Vec<(u16, u32)>, u16)> = HashSet::with_capacity(rules.len());
    rules.retain(|r| {
        let key: (Vec<(u16, u32)>, u16) = (
            r.x()
                .iter()
                .zip(r.tp().iter())
                .map(|(a, v)| (a.0, v.0))
                .collect(),
            r.b().0,
        );
        seen.insert(key)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::noise::{inject, NoiseConfig};

    fn dirty_uis(rows: usize) -> (Dataset, Table) {
        let mut d = datagen::uis::generate(rows, 11);
        let attrs = d.constrained_attrs();
        let mut dirty = d.clean.clone();
        inject(
            &mut dirty,
            &mut d.symbols,
            &attrs,
            NoiseConfig {
                rate: 0.10,
                typo_fraction: 0.5,
                seed: 21,
            },
        );
        (d, dirty)
    }

    #[test]
    fn pipeline_hits_target_and_is_consistent() {
        let (mut d, dirty) = dirty_uis(1_500);
        let (rules, report) = build_ruleset(
            &mut d,
            &dirty,
            RuleGenConfig {
                target: 50,
                seed: 1,
                enrich_factor: 1.0,
            },
        );
        assert_eq!(rules.len(), 50, "{report:?}");
        assert!(rules.check_consistency().is_consistent());
        assert_eq!(report.final_count, 50);
    }

    #[test]
    fn seeds_catch_observed_errors() {
        // Repairing the same dirty table the rules were seeded from must
        // correct a nonzero number of cells with high precision.
        let (mut d, dirty) = dirty_uis(2_000);
        let (rules, _) = build_ruleset(
            &mut d,
            &dirty,
            RuleGenConfig {
                target: 80,
                seed: 2,
                enrich_factor: 1.0,
            },
        );
        let index = fixrules::repair::LRepairIndex::build(&rules);
        let mut repaired = dirty.clone();
        fixrules::repair::lrepair_table(&rules, &index, &mut repaired);
        let acc = crate::metrics::score(&d.clean, &dirty, &repaired);
        assert!(acc.updates > 0, "no rule fired");
        assert!(
            acc.precision() > 0.8,
            "precision {:.2} too low ({acc:?})",
            acc.precision()
        );
    }

    #[test]
    fn enrich_factor_scales_negative_patterns() {
        let (mut d, dirty) = dirty_uis(1_200);
        let mut total = |factor: f64| {
            let (rules, _) = build_ruleset(
                &mut d,
                &dirty,
                RuleGenConfig {
                    target: 40,
                    seed: 3,
                    enrich_factor: factor,
                },
            );
            rules.rules().iter().map(|r| r.neg().len()).sum::<usize>()
        };
        let small = total(0.0);
        let big = total(4.0);
        assert!(big > small, "enrichment had no effect: {small} vs {big}");
    }

    #[test]
    fn dedupe_removes_identical_evidence_rules() {
        let schema = relation::Schema::new("T", ["a", "b"]).unwrap();
        let mut sy = relation::SymbolTable::new();
        let r1 = FixingRule::from_named(&schema, &mut sy, &[("a", "k")], "b", &["x"], "y").unwrap();
        let r2 = FixingRule::from_named(&schema, &mut sy, &[("a", "k")], "b", &["z"], "y").unwrap();
        let r3 = FixingRule::from_named(&schema, &mut sy, &[("a", "j")], "b", &["x"], "y").unwrap();
        let mut rules = vec![r1, r2, r3];
        dedupe_rules(&mut rules);
        assert_eq!(rules.len(), 2);
    }
}
