//! Plain-text tables and CSV dumps for experiment output.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Print a titled, column-aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(out, "\n== {title} ==");
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<w$}", w = widths[i]))
        .collect();
    let _ = writeln!(out, "{}", header_line.join("  "));
    let _ = writeln!(
        out,
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        let _ = writeln!(out, "{}", line.join("  "));
    }
}

/// Write the same rows as CSV under `dir/name.csv` (creating `dir`).
pub fn write_csv(
    dir: &Path,
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::io::BufWriter::new(fs::File::create(&path)?);
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        writeln!(f, "{}", escaped.join(","))?;
    }
    f.flush()?;
    Ok(path)
}

/// Emit a table to stdout and, when `out_dir` is set, to CSV.
pub fn emit(
    out_dir: Option<&Path>,
    name: &str,
    title: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) {
    print_table(title, headers, rows);
    if let Some(dir) = out_dir {
        match write_csv(dir, name, headers, rows) {
            Ok(path) => println!("  -> {}", path.display()),
            Err(e) => eprintln!("  !! csv write failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips_escaping() {
        let dir = std::env::temp_dir().join("eval_report_test");
        let rows = vec![vec!["a,b".to_string(), "plain".to_string()]];
        let path = write_csv(&dir, "t", &["x", "y"], &rows).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n\"a,b\",plain\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into()], vec!["1".into(), "2".into(), "3".into()]],
        );
    }
}
