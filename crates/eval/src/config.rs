//! Experiment configuration.

use std::path::PathBuf;

/// Knobs shared by every experiment, defaulting to the paper's settings.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// hosp table size (paper: 115K records).
    pub hosp_rows: usize,
    /// uis table size (paper: 15K records).
    pub uis_rows: usize,
    /// hosp rule-set size (paper: 1000).
    pub hosp_rules: usize,
    /// uis rule-set size (paper: 100).
    pub uis_rules: usize,
    /// Noise rate (paper default: 10%).
    pub noise_rate: f64,
    /// Master seed; every derived RNG is seeded from it.
    pub seed: u64,
    /// Directory for CSV dumps of each series (none = print only).
    pub out_dir: Option<PathBuf>,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            hosp_rows: 115_000,
            uis_rows: 15_000,
            hosp_rules: 1_000,
            uis_rules: 100,
            noise_rate: 0.10,
            seed: 2014,
            out_dir: None,
        }
    }
}

impl ExpConfig {
    /// A ~10× smaller preset for laptops and CI.
    pub fn quick() -> Self {
        ExpConfig {
            hosp_rows: 12_000,
            uis_rows: 2_000,
            hosp_rules: 300,
            uis_rules: 50,
            ..ExpConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ExpConfig::default();
        assert_eq!(c.hosp_rows, 115_000);
        assert_eq!(c.uis_rows, 15_000);
        assert_eq!(c.hosp_rules, 1_000);
        assert_eq!(c.uis_rules, 100);
        assert!((c.noise_rate - 0.10).abs() < 1e-9);
    }

    #[test]
    fn quick_is_smaller() {
        let q = ExpConfig::quick();
        let d = ExpConfig::default();
        assert!(q.hosp_rows < d.hosp_rows);
        assert!(q.uis_rules < d.uis_rules);
    }
}
