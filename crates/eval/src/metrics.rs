//! Repair-quality metrics (§7.1).
//!
//! *"precision is the ratio of corrected attribute values to the number of
//! all the attributes that are updated, and recall is the ratio of
//! corrected attribute values to the number of all erroneous attribute
//! values."*

use relation::Table;

/// Cell-level accuracy counts of one repair run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accuracy {
    /// Cells the algorithm changed.
    pub updates: usize,
    /// Changed cells whose new value equals the ground truth.
    pub corrected: usize,
    /// Cells that were erroneous in the dirty table.
    pub errors: usize,
}

impl Accuracy {
    /// `corrected / updates`; defined as 1 when nothing was updated (no
    /// wrong change was made).
    pub fn precision(&self) -> f64 {
        if self.updates == 0 {
            1.0
        } else {
            self.corrected as f64 / self.updates as f64
        }
    }

    /// `corrected / errors`; defined as 1 when there was nothing to fix.
    pub fn recall(&self) -> f64 {
        if self.errors == 0 {
            1.0
        } else {
            self.corrected as f64 / self.errors as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Score a repair given the ground truth, the dirty input, and the repaired
/// output (all same shape).
pub fn score(clean: &Table, dirty: &Table, repaired: &Table) -> Accuracy {
    assert_eq!(clean.len(), dirty.len());
    assert_eq!(clean.len(), repaired.len());
    let arity = clean.schema().arity();
    let mut acc = Accuracy {
        updates: 0,
        corrected: 0,
        errors: 0,
    };
    for row in 0..clean.len() {
        let (c, d, r) = (clean.row(row), dirty.row(row), repaired.row(row));
        for a in 0..arity {
            if d[a] != c[a] {
                acc.errors += 1;
            }
            if r[a] != d[a] {
                acc.updates += 1;
                if r[a] == c[a] {
                    acc.corrected += 1;
                }
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn tables() -> (Table, Table, Table, SymbolTable) {
        let s = Schema::new("T", ["a", "b"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut clean = Table::new(s.clone());
        let mut dirty = Table::new(s.clone());
        let mut repaired = Table::new(s.clone());
        // Row 0: error in b, corrected.
        clean.push_strs(&mut sy, &["x", "good"]).unwrap();
        dirty.push_strs(&mut sy, &["x", "bad"]).unwrap();
        repaired.push_strs(&mut sy, &["x", "good"]).unwrap();
        // Row 1: error in a, mis-corrected to another wrong value.
        clean.push_strs(&mut sy, &["k", "v"]).unwrap();
        dirty.push_strs(&mut sy, &["kk", "v"]).unwrap();
        repaired.push_strs(&mut sy, &["kkk", "v"]).unwrap();
        // Row 2: no error, spurious update.
        clean.push_strs(&mut sy, &["m", "n"]).unwrap();
        dirty.push_strs(&mut sy, &["m", "n"]).unwrap();
        repaired.push_strs(&mut sy, &["m", "oops"]).unwrap();
        (clean, dirty, repaired, sy)
    }

    #[test]
    fn counts_updates_corrections_errors() {
        let (clean, dirty, repaired, _) = tables();
        let acc = score(&clean, &dirty, &repaired);
        assert_eq!(acc.errors, 2);
        assert_eq!(acc.updates, 3);
        assert_eq!(acc.corrected, 1);
        assert!((acc.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert!((acc.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_updates_has_perfect_precision_zero_recall() {
        let (clean, dirty, _, _) = tables();
        let acc = score(&clean, &dirty, &dirty);
        assert_eq!(acc.updates, 0);
        assert!((acc.precision() - 1.0).abs() < 1e-12);
        assert!((acc.recall() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn clean_input_perfect_scores() {
        let (clean, _, _, _) = tables();
        let acc = score(&clean, &clean, &clean);
        assert!((acc.precision() - 1.0).abs() < 1e-12);
        assert!((acc.recall() - 1.0).abs() < 1e-12);
        assert!((acc.f1() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_balances_p_and_r() {
        let acc = Accuracy {
            updates: 10,
            corrected: 5,
            errors: 10,
        };
        // p = 0.5, r = 0.5 → f1 = 0.5
        assert!((acc.f1() - 0.5).abs() < 1e-12);
    }
}
