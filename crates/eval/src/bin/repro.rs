//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [--quick] [--seed N] [--hosp-rows N] [--uis-rows N]
//!       [--hosp-rules N] [--uis-rules N] [--out DIR] [--metrics FILE.json]
//!
//! experiments:
//!   fig9a fig9b           consistency-check efficiency (hosp / uis)
//!   fig10ab fig10ef       precision+recall vs typo rate (hosp / uis)
//!   fig10cd fig10gh       precision+recall vs |Σ| (hosp / uis)
//!   fig11a fig11b         negative-pattern distribution / sweep (hosp)
//!   fig12a fig12b         comparison with editing rules (hosp)
//!   fig13a fig13b         repair efficiency vs |Σ| (hosp / uis)
//!   table-rt              runtime table: lRepair vs Heu vs Csm
//!   all                   everything above
//! ```

use std::path::PathBuf;

use eval::experiments::{discovery, editing, exp1, exp2, exp3, negpat, prepare, rule_steps, Which};
use eval::report::emit;
use eval::ExpConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which_exp: Option<String> = None;
    let mut cfg = ExpConfig::default();
    let mut metrics_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" => {
                i += 1;
                metrics_path = Some(PathBuf::from(&args[i]));
            }
            "--quick" => {
                let out = cfg.out_dir.clone();
                let seed = cfg.seed;
                cfg = ExpConfig::quick();
                cfg.out_dir = out;
                cfg.seed = seed;
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed N");
            }
            "--hosp-rows" => {
                i += 1;
                cfg.hosp_rows = args[i].parse().expect("--hosp-rows N");
            }
            "--uis-rows" => {
                i += 1;
                cfg.uis_rows = args[i].parse().expect("--uis-rows N");
            }
            "--hosp-rules" => {
                i += 1;
                cfg.hosp_rules = args[i].parse().expect("--hosp-rules N");
            }
            "--uis-rules" => {
                i += 1;
                cfg.uis_rules = args[i].parse().expect("--uis-rules N");
            }
            "--out" => {
                i += 1;
                cfg.out_dir = Some(PathBuf::from(&args[i]));
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
            exp => which_exp = Some(exp.to_string()),
        }
        i += 1;
    }
    let Some(exp) = which_exp else {
        eprintln!("usage: repro <experiment> [--quick] [--out DIR] ...");
        eprintln!("experiments: fig9a fig9b fig10ab fig10cd fig10ef fig10gh fig11a fig11b fig12a fig12b fig13a fig13b table-rt ablation-heu ablation-discovery all");
        std::process::exit(2);
    };

    let run = |name: &str, cfg: &ExpConfig| dispatch(name, cfg);
    match exp.as_str() {
        "all" => {
            for name in [
                "fig9a",
                "fig9b",
                "fig10ab",
                "fig10cd",
                "fig10ef",
                "fig10gh",
                "fig11a",
                "fig11b",
                "fig12a",
                "fig12b",
                "fig13a",
                "fig13b",
                "table-rt",
                "ablation-heu",
                "ablation-discovery",
            ] {
                run(name, &cfg);
            }
        }
        name => run(name, &cfg),
    }
    // The timed stages above fed the shared registry under the same
    // `stage.*_ns` names `fixctl --metrics` uses; dump it on request.
    if let Some(path) = metrics_path {
        let snapshot = eval::timing::registry().snapshot();
        std::fs::write(&path, snapshot.to_string_pretty() + "\n")
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }
}

fn dispatch(name: &str, cfg: &ExpConfig) {
    let out = cfg.out_dir.as_deref();
    match name {
        "fig9a" | "fig9b" => {
            let which = if name == "fig9a" {
                Which::Hosp
            } else {
                Which::Uis
            };
            let mut p = prepare(which, cfg, 0.5);
            let steps = rule_steps(p.rules.len());
            let points = exp1::run_fig9(&p.rules, &mut p.dataset.symbols, &steps, cfg.seed, 10);
            let rows: Vec<Vec<String>> = points
                .iter()
                .map(|pt| {
                    vec![
                        pt.n_rules.to_string(),
                        pt.algo.to_string(),
                        pt.case.to_string(),
                        format!("{:.3}", pt.millis),
                    ]
                })
                .collect();
            emit(
                out,
                name,
                &format!("Fig 9 ({}) — consistency check time vs |Σ|", which.name()),
                &["rules", "algo", "case", "millis"],
                &rows,
            );
        }
        "fig10ab" | "fig10ef" => {
            let which = if name == "fig10ab" {
                Which::Hosp
            } else {
                Which::Uis
            };
            let points = exp2::run_typo_sweep(which, cfg);
            emit(
                out,
                name,
                &format!(
                    "Fig 10 ({}) — precision/recall vs typo rate (noise {:.0}%)",
                    which.name(),
                    cfg.noise_rate * 100.0
                ),
                &[
                    "typo_pct",
                    "algo",
                    "precision",
                    "recall",
                    "updates",
                    "corrected",
                    "errors",
                ],
                &accuracy_rows(&points, |x| format!("{:.0}", x * 100.0)),
            );
        }
        "fig10cd" | "fig10gh" => {
            let which = if name == "fig10cd" {
                Which::Hosp
            } else {
                Which::Uis
            };
            let points = exp2::run_rulecount_sweep(which, cfg);
            emit(
                out,
                name,
                &format!("Fig 10 ({}) — precision/recall vs |Σ|", which.name()),
                &[
                    "rules",
                    "algo",
                    "precision",
                    "recall",
                    "updates",
                    "corrected",
                    "errors",
                ],
                &accuracy_rows(&points, |x| format!("{x:.0}")),
            );
        }
        "fig11a" => {
            let (points, counts) = negpat::run_fig11a(Which::Hosp, cfg, 30);
            let rows: Vec<Vec<String>> = points
                .iter()
                .map(|p| vec![p.rank.to_string(), p.neg_patterns.to_string()])
                .collect();
            emit(
                out,
                name,
                "Fig 11(a) — #negative patterns per rule (sorted, every 30th)",
                &["rule_rank", "neg_patterns"],
                &rows,
            );
            let twos = counts.iter().filter(|&&c| c == 2).count();
            println!(
                "  {} / {} rules ({:.0}%) carry exactly 2 negative patterns",
                twos,
                counts.len(),
                100.0 * twos as f64 / counts.len().max(1) as f64
            );
        }
        "fig11b" => {
            let points = negpat::run_fig11b(Which::Hosp, cfg, &[0.2, 0.4, 0.6, 0.8, 1.0]);
            let rows: Vec<Vec<String>> = points
                .iter()
                .map(|p| {
                    vec![
                        format!("{:.1}", p.factor),
                        p.total_neg_patterns.to_string(),
                        format!("{:.4}", p.acc.precision()),
                        format!("{:.4}", p.acc.recall()),
                    ]
                })
                .collect();
            emit(
                out,
                name,
                "Fig 11(b) — accuracy vs total #negative patterns",
                &["kept_fraction", "total_neg_patterns", "precision", "recall"],
                &rows,
            );
        }
        "fig12a" | "fig12b" => {
            let (a, b) = editing::run_fig12(Which::Hosp, cfg, 100.min(cfg.hosp_rules));
            if name == "fig12a" {
                let rows: Vec<Vec<String>> = a
                    .per_rule
                    .iter()
                    .enumerate()
                    .map(|(i, c)| vec![i.to_string(), c.to_string()])
                    .collect();
                emit(
                    out,
                    name,
                    "Fig 12(a) — errors corrected per fixing rule (sorted desc)",
                    &["rule_rank", "corrections"],
                    &rows,
                );
                println!(
                    "  total corrections (user interactions editing rules would need): {}",
                    a.total_corrections
                );
            } else {
                let rows = vec![
                    vec![
                        "Fix".to_string(),
                        format!("{:.4}", b.fix.precision()),
                        format!("{:.4}", b.fix.recall()),
                    ],
                    vec![
                        "Edit".to_string(),
                        format!("{:.4}", b.edit.precision()),
                        format!("{:.4}", b.edit.recall()),
                    ],
                ];
                emit(
                    out,
                    name,
                    "Fig 12(b) — fixing rules vs automated editing rules",
                    &["algo", "precision", "recall"],
                    &rows,
                );
            }
        }
        "fig13a" | "fig13b" => {
            let which = if name == "fig13a" {
                Which::Hosp
            } else {
                Which::Uis
            };
            let points = exp3::run_fig13(which, cfg);
            let rows: Vec<Vec<String>> = points
                .iter()
                .map(|p| {
                    vec![
                        p.n_rules.to_string(),
                        p.algo.to_string(),
                        format!("{:.3}", p.millis),
                    ]
                })
                .collect();
            emit(
                out,
                name,
                &format!("Fig 13 ({}) — repair time vs |Σ|", which.name()),
                &["rules", "algo", "millis"],
                &rows,
            );
        }
        "ablation-discovery" => {
            let mut rows = Vec::new();
            for which in [Which::Hosp, Which::Uis] {
                for p in discovery::run_discovery_ablation(which, cfg) {
                    rows.push(vec![
                        which.name().to_string(),
                        p.source.to_string(),
                        p.n_rules.to_string(),
                        format!("{:.4}", p.acc.precision()),
                        format!("{:.4}", p.acc.recall()),
                        p.acc.corrected.to_string(),
                    ]);
                }
            }
            emit(
                out,
                "ablation_discovery",
                "Ablation — §8 automatic discovery vs §7.1 oracle pipeline",
                &[
                    "dataset",
                    "source",
                    "rules",
                    "precision",
                    "recall",
                    "corrected",
                ],
                &rows,
            );
        }
        "ablation-heu" => {
            let points = exp2::run_heu_ablation(Which::Hosp, cfg);
            emit(
                out,
                "ablation_heu",
                "Ablation — Heu with/without cost-based LHS eviction (hosp)",
                &[
                    "typo_pct",
                    "algo",
                    "precision",
                    "recall",
                    "updates",
                    "corrected",
                    "errors",
                ],
                &accuracy_rows(&points, |x| format!("{:.0}", x * 100.0)),
            );
        }
        "table-rt" => {
            let mut rows_out = Vec::new();
            for which in [Which::Hosp, Which::Uis] {
                for r in exp3::run_runtime_table(which, cfg) {
                    rows_out.push(vec![
                        r.dataset.to_string(),
                        r.algo.to_string(),
                        format!("{:.1}", r.millis),
                    ]);
                }
            }
            emit(
                out,
                "table_rt",
                "§7.2 runtime table — lRepair vs Heu vs Csm (ms)",
                &["dataset", "algo", "millis"],
                &rows_out,
            );
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            std::process::exit(2);
        }
    }
}

fn accuracy_rows(
    points: &[exp2::AccuracyPoint],
    fmt_x: impl Fn(f64) -> String,
) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                fmt_x(p.x),
                p.algo.to_string(),
                format!("{:.4}", p.acc.precision()),
                format!("{:.4}", p.acc.recall()),
                p.acc.updates.to_string(),
                p.acc.corrected.to_string(),
                p.acc.errors.to_string(),
            ]
        })
        .collect()
}
