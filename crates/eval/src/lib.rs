//! Experiment harness for the fixing-rules reproduction.
//!
//! Every table and figure of the paper's §7 maps to a runner here (see the
//! per-experiment index in `DESIGN.md`); the `repro` binary drives them and
//! prints paper-style series plus optional CSV dumps.
//!
//! ```text
//! cargo run --release -p eval --bin repro -- all --quick
//! cargo run --release -p eval --bin repro -- fig10ab
//! ```

pub mod config;
pub mod experiments;
pub mod metrics;
pub mod report;
pub mod rules;
pub mod timing;

pub use config::ExpConfig;
pub use metrics::{score, Accuracy};
