//! Wall-clock helpers for the efficiency experiments.

use std::time::Instant;

/// Run `f`, returning its value and the elapsed milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64() * 1e3)
}

/// Median of `n` timed runs of `f` (each run gets a fresh closure result).
pub fn median_ms(n: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..n.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ms_returns_value_and_nonnegative_time() {
        let (v, ms) = time_ms(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn median_of_noisy_samples_is_finite() {
        let ms = median_ms(5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(ms.is_finite());
    }
}
