//! Wall-clock helpers for the efficiency experiments.
//!
//! Timed sections double as observability samples: [`stage_ms`] feeds the
//! harness-wide [`registry`] under the same `stage.<name>_ns` histogram
//! names `fixctl --metrics` uses, so a repro run and a CLI run of the same
//! pipeline produce comparable snapshots (`repro --metrics FILE` dumps it).

use std::sync::OnceLock;
use std::time::Instant;

use obs::MetricsRegistry;

/// The process-wide metrics registry shared by every experiment.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// Run `f`, returning its value and the elapsed milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64() * 1e3)
}

/// [`time_ms`], but the sample also lands in the shared [`registry`] as a
/// `stage.<name>_ns` histogram observation.
pub fn stage_ms<T>(stage: &str, f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let v = f();
    let elapsed = start.elapsed();
    registry()
        .histogram(&format!("stage.{stage}_ns"))
        .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    (v, elapsed.as_secs_f64() * 1e3)
}

/// Median of `n` timed runs of `f` (each run gets a fresh closure result).
pub fn median_ms(n: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..n.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ms_returns_value_and_nonnegative_time() {
        let (v, ms) = time_ms(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn stage_ms_records_into_the_shared_registry() {
        let before = registry().histogram("stage.timing_test_ns").count();
        let (v, ms) = stage_ms("timing_test", || 7);
        assert_eq!(v, 7);
        assert!(ms >= 0.0);
        let h = registry().histogram("stage.timing_test_ns");
        assert_eq!(h.count(), before + 1);
    }

    #[test]
    fn median_of_noisy_samples_is_finite() {
        let ms = median_ms(5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(ms.is_finite());
    }
}
