//! Master-data oracles and negative-pattern enrichment sources (§7.1).
//!
//! The paper's experts seed rules from FD violations and enrich their
//! negative patterns "via extracting new negative patterns from related
//! tables in the same domain". We mechanise both inputs:
//!
//! * [`build_master_indexes`] — one [`MasterIndex`] per single-RHS FD,
//!   built from the ground-truth table (standing in for the reference data
//!   the experts consulted);
//! * [`build_enrichment`] — per-attribute candidate pools: a shuffled
//!   active domain (the "related table in the same domain") plus a small
//!   typo corpus around each frequent value.

use fixrules::generation::{Enrichment, MasterIndex};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use relation::{AttrId, Symbol};

use crate::noise::typo_of;
use crate::Dataset;

/// Build the per-FD master oracles from the dataset's ground truth.
pub fn build_master_indexes(dataset: &Dataset) -> Vec<MasterIndex> {
    dataset
        .single_rhs_fds()
        .iter()
        .map(|fd| MasterIndex::build(&dataset.clean, fd.lhs(), fd.rhs()[0]))
        .collect()
}

/// Build an enrichment source for the dataset.
///
/// * `by_attr`: for every FD RHS attribute, the column's active domain in a
///   seed-shuffled order (so per-rule budgets sample it uniformly);
/// * `by_value`: for up to `typo_corpus_values` of each RHS attribute's
///   values, `typos_per_value` one-edit variants.
pub fn build_enrichment(
    dataset: &mut Dataset,
    typo_corpus_values: usize,
    typos_per_value: usize,
    seed: u64,
) -> Enrichment {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut enrichment = Enrichment::default();
    let rhs_attrs: Vec<AttrId> = {
        let mut v: Vec<AttrId> = dataset
            .single_rhs_fds()
            .iter()
            .map(|fd| fd.rhs()[0])
            .collect();
        v.sort();
        v.dedup();
        v
    };
    for attr in rhs_attrs {
        let mut domain: Vec<Symbol> = dataset.clean.active_domain(attr).into_iter().collect();
        domain.sort();
        domain.shuffle(&mut rng);
        for &value in domain.iter().take(typo_corpus_values) {
            let mut variants = Vec::with_capacity(typos_per_value);
            for _ in 0..typos_per_value {
                if let Some(t) = typo_of(&mut dataset.symbols, value, &mut rng) {
                    if !variants.contains(&t) {
                        variants.push(t);
                    }
                }
            }
            if !variants.is_empty() {
                enrichment.by_value.insert((attr, value), variants);
            }
        }
        enrichment.by_attr.insert(attr, domain);
    }
    enrichment
}

/// The Fig 11(a) negative-pattern-count distribution: most rules carry 2
/// negative patterns, with a thin tail. Returns `n` budgets.
pub fn neg_budget_schedule(n: usize, seed: u64) -> Vec<usize> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let roll: f64 = rng.gen();
            // ~80% → 2, 10% → 3, 5% → 4, 5% → 5–8.
            if roll < 0.80 {
                2
            } else if roll < 0.90 {
                3
            } else if roll < 0.95 {
                4
            } else {
                rng.gen_range(5..=8)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_indexes_cover_every_single_fd() {
        let d = crate::uis::generate(300, 1);
        let idx = build_master_indexes(&d);
        assert_eq!(idx.len(), d.single_rhs_fds().len());
        for m in &idx {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn master_facts_match_truth() {
        let d = crate::uis::generate(200, 2);
        let idx = build_master_indexes(&d);
        let fds = d.single_rhs_fds();
        // Spot-check: every row's key maps to its own RHS value.
        for (m, fd) in idx.iter().zip(fds.iter()) {
            for i in 0..d.clean.len().min(20) {
                let row = d.clean.row(i);
                let key: Vec<Symbol> = fd.lhs().iter().map(|a| row[a.index()]).collect();
                assert_eq!(m.fact_for(&key), Some(row[fd.rhs()[0].index()]));
            }
        }
    }

    #[test]
    fn enrichment_has_domains_for_rhs_attrs() {
        let mut d = crate::uis::generate(300, 3);
        let e = build_enrichment(&mut d, 5, 2, 1);
        let state = d.schema.attr("state").unwrap();
        assert!(e.by_attr.contains_key(&state));
        assert!(!e.by_attr[&state].is_empty());
        // RecordID is not an FD RHS: no pool.
        let rid = d.schema.attr("RecordID").unwrap();
        assert!(!e.by_attr.contains_key(&rid));
    }

    #[test]
    fn budget_schedule_matches_fig11a_shape() {
        let budgets = neg_budget_schedule(10_000, 7);
        let twos = budgets.iter().filter(|&&b| b == 2).count();
        assert!(twos > 7_000 && twos < 9_000, "got {twos} twos");
        assert!(budgets.iter().all(|&b| (2..=8).contains(&b)));
    }

    #[test]
    fn enrichment_is_deterministic() {
        let mut d1 = crate::uis::generate(100, 4);
        let mut d2 = crate::uis::generate(100, 4);
        let e1 = build_enrichment(&mut d1, 3, 2, 9);
        let e2 = build_enrichment(&mut d2, 3, 2, 9);
        let state = d1.schema.attr("state").unwrap();
        assert_eq!(e1.by_attr[&state], e2.by_attr[&state]);
    }
}
