//! Vocabulary pools for the synthetic generators.
//!
//! Real-looking tokens keep examples and CSV dumps readable; statistically
//! the algorithms only see equality structure, so the exact words are
//! irrelevant (DESIGN.md §5).

/// US state codes used by both generators.
pub const STATES: &[&str] = &[
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA", "KS",
    "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY",
    "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV",
    "WI", "WY",
];

/// City base names; generators suffix an index to scale the pool.
pub const CITY_STEMS: &[&str] = &[
    "Springfield",
    "Riverton",
    "Fairview",
    "Georgetown",
    "Salem",
    "Madison",
    "Clinton",
    "Greenville",
    "Bristol",
    "Dover",
    "Hudson",
    "Milton",
    "Newport",
    "Oxford",
    "Ashland",
    "Burlington",
    "Clayton",
    "Dayton",
    "Easton",
    "Franklin",
];

/// Street name stems.
pub const STREET_STEMS: &[&str] = &[
    "Main St",
    "Oak Ave",
    "Maple Dr",
    "Cedar Ln",
    "Pine Rd",
    "Elm St",
    "Washington Blvd",
    "Lake View Rd",
    "Hillcrest Ave",
    "Sunset Dr",
];

/// First names for the uis mailing list.
pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Charles",
    "Karen",
    "Christopher",
    "Lisa",
    "Daniel",
    "Nancy",
    "Matthew",
    "Betty",
];

/// Last names for the uis mailing list.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
];

/// Hospital name stems.
pub const HOSPITAL_STEMS: &[&str] = &[
    "General Hospital",
    "Memorial Hospital",
    "Regional Medical Center",
    "Community Hospital",
    "University Hospital",
    "Mercy Hospital",
    "Sacred Heart Medical Center",
    "Baptist Hospital",
    "Methodist Hospital",
    "County Medical Center",
];

/// Hospital types (hosp `ht`).
pub const HOSPITAL_TYPES: &[&str] = &[
    "Acute Care Hospitals",
    "Critical Access Hospitals",
    "Childrens Hospitals",
];

/// Hospital owners (hosp `ho`).
pub const HOSPITAL_OWNERS: &[&str] = &[
    "Government - Federal",
    "Government - State",
    "Government - Local",
    "Proprietary",
    "Voluntary non-profit - Private",
    "Voluntary non-profit - Church",
];

/// Measured conditions (hosp `condition`).
pub const CONDITIONS: &[&str] = &[
    "Heart Attack",
    "Heart Failure",
    "Pneumonia",
    "Surgical Infection Prevention",
    "Childrens Asthma Care",
];

/// Measure-name stems (hosp `MN`); indexed by measure id.
pub const MEASURE_STEMS: &[&str] = &[
    "Patients Given Aspirin at Arrival",
    "Patients Given Beta Blocker at Discharge",
    "Patients Given Antibiotics Within 6 Hours",
    "Patients Given Discharge Instructions",
    "Patients Assessed for Oxygenation",
    "Patients Given Smoking Cessation Advice",
    "Patients Given Initial Antibiotic Selection",
    "Patients Whose Surgery Ended On Time",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_distinct() {
        for pool in [
            STATES,
            CITY_STEMS,
            STREET_STEMS,
            FIRST_NAMES,
            LAST_NAMES,
            HOSPITAL_STEMS,
            HOSPITAL_TYPES,
            HOSPITAL_OWNERS,
            CONDITIONS,
            MEASURE_STEMS,
        ] {
            assert!(!pool.is_empty());
            let mut sorted: Vec<&&str> = pool.iter().collect();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), pool.len(), "duplicate in vocab pool");
        }
    }
}
