//! The `hosp` dataset generator.
//!
//! Mirrors the US Hospital Compare extract used by the paper: 115K records,
//! 17 attributes, and the five FDs of §7.1. Each *provider* (hospital)
//! carries a block of per-measure rows, so FD groups have the real data's
//! redundancy: a `PN` group spans all of that provider's measures, a
//! `(state, MC)` group spans every provider in the state.
//!
//! Data is FD-consistent by construction:
//!
//! * provider-level attributes are functions of `PN` (and `phn` is unique
//!   per provider, so `phn → …` holds);
//! * `MN`/`condition` are functions of `MC`;
//! * `stateAvg` is a function of `(state, MC)` (which subsumes
//!   `(PN, MC) → stateAvg` since `PN` determines `state`).

use fd::parse::parse_fds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::{Schema, SymbolTable, Table};

use crate::vocab;
use crate::Dataset;

/// The 17-attribute hosp schema, §7.1.
pub fn schema() -> Schema {
    Schema::new(
        "hosp",
        [
            "PN",
            "HN",
            "address1",
            "address2",
            "address3",
            "city",
            "state",
            "zip",
            "county",
            "phn",
            "ht",
            "ho",
            "es",
            "MC",
            "MN",
            "condition",
            "stateAvg",
        ],
    )
    .unwrap()
}

/// The five hosp FDs, exactly as listed in the paper.
pub const FDS_TEXT: &str = "\
PN -> HN, address1, address2, address3, city, state, zip, county, phn, ht, ho, es
phn -> zip, city, state, address1, address2, address3
MC -> MN, condition
PN, MC -> stateAvg
state, MC -> stateAvg";

/// Number of measures each provider reports (the real extract has ~20–30).
const MEASURES_PER_PROVIDER: usize = 24;
/// Size of the measure-code pool.
const NUM_MEASURES: usize = 40;

/// Generate a hosp [`Dataset`] with ~`rows` records.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let schema = schema();
    let mut symbols = SymbolTable::with_capacity(rows / 2);
    let mut rng = StdRng::seed_from_u64(seed);

    let num_providers = rows.div_ceil(MEASURES_PER_PROVIDER).max(1);

    // Measure pool: MC determines MN and condition.
    let measures: Vec<(String, String, String)> = (0..NUM_MEASURES)
        .map(|j| {
            let mc = format!("MC-{j:03}");
            let mn = format!(
                "{} v{}",
                vocab::MEASURE_STEMS[j % vocab::MEASURE_STEMS.len()],
                j / vocab::MEASURE_STEMS.len()
            );
            let condition = vocab::CONDITIONS[j % vocab::CONDITIONS.len()].to_string();
            (mc, mn, condition)
        })
        .collect();

    let mut table = Table::with_capacity(schema.clone(), rows);
    let mut emitted = 0usize;
    'providers: for p in 0..num_providers {
        let state = vocab::STATES[rng.gen_range(0..vocab::STATES.len())];
        let city = format!(
            "{}{}",
            vocab::CITY_STEMS[rng.gen_range(0..vocab::CITY_STEMS.len())],
            rng.gen_range(0..50)
        );
        let pn = format!("PN{p:06}");
        let hn = format!(
            "{city} {}",
            vocab::HOSPITAL_STEMS[rng.gen_range(0..vocab::HOSPITAL_STEMS.len())]
        );
        let address1 = format!(
            "{} {}",
            rng.gen_range(1..9999),
            vocab::STREET_STEMS[rng.gen_range(0..vocab::STREET_STEMS.len())]
        );
        let address2 = format!("Suite {}", rng.gen_range(1..500));
        let address3 = String::new();
        let zip = format!("{:05}", rng.gen_range(10000..99999));
        let county = format!("{city} County");
        let phn = format!(
            "{:03}-{:03}-{:04}",
            rng.gen_range(200..999),
            p % 1000,
            p / 1000
        );
        let ht = vocab::HOSPITAL_TYPES[rng.gen_range(0..vocab::HOSPITAL_TYPES.len())];
        let ho = vocab::HOSPITAL_OWNERS[rng.gen_range(0..vocab::HOSPITAL_OWNERS.len())];
        let es = if rng.gen_bool(0.8) { "Yes" } else { "No" };
        // Each provider reports a contiguous run of measures starting at a
        // random offset, like the real extract's partial coverage.
        let start = rng.gen_range(0..NUM_MEASURES);
        for m in 0..MEASURES_PER_PROVIDER {
            if emitted >= rows {
                break 'providers;
            }
            let (mc, mn, condition) = &measures[(start + m) % NUM_MEASURES];
            // stateAvg is a pure function of (state, MC).
            let state_avg = format!(
                "{}%",
                (fxhash(state.as_bytes()) ^ fxhash(mc.as_bytes())) % 100
            );
            let row = [
                pn.as_str(),
                hn.as_str(),
                address1.as_str(),
                address2.as_str(),
                address3.as_str(),
                city.as_str(),
                state,
                zip.as_str(),
                county.as_str(),
                phn.as_str(),
                ht,
                ho,
                es,
                mc.as_str(),
                mn.as_str(),
                condition.as_str(),
                state_avg.as_str(),
            ];
            table.push_strs(&mut symbols, &row).unwrap();
            emitted += 1;
        }
    }

    let fds = parse_fds(&schema, FDS_TEXT).expect("hosp FDs parse");
    Dataset {
        name: "hosp",
        schema,
        symbols,
        clean: table,
        fds,
    }
}

/// Tiny deterministic hash (FxHash-style) so `stateAvg` is a stable function
/// of its inputs across runs and platforms.
fn fxhash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd::violation::satisfies_all;

    #[test]
    fn generates_requested_row_count() {
        let d = generate(1_000, 1);
        assert_eq!(d.clean.len(), 1_000);
        assert_eq!(d.schema.arity(), 17);
    }

    #[test]
    fn truth_satisfies_all_five_fds() {
        let d = generate(3_000, 2);
        assert_eq!(d.fds.len(), 5);
        assert!(satisfies_all(&d.clean, &d.fds));
    }

    #[test]
    fn providers_have_redundant_groups() {
        // FD-violation seeding needs groups with >1 row: each PN must cover
        // several measures.
        let d = generate(2_000, 3);
        let pn = d.schema.attr("PN").unwrap();
        let counts = d.clean.value_counts(pn);
        assert!(counts.values().all(|&c| c >= 1));
        assert!(
            counts.values().filter(|&&c| c >= 2).count() > counts.len() / 2,
            "most providers should have multiple rows"
        );
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = generate(500, 9);
        let b = generate(500, 9);
        assert_eq!(a.clean.len(), b.clean.len());
        for i in 0..a.clean.len() {
            assert_eq!(
                a.clean.row_strs(&a.symbols, i),
                b.clean.row_strs(&b.symbols, i)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(500, 1);
        let b = generate(500, 2);
        let same = (0..a.clean.len())
            .all(|i| a.clean.row_strs(&a.symbols, i) == b.clean.row_strs(&b.symbols, i));
        assert!(!same);
    }
}
