//! The paper's running example: the Travel relation of Fig 1, the master
//! data of Fig 2, and the rules φ1–φ4 of Fig 3 / §6.2.

use fd::Fd;
use fixrules::RuleSet;
use relation::{Schema, SymbolTable, Table};

use crate::Dataset;

/// The Travel schema of Example 1.
pub fn schema() -> Schema {
    Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
}

/// The dirty instance of Fig 1 (r1–r4, errors included).
pub fn dirty_instance(symbols: &mut SymbolTable, schema: &Schema) -> Table {
    let mut t = Table::new(schema.clone());
    for row in [
        ["George", "China", "Beijing", "Beijing", "SIGMOD"],
        ["Ian", "China", "Shanghai", "Hongkong", "ICDE"],
        ["Peter", "China", "Tokyo", "Tokyo", "ICDE"],
        ["Mike", "Canada", "Toronto", "Toronto", "VLDB"],
    ] {
        t.push_strs(symbols, &row).unwrap();
    }
    t
}

/// The corrected instance (bracketed values of Fig 1 applied).
pub fn clean_instance(symbols: &mut SymbolTable, schema: &Schema) -> Table {
    let mut t = Table::new(schema.clone());
    for row in [
        ["George", "China", "Beijing", "Beijing", "SIGMOD"],
        ["Ian", "China", "Beijing", "Shanghai", "ICDE"],
        ["Peter", "Japan", "Tokyo", "Tokyo", "ICDE"],
        ["Mike", "Canada", "Ottawa", "Toronto", "VLDB"],
    ] {
        t.push_strs(symbols, &row).unwrap();
    }
    t
}

/// The rules φ1–φ4 used in the Fig 8 walk-through.
pub fn fig8_rules(symbols: &mut SymbolTable, schema: &Schema) -> RuleSet {
    let mut rs = RuleSet::new(schema.clone());
    rs.push_named(
        symbols,
        &[("country", "China")],
        "capital",
        &["Shanghai", "Hongkong"],
        "Beijing",
    )
    .unwrap();
    rs.push_named(
        symbols,
        &[("country", "Canada")],
        "capital",
        &["Toronto"],
        "Ottawa",
    )
    .unwrap();
    rs.push_named(
        symbols,
        &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
        "country",
        &["China"],
        "Japan",
    )
    .unwrap();
    rs.push_named(
        symbols,
        &[("capital", "Beijing"), ("conf", "ICDE")],
        "city",
        &["Hongkong"],
        "Shanghai",
    )
    .unwrap();
    rs
}

/// The over-broad φ'1 of Example 8 (inconsistent with φ3), for the
/// rule-authoring example and tests.
pub fn phi1_prime(symbols: &mut SymbolTable, schema: &Schema) -> fixrules::FixingRule {
    fixrules::FixingRule::from_named(
        schema,
        symbols,
        &[("country", "China")],
        "capital",
        &["Shanghai", "Hongkong", "Tokyo"],
        "Beijing",
    )
    .unwrap()
}

/// Travel as a [`Dataset`] (clean instance as ground truth, the ψ1 FD).
pub fn dataset() -> Dataset {
    let schema = schema();
    let mut symbols = SymbolTable::new();
    let clean = clean_instance(&mut symbols, &schema);
    let fds = vec![Fd::from_names(&schema, ["country"], ["capital"]).unwrap()];
    Dataset {
        name: "travel",
        schema,
        symbols,
        clean,
        fds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_and_clean_differ_on_the_four_errors() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let dirty = dirty_instance(&mut sy, &schema);
        let clean = clean_instance(&mut sy, &schema);
        assert_eq!(dirty.diff_cells(&clean).unwrap(), 4);
    }

    #[test]
    fn fig8_rules_are_consistent_and_fix_everything() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy, &schema);
        assert!(rules.check_consistency().is_consistent());
        let mut dirty = dirty_instance(&mut sy, &schema);
        let clean = clean_instance(&mut sy, &schema);
        fixrules::repair::crepair_table(&rules, &mut dirty);
        assert_eq!(dirty.diff_cells(&clean).unwrap(), 0);
    }

    #[test]
    fn phi1_prime_conflicts_with_phi3() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let mut rules = fig8_rules(&mut sy, &schema);
        rules.push(phi1_prime(&mut sy, &schema));
        assert!(!rules.check_consistency().is_consistent());
    }

    #[test]
    fn dataset_truth_satisfies_fd() {
        let d = dataset();
        assert!(fd::violation::satisfies_all(&d.clean, &d.fds));
    }
}
