//! The `uis` dataset generator.
//!
//! Reimplements the shape of the UT-Austin UIS Database generator used by
//! the paper: a mailing list with schema
//! `RecordID, ssn, fname, minit, lname, stnum, stadd, apt, city, state, zip`
//! and the three FDs of §7.1.
//!
//! The paper notes the generated uis data has *"few repeated patterns
//! w.r.t. each FD"*, which is why every method's recall is below 8% on it
//! (Fig 10(f)): an error in a singleton FD group raises no violation and
//! seeds no rule. We keep that property — `ssn` and the name triple are
//! unique per record, and the zip pool is sized so most zips cover only one
//! or two records.

use fd::parse::parse_fds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::{Schema, SymbolTable, Table};

use crate::vocab;
use crate::Dataset;

/// The 11-attribute uis schema, §7.1.
pub fn schema() -> Schema {
    Schema::new(
        "uis",
        [
            "RecordID", "ssn", "fname", "minit", "lname", "stnum", "stadd", "apt", "city", "state",
            "zip",
        ],
    )
    .unwrap()
}

/// The three uis FDs, exactly as listed in the paper.
pub const FDS_TEXT: &str = "\
ssn -> fname, minit, lname, stnum, stadd, apt, city, state, zip
fname, minit, lname -> ssn, stnum, stadd, apt, city, state, zip
zip -> state, city";

/// Average records per zip; ~1.5 keeps FD groups mostly singletons (the
/// "few repeated patterns" property).
const RECORDS_PER_ZIP: f64 = 1.5;

/// Generate a uis [`Dataset`] with `rows` records.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let schema = schema();
    let mut symbols = SymbolTable::with_capacity(rows * 4);
    let mut rng = StdRng::seed_from_u64(seed);

    // zip → (state, city) pool.
    let num_zips = ((rows as f64 / RECORDS_PER_ZIP).ceil() as usize).max(1);
    let zips: Vec<(String, &str, String)> = (0..num_zips)
        .map(|z| {
            let zip = format!("{:05}", 10000 + z);
            let state = vocab::STATES[rng.gen_range(0..vocab::STATES.len())];
            let city = format!(
                "{}{}",
                vocab::CITY_STEMS[rng.gen_range(0..vocab::CITY_STEMS.len())],
                z % 97
            );
            (zip, state, city)
        })
        .collect();

    let mut table = Table::with_capacity(schema.clone(), rows);
    for i in 0..rows {
        let record_id = format!("R{i:06}");
        let ssn = format!("{:09}", 100_000_000usize + i * 37 % 899_999_999);
        let fname = vocab::FIRST_NAMES[rng.gen_range(0..vocab::FIRST_NAMES.len())];
        let minit = char::from(b'A' + (rng.gen_range(0..26u8)));
        // Index suffix guarantees the (fname, minit, lname) triple is
        // unique, keeping the name-key FD satisfied.
        let lname = format!(
            "{}{}",
            vocab::LAST_NAMES[rng.gen_range(0..vocab::LAST_NAMES.len())],
            i
        );
        let stnum = format!("{}", rng.gen_range(1..9999));
        let stadd = vocab::STREET_STEMS[rng.gen_range(0..vocab::STREET_STEMS.len())];
        let apt = if rng.gen_bool(0.3) {
            format!("Apt {}", rng.gen_range(1..400))
        } else {
            String::new()
        };
        let (zip, state, city) = &zips[rng.gen_range(0..zips.len())];
        let minit_s = minit.to_string();
        let row = [
            record_id.as_str(),
            ssn.as_str(),
            fname,
            minit_s.as_str(),
            lname.as_str(),
            stnum.as_str(),
            stadd,
            apt.as_str(),
            city.as_str(),
            state,
            zip.as_str(),
        ];
        table.push_strs(&mut symbols, &row).unwrap();
    }

    let fds = parse_fds(&schema, FDS_TEXT).expect("uis FDs parse");
    Dataset {
        name: "uis",
        schema,
        symbols,
        clean: table,
        fds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd::violation::satisfies_all;

    #[test]
    fn generates_requested_rows_and_schema() {
        let d = generate(500, 1);
        assert_eq!(d.clean.len(), 500);
        assert_eq!(d.schema.arity(), 11);
        assert_eq!(d.fds.len(), 3);
    }

    #[test]
    fn truth_satisfies_fds() {
        let d = generate(2_000, 4);
        assert!(satisfies_all(&d.clean, &d.fds));
    }

    #[test]
    fn ssn_is_a_key() {
        let d = generate(1_000, 5);
        let ssn = d.schema.attr("ssn").unwrap();
        assert_eq!(d.clean.active_domain(ssn).len(), d.clean.len());
    }

    #[test]
    fn zip_groups_are_mostly_small() {
        // The "few repeated patterns" property driving Fig 10(f).
        let d = generate(3_000, 6);
        let zip = d.schema.attr("zip").unwrap();
        let counts = d.clean.value_counts(zip);
        let small = counts.values().filter(|&&c| c <= 2).count();
        assert!(
            small * 10 >= counts.len() * 6,
            "expected most zip groups small, got {small}/{}",
            counts.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(200, 11);
        let b = generate(200, 11);
        for i in 0..a.clean.len() {
            assert_eq!(
                a.clean.row_strs(&a.symbols, i),
                b.clean.row_strs(&b.symbols, i)
            );
        }
    }
}
