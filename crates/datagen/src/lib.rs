//! Synthetic datasets and dirty-data generation for the fixing-rules
//! evaluation (§7.1).
//!
//! The paper evaluates on two datasets we cannot redistribute:
//!
//! * **hosp** — 115K records from the US Department of Health & Human
//!   Services (hospitalcompare.hhs.gov), 17 attributes, 5 FDs;
//! * **uis** — 15K records from the UT-Austin UIS Database generator.
//!
//! [`hosp`] and [`uis`] reimplement generators with the same schemas and
//! FDs; generated data is FD-consistent by construction (the ground truth),
//! and [`noise`] then injects the paper's two error types — typos and
//! active-domain substitutions — into constraint-covered attributes at a
//! configurable noise rate, recording a ground-truth error log.
//!
//! [`travel`] builds the running example of Figs 1–3/8 for tests, docs, and
//! the quickstart binary. [`master`] derives the master-data oracle and the
//! negative-pattern enrichment sources used by rule generation.

pub mod hosp;
pub mod master;
pub mod noise;
pub mod travel;
pub mod uis;
pub mod vocab;

use fd::Fd;
use relation::{AttrId, AttrSet, Schema, SymbolTable, Table};

/// A generated dataset: ground-truth table, schema, FDs, and the attributes
/// covered by some FD (the only ones noise may touch).
#[derive(Debug)]
pub struct Dataset {
    /// Dataset name (`hosp`, `uis`, `travel`).
    pub name: &'static str,
    /// The schema shared by `clean`, rules, and dirty copies.
    pub schema: Schema,
    /// Interner for every value in play.
    pub symbols: SymbolTable,
    /// The ground truth.
    pub clean: Table,
    /// The dataset's FDs, as listed in §7.1.
    pub fds: Vec<Fd>,
}

impl Dataset {
    /// Attributes appearing in some FD — the noise targets.
    pub fn constrained_attrs(&self) -> Vec<AttrId> {
        let mut set = AttrSet::new();
        for fd in &self.fds {
            set.union_with(fd.lhs_set());
            set.union_with(fd.rhs_set());
        }
        set.iter().collect()
    }

    /// Single-RHS decomposition of the FDs (rule generation and the
    /// baselines work per RHS attribute).
    pub fn single_rhs_fds(&self) -> Vec<Fd> {
        self.fds.iter().flat_map(|fd| fd.split_rhs()).collect()
    }
}

#[cfg(test)]
mod tests {
    use fd::violation::satisfies_all;

    #[test]
    fn generated_datasets_are_fd_consistent() {
        let h = crate::hosp::generate(2_000, 7);
        assert!(
            satisfies_all(&h.clean, &h.fds),
            "hosp truth violates its FDs"
        );
        let u = crate::uis::generate(1_000, 7);
        assert!(
            satisfies_all(&u.clean, &u.fds),
            "uis truth violates its FDs"
        );
    }

    #[test]
    fn constrained_attrs_cover_fd_attrs() {
        let u = crate::uis::generate(100, 1);
        let attrs = u.constrained_attrs();
        // Every uis attribute except RecordID is FD-covered.
        assert_eq!(attrs.len(), u.schema.arity() - 1);
    }
}
