//! Property tests for dirty-data generation and the metric substrate it
//! feeds.

use proptest::prelude::*;

use datagen::noise::{inject, NoiseConfig};

proptest! {
    /// The error log exactly describes the diff between clean and dirty:
    /// right count, right positions, only constrained attributes, values
    /// truly changed.
    #[test]
    fn noise_log_is_exact(
        rows in 50usize..400,
        rate in 0.0f64..0.5,
        typo in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut d = datagen::uis::generate(rows, seed);
        let attrs = d.constrained_attrs();
        let clean = d.clean.clone();
        let log = inject(
            &mut d.clean,
            &mut d.symbols,
            &attrs,
            NoiseConfig { rate, typo_fraction: typo, seed },
        );
        let expected = ((rows as f64) * rate).ceil() as usize;
        // The generator can fall short only when it runs out of distinct
        // positions or viable substitutes; with these row counts it should
        // always hit the target.
        prop_assert_eq!(log.len(), expected.min(rows * attrs.len()));
        prop_assert_eq!(clean.diff_cells(&d.clean).unwrap(), log.len());
        let mut seen = std::collections::HashSet::new();
        for e in &log {
            prop_assert!(attrs.contains(&e.attr), "corrupted unconstrained attr");
            prop_assert_ne!(e.correct, e.dirty);
            prop_assert_eq!(clean.cell(e.row, e.attr), e.correct);
            prop_assert_eq!(d.clean.cell(e.row, e.attr), e.dirty);
            prop_assert!(seen.insert((e.row, e.attr)), "duplicate position");
        }
    }

    /// Accuracy counts obey their lattice: corrected ≤ updates and
    /// corrected ≤ errors; a perfect repair scores 1/1.
    #[test]
    fn accuracy_bounds(rows in 20usize..200, seed in 0u64..500) {
        let mut d = datagen::uis::generate(rows, seed);
        let attrs = d.constrained_attrs();
        let clean = d.clean.clone();
        inject(
            &mut d.clean,
            &mut d.symbols,
            &attrs,
            NoiseConfig { rate: 0.2, typo_fraction: 0.5, seed },
        );
        let dirty = d.clean.clone();
        // "Repair" by restoring ground truth — the perfect repairer.
        let acc = eval::score(&clean, &dirty, &clean);
        prop_assert!(acc.corrected <= acc.updates);
        prop_assert!(acc.corrected <= acc.errors);
        prop_assert!((acc.precision() - 1.0).abs() < 1e-12);
        prop_assert!((acc.recall() - 1.0).abs() < 1e-12);
        // And the null repairer: no updates, zero recall.
        let none = eval::score(&clean, &dirty, &dirty);
        prop_assert_eq!(none.updates, 0);
        prop_assert!(none.recall() < 1e-12 || none.errors == 0);
    }
}
