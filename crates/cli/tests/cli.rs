//! End-to-end tests driving the `fixctl` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fixctl"))
        .args(args)
        .output()
        .expect("spawn fixctl")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fixctl_test_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const TRAVEL_CSV: &str = "\
name,country,capital,city,conf
George,China,Beijing,Beijing,SIGMOD
Ian,China,Shanghai,Hongkong,ICDE
Peter,China,Tokyo,Tokyo,ICDE
Mike,Canada,Toronto,Toronto,VLDB
";

const GOOD_RULES: &str = r#"
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
IF country = "Canada" AND capital IN {"Toronto"} THEN capital := "Ottawa"
IF capital = "Tokyo" AND city = "Tokyo" AND conf = "ICDE" AND country IN {"China"} THEN country := "Japan"
"#;

const BAD_RULES: &str = r#"
IF country = "China" AND capital IN {"Shanghai", "Hongkong", "Tokyo"} THEN capital := "Beijing"
IF capital = "Tokyo" AND city = "Tokyo" AND conf = "ICDE" AND country IN {"China"} THEN country := "Japan"
"#;

#[test]
fn check_accepts_consistent_rules() {
    let dir = tmpdir("check_ok");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let out = fixctl(&[
        "check",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("consistent ✓"));
}

#[test]
fn check_rejects_inconsistent_rules_with_nonzero_exit() {
    let dir = tmpdir("check_bad");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, BAD_RULES).unwrap();
    let out = fixctl(&[
        "check",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("INCONSISTENT"));
}

#[test]
fn resolve_then_repair_round_trip() {
    let dir = tmpdir("resolve_repair");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    let fixed_rules = dir.join("fixed.frl");
    let repaired = dir.join("repaired.csv");
    let log = dir.join("updates.csv");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, BAD_RULES).unwrap();

    let out = fixctl(&[
        "resolve",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        fixed_rules.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = fixctl(&[
        "repair",
        "--rules",
        fixed_rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        repaired.to_str().unwrap(),
        "--updates-log",
        log.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read_to_string(&repaired).unwrap();
    // r3 repaired to Japan (φ'1 lost Tokyo in resolution, φ3 wins).
    assert!(csv.contains("Peter,Japan,Tokyo,Tokyo,ICDE"), "{csv}");
    let log_text = std::fs::read_to_string(&log).unwrap();
    assert!(log_text.starts_with("row,attribute,old,new,rule"));
    assert!(log_text.contains("country,China,Japan"));
}

#[test]
fn repair_refuses_inconsistent_rules() {
    let dir = tmpdir("repair_refuse");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, BAD_RULES).unwrap();
    let out = fixctl(&[
        "repair",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        dir.join("x.csv").to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("resolve"));
}

#[test]
fn stream_algo_matches_lrepair() {
    let dir = tmpdir("stream");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let mut outputs = Vec::new();
    for algo in ["lrepair", "stream"] {
        let out_path = dir.join(format!("{algo}.csv"));
        let out = fixctl(&[
            "repair",
            "--rules",
            rules.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
            "--algo",
            algo,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push(std::fs::read_to_string(&out_path).unwrap());
    }
    assert_eq!(outputs[0], outputs[1]);
}

#[test]
fn crepair_algo_matches_lrepair() {
    let dir = tmpdir("algos");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let mut outputs = Vec::new();
    for algo in ["lrepair", "crepair"] {
        let out_path = dir.join(format!("{algo}.csv"));
        let out = fixctl(&[
            "repair",
            "--rules",
            rules.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
            "--algo",
            algo,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push(std::fs::read_to_string(&out_path).unwrap());
    }
    assert_eq!(outputs[0], outputs[1]);
}

#[test]
fn stats_reports_rule_shape() {
    let dir = tmpdir("stats");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let out = fixctl(&[
        "stats",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rules:  3"));
    assert!(stdout.contains("capital"));
}

#[test]
fn detect_explains_without_writing() {
    let dir = tmpdir("detect");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let before = std::fs::read_to_string(&data).unwrap();
    let out = fixctl(&[
        "detect",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 planned update(s)"), "{stdout}");
    assert!(stdout.contains("known wrong value given"), "{stdout}");
    // Data untouched.
    assert_eq!(before, std::fs::read_to_string(&data).unwrap());
}

#[test]
fn convert_to_json_and_back() {
    let dir = tmpdir("convert");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    let json = dir.join("r.json");
    let frl2 = dir.join("r2.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let out = fixctl(&[
        "convert",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        json.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&json).unwrap();
    assert!(doc.contains("\"relation\""));
    assert!(doc.contains("Beijing"));
    // Round-trip frl -> frl is a normalization pass.
    let out = fixctl(&[
        "convert",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        frl2.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&frl2).unwrap();
    assert!(text.contains("THEN capital := \"Beijing\""));
}

#[test]
fn discover_learns_rules_from_redundant_data() {
    let dir = tmpdir("discover");
    let data = dir.join("t.csv");
    let fds = dir.join("fds.txt");
    let out_rules = dir.join("learned.frl");
    // Redundant country→capital data with one lone dissenter.
    let mut csv = String::from("country,capital\n");
    for _ in 0..5 {
        csv.push_str("China,Beijing\n");
    }
    csv.push_str("China,Shanghai\n");
    for _ in 0..4 {
        csv.push_str("Canada,Ottawa\n");
    }
    csv.push_str("Canada,Toronto\n");
    std::fs::write(&data, csv).unwrap();
    std::fs::write(&fds, "country -> capital\n").unwrap();
    let out = fixctl(&[
        "discover",
        "--data",
        data.to_str().unwrap(),
        "--fds",
        fds.to_str().unwrap(),
        "--out",
        out_rules.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&out_rules).unwrap();
    assert!(text.contains("THEN capital := \"Beijing\""), "{text}");
    assert!(text.contains("THEN capital := \"Ottawa\""), "{text}");
    // The learned rules repair the data they were learned from.
    let repaired = dir.join("repaired.csv");
    let out = fixctl(&[
        "repair",
        "--rules",
        out_rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        repaired.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let fixed = std::fs::read_to_string(&repaired).unwrap();
    assert!(!fixed.contains("Shanghai"));
    assert!(!fixed.contains("Toronto"));
}

#[test]
fn missing_flags_produce_usage_errors() {
    let out = fixctl(&["repair", "--data", "/nonexistent.csv"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--rules"));
    let out = fixctl(&["frobnicate"]);
    assert!(!out.status.success());
    let out = fixctl(&[]);
    assert!(!out.status.success());
}

#[test]
fn bad_rule_file_reports_line() {
    let dir = tmpdir("bad_rule");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(
        &rules,
        "IF country = \"China\" THEN capital := \"Beijing\"\n",
    )
    .unwrap();
    let out = fixctl(&[
        "check",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 1"));
}

/// `--metrics` on the paper's Fig 1–3 running example: the snapshot must be
/// parseable JSON carrying per-stage timings and pipeline counters with the
/// documented names and the exact values the example implies (three dirty
/// tuples out of four, one update each, three rule pairs checked).
#[test]
fn metrics_flag_emits_stage_timings_and_counters() {
    let dir = tmpdir("metrics");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    let repaired = dir.join("repaired.csv");
    let metrics = dir.join("metrics.json");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();

    let out = fixctl(&[
        "repair",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        repaired.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
        "--log",
        "info",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Structured logging rode along: stage events as key=value lines.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("level=info event=load.done"), "{stderr}");
    assert!(stderr.contains("event=repair.done"), "{stderr}");
    assert!(stderr.contains("algo=lrepair"), "{stderr}");

    let text = std::fs::read_to_string(&metrics).unwrap();
    let snap = obs::json::parse(&text).expect("metrics file is valid JSON");

    // Per-stage wall-clock histograms, one sample per stage.
    let histograms = snap.get("histograms").expect("histograms section");
    for stage in [
        "stage.load_ns",
        "stage.consistency_check_ns",
        "stage.index_build_ns",
        "stage.repair_ns",
        "stage.write_ns",
    ] {
        let h = histograms
            .get(stage)
            .unwrap_or_else(|| panic!("missing stage histogram {stage}"));
        assert_eq!(h.get("count").unwrap().as_i64(), Some(1), "{stage}");
        for key in ["sum", "max", "p50", "p95", "p99"] {
            assert!(h.get(key).is_some(), "{stage} missing {key}");
        }
    }

    // Pipeline counters: Ian and Mike get a capital fix, Peter a country
    // fix; George is already clean. Three rules => three pairs checked.
    let counters = snap.get("counters").expect("counters section");
    let get = |name: &str| {
        counters
            .get(name)
            .and_then(|v| v.as_i64())
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(get("repair.tuples"), 4);
    assert_eq!(get("repair.tuples_touched"), 3);
    assert_eq!(get("repair.updates"), 3);
    assert_eq!(get("repair.rules_applied"), 3);
    assert_eq!(get("consistency.pairs_checked"), 3);
    assert!(get("repair.index.probes") > 0);

    // The repair itself still happened.
    let csv = std::fs::read_to_string(&repaired).unwrap();
    assert!(csv.contains("Ian,China,Beijing,Hongkong,ICDE"), "{csv}");
    assert!(csv.contains("Peter,Japan,Tokyo,Tokyo,ICDE"), "{csv}");
    assert!(csv.contains("Mike,Canada,Ottawa,Toronto,VLDB"), "{csv}");
}

fn example(rel: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join(rel)
        .to_str()
        .unwrap()
        .to_string()
}

#[test]
fn lint_reports_conflict_with_stable_code_and_span() {
    let out = fixctl(&["lint", &example("lint/conflicting.frl")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[FR001]"), "{stdout}");
    assert!(stdout.contains("conflicting.frl:3:1"), "{stdout}");
    assert!(stdout.contains("witness tuple:"), "{stdout}");
    assert!(stdout.contains("1 error(s)"), "{stdout}");
}

#[test]
fn lint_warnings_exit_zero_unless_denied() {
    let path = example("lint/dead_redundant.frl");
    let out = fixctl(&["lint", &path]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("warning[FR002]"), "{stdout}");
    assert!(stdout.contains("dead_redundant.frl:4:1"), "{stdout}");
    assert!(stdout.contains("warning[FR003]"), "{stdout}");
    assert!(stdout.contains("dead_redundant.frl:5:1"), "{stdout}");
    assert!(stdout.contains("warning[FR004]"), "{stdout}");

    let out = fixctl(&["lint", &path, "--deny", "warnings"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn lint_deny_specific_code_is_fatal() {
    let path = example("lint/dead_redundant.frl");
    let out = fixctl(&["lint", &path, "--deny", "FR002"]);
    assert_eq!(out.status.code(), Some(1));
    // Denying a code that never fires stays clean.
    let out = fixctl(&["lint", &path, "--deny", "FR001"]);
    assert_eq!(out.status.code(), Some(0));
    // Unknown codes are an operational error, not a lint result.
    let out = fixctl(&["lint", &path, "--deny", "FR999"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn lint_good_rulesets_are_clean() {
    for rel in ["rulesets/travel.frl", "rulesets/hosp_zip.frl"] {
        let out = fixctl(&["lint", &example(rel), "--deny", "warnings"]);
        assert_eq!(out.status.code(), Some(0), "{rel} should lint clean");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("0 error(s), 0 warning(s)"), "{stdout}");
    }
}

#[test]
fn lint_json_is_deterministic_and_parses() {
    let path = example("lint/dead_redundant.frl");
    let first = fixctl(&["lint", &path, "--format", "json"]);
    let second = fixctl(&["lint", &path, "--format", "json"]);
    assert_eq!(first.stdout, second.stdout, "JSON output must be stable");
    let doc = obs::json::parse(&String::from_utf8_lossy(&first.stdout)).expect("valid JSON");
    let findings = doc
        .get("findings")
        .and_then(|f| f.as_arr())
        .expect("findings array");
    let codes: Vec<_> = findings
        .iter()
        .map(|f| f.get("code").and_then(|c| c.as_str()).unwrap())
        .collect();
    assert_eq!(codes, ["FR002", "FR003", "FR004", "FR004"]);
    let summary = doc.get("summary").expect("summary");
    assert_eq!(summary.get("warnings").unwrap().as_i64(), Some(4));
    assert_eq!(summary.get("errors").unwrap().as_i64(), Some(0));
}

#[test]
fn lint_parse_error_is_fr000() {
    let dir = tmpdir("lint_parse");
    let rules = dir.join("broken.frl");
    std::fs::write(&rules, "IF country = \"China\" capital := \"Beijing\"\n").unwrap();
    let out = fixctl(&["lint", rules.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[FR000]"), "{stdout}");
    assert!(stdout.contains("broken.frl:1:"), "{stdout}");
}

#[test]
fn lint_counts_findings_in_metrics() {
    let dir = tmpdir("lint_metrics");
    let metrics = dir.join("m.json");
    let out = fixctl(&[
        "lint",
        &example("lint/dead_redundant.frl"),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let snap = obs::json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let counters = snap.get("counters").expect("counters");
    assert_eq!(counters.get("lint.findings").unwrap().as_i64(), Some(4));
    assert_eq!(
        counters.get("lint.findings.FR002").unwrap().as_i64(),
        Some(1)
    );
    assert_eq!(
        counters.get("lint.severity.warning").unwrap().as_i64(),
        Some(4)
    );
}

/// Rules that cascade: φ1 repairs `capital`, and the repaired capital is
/// then evidence for φ3's `city` fix — a two-link provenance chain.
const CASCADE_RULES: &str = r#"
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
IF country = "Canada" AND capital IN {"Toronto"} THEN capital := "Ottawa"
IF capital = "Beijing" AND conf = "ICDE" AND city IN {"Hongkong"} THEN city := "Shanghai"
"#;

fn repair_with_trace(dir: &std::path::Path, algo: &str, tag: &str) -> String {
    let trace = dir.join(format!("{tag}.jsonl"));
    let out = fixctl(&[
        "repair",
        "--rules",
        dir.join("r.frl").to_str().unwrap(),
        "--data",
        dir.join("t.csv").to_str().unwrap(),
        "--out",
        dir.join(format!("{tag}.csv")).to_str().unwrap(),
        "--algo",
        algo,
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(&trace).unwrap()
}

/// Two identical runs under the default logical clock produce byte-identical
/// journals — the CI determinism gate relies on this.
#[test]
fn trace_journal_is_byte_deterministic() {
    let dir = tmpdir("trace_det");
    std::fs::write(dir.join("t.csv"), TRAVEL_CSV).unwrap();
    std::fs::write(dir.join("r.frl"), GOOD_RULES).unwrap();
    let first = repair_with_trace(&dir, "lrepair", "a");
    let second = repair_with_trace(&dir, "lrepair", "b");
    assert_eq!(
        first, second,
        "logical-clock journals must be byte-identical"
    );
    // The journal carries the run context and one event per applied fix.
    assert!(first.contains("\"name\":\"trace.meta\""), "{first}");
    assert!(first.contains("\"name\":\"stage.repair\""), "{first}");
    let cells = first.matches("\"name\":\"repair.cell\"").count();
    assert_eq!(cells, 3, "Ian, Peter, and Mike each get one fix:\n{first}");
    // Logical clock: no wall timestamps anywhere.
    assert!(!first.contains("ts_us"), "{first}");
}

/// The provenance events are driver-independent: the stream driver's
/// journal records exactly the same `repair.cell` events as `lrepair`.
#[test]
fn stream_trace_records_same_provenance_as_lrepair() {
    let dir = tmpdir("trace_stream");
    std::fs::write(dir.join("t.csv"), TRAVEL_CSV).unwrap();
    std::fs::write(dir.join("r.frl"), GOOD_RULES).unwrap();
    let table = repair_with_trace(&dir, "lrepair", "table");
    let stream = repair_with_trace(&dir, "stream", "stream");
    let cells_of = |journal: &str| -> Vec<String> {
        journal
            .lines()
            .filter(|l| l.contains("\"name\":\"repair.cell\""))
            .map(|l| {
                let fields_start = l.find("\"fields\":").unwrap();
                let fields_end = l.find(",\"name\"").unwrap();
                l[fields_start..fields_end].to_string()
            })
            .collect()
    };
    assert_eq!(cells_of(&table), cells_of(&stream));
}

/// `fixctl explain` walks the recorded evidence backwards and renders the
/// full rule chain rustc-style; cells that were never repaired exit 1.
#[test]
fn explain_reconstructs_the_rule_chain() {
    let dir = tmpdir("explain");
    std::fs::write(dir.join("t.csv"), TRAVEL_CSV).unwrap();
    std::fs::write(dir.join("r.frl"), CASCADE_RULES).unwrap();
    let trace = dir.join("a.jsonl");
    repair_with_trace(&dir, "lrepair", "a");

    // Row 1 (Ian): city was repaired by φ3 whose evidence (capital =
    // Beijing) was itself produced by φ1 — a two-step chain.
    let out = fixctl(&[
        "explain",
        trace.to_str().unwrap(),
        "--row",
        "1",
        "--attr",
        "city",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("fix[row 1, city]: \"Hongkong\" -> \"Shanghai\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("step 1: capital \"Shanghai\" -> \"Beijing\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("step 2: city \"Hongkong\" -> \"Shanghai\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("evidence: capital = \"Beijing\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("chain of 2 rule application(s)"),
        "{stdout}"
    );
    // The fired rules are excerpted from the journal's own rule listing,
    // final link underlined with carets, its dependency with dashes.
    assert!(stdout.contains("THEN city := \"Shanghai\""), "{stdout}");
    let dash = stdout.find("----").expect("dash underline");
    let caret = stdout.find("^^^^").expect("caret underline");
    assert!(dash < caret, "{stdout}");

    // George (row 0) was never touched.
    let out = fixctl(&[
        "explain",
        trace.to_str().unwrap(),
        "--row",
        "0",
        "--attr",
        "city",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no repair recorded"));

    // Unknown attributes are an operational error.
    let out = fixctl(&[
        "explain",
        trace.to_str().unwrap(),
        "--row",
        "1",
        "--attr",
        "zipcode",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown attribute"));
}

/// `fixctl trace export --chrome` emits valid trace-event JSON with
/// balanced span begin/end pairs.
#[test]
fn trace_export_produces_chrome_json() {
    let dir = tmpdir("trace_chrome");
    std::fs::write(dir.join("t.csv"), TRAVEL_CSV).unwrap();
    std::fs::write(dir.join("r.frl"), GOOD_RULES).unwrap();
    repair_with_trace(&dir, "lrepair", "a");
    let chrome = dir.join("chrome.json");
    let out = fixctl(&[
        "trace",
        "export",
        dir.join("a.jsonl").to_str().unwrap(),
        "--chrome",
        chrome.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = obs::json::parse(&std::fs::read_to_string(&chrome).unwrap()).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let phase_count = |ph: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
            .count()
    };
    assert_eq!(phase_count("B"), phase_count("E"), "balanced spans");
    assert!(phase_count("i") >= 3, "instant events carried over");

    // Unknown subcommands are rejected up front.
    let out = fixctl(&["trace", "frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("trace export"));
}

/// `--trace-clock wall` opts into real timestamps (and thereby gives up
/// byte determinism).
#[test]
fn wall_clock_trace_carries_timestamps() {
    let dir = tmpdir("trace_wall");
    std::fs::write(dir.join("t.csv"), TRAVEL_CSV).unwrap();
    std::fs::write(dir.join("r.frl"), GOOD_RULES).unwrap();
    let trace = dir.join("w.jsonl");
    let out = fixctl(&[
        "repair",
        "--rules",
        dir.join("r.frl").to_str().unwrap(),
        "--data",
        dir.join("t.csv").to_str().unwrap(),
        "--out",
        dir.join("w.csv").to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
        "--trace-clock",
        "wall",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::read_to_string(&trace).unwrap().contains("ts_us"));

    let out = fixctl(&[
        "repair",
        "--rules",
        dir.join("r.frl").to_str().unwrap(),
        "--data",
        dir.join("t.csv").to_str().unwrap(),
        "--out",
        dir.join("w.csv").to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
        "--trace-clock",
        "sundial",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown trace clock"));
}

/// `--metrics` without `--log` still writes the snapshot; `--log off` (the
/// default) emits nothing on stderr beyond the usual human summary.
#[test]
fn metrics_without_log_is_quiet() {
    let dir = tmpdir("metrics_quiet");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    let metrics = dir.join("m.json");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let out = fixctl(&[
        "check",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!String::from_utf8_lossy(&out.stderr).contains("level="));
    let snap = obs::json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert!(snap.get("counters").is_some());
    assert!(snap.get("gauges").is_some());
    assert!(snap.get("histograms").is_some());
}

/// Every engine spelling produces byte-identical repaired CSV, and the
/// compiled engines do so with the plan cache on, off, bounded, and across
/// worker threads.
#[test]
fn engines_agree_on_repaired_output() {
    let dir = tmpdir("engines_agree");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let run = |label: &str, extra: &[&str]| -> (String, String) {
        let out_path = dir.join(format!("{label}.csv"));
        let mut args = vec![
            "repair",
            "--rules",
            rules.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--out",
        ];
        let out_str = out_path.to_str().unwrap().to_string();
        args.push(&out_str);
        args.extend_from_slice(extra);
        let out = fixctl(&args);
        assert!(
            out.status.success(),
            "{label}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            std::fs::read_to_string(&out_path).unwrap(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        )
    };
    let (baseline, base_stdout) = run("lrepair", &["--algo", "lrepair"]);
    assert!(base_stdout.contains("3 update(s)"), "{base_stdout}");
    for (label, extra) in [
        ("chase", &["--engine", "chase"][..]),
        ("compiled_on", &["--engine", "compiled"][..]),
        (
            "compiled_off",
            &["--engine", "compiled", "--plan-cache", "off"][..],
        ),
        (
            "compiled_cap",
            &["--engine", "compiled", "--plan-cache", "2"][..],
        ),
        (
            "compiled_chase",
            &["--engine", "compiled-chase", "--plan-cache", "on"][..],
        ),
        (
            "compiled_par",
            &["--engine", "compiled", "--threads", "3"][..],
        ),
        (
            "lrepair_par",
            &["--engine", "lrepair", "--threads", "2"][..],
        ),
    ] {
        let (csv, stdout) = run(label, extra);
        assert_eq!(csv, baseline, "{label} diverged from lrepair");
        assert!(stdout.contains("3 update(s)"), "{label}: {stdout}");
    }
    // Cached compiled run reports the cache; uncached one does not.
    let (_, cached) = run("cache_report", &["--engine", "compiled"]);
    assert!(cached.contains("plan cache:"), "{cached}");
    let (_, uncached) = run(
        "cache_silent",
        &["--engine", "compiled", "--plan-cache", "off"],
    );
    assert!(!uncached.contains("plan cache:"), "{uncached}");
}

/// `--engine stream --plan-cache N` streams through the compiled engine
/// with a bounded LRU memo; output matches the plain stream byte for byte.
#[test]
fn stream_engine_with_plan_cache_matches_plain_stream() {
    let dir = tmpdir("stream_cache");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let mut outputs = Vec::new();
    for (label, extra) in [
        ("plain", &[][..]),
        ("cached", &["--plan-cache", "2"][..]),
        ("cached_on", &["--plan-cache", "on"][..]),
    ] {
        let out_path = dir.join(format!("{label}.csv"));
        let mut args = vec![
            "repair",
            "--engine",
            "stream",
            "--rules",
            rules.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--out",
        ];
        let out_str = out_path.to_str().unwrap().to_string();
        args.push(&out_str);
        args.extend_from_slice(extra);
        let out = fixctl(&args);
        assert!(
            out.status.success(),
            "{label}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        if !extra.is_empty() {
            assert!(String::from_utf8_lossy(&out.stdout).contains("plan cache:"));
        }
        outputs.push(std::fs::read_to_string(&out_path).unwrap());
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
}

/// Flag validation: a plan cache on a non-memoizing engine, a bad capacity,
/// and threads on engines that cannot use them are all rejected.
#[test]
fn engine_flag_validation() {
    let dir = tmpdir("engine_flags");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let base = |extra: &[&str]| {
        let mut args = vec![
            "repair",
            "--rules",
            rules.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--out",
        ];
        let out_str = dir.join("o.csv");
        let out_str = out_str.to_str().unwrap().to_string();
        args.push(&out_str);
        args.extend_from_slice(extra);
        fixctl(&args)
    };
    let out = base(&["--engine", "lrepair", "--plan-cache", "on"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--plan-cache only applies"));

    let out = base(&["--engine", "compiled", "--plan-cache", "zero"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--plan-cache takes"));

    let out = base(&["--engine", "chase", "--threads", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads does not apply"));

    let out = base(&["--engine", "stream", "--threads", "2"]);
    assert_eq!(out.status.code(), Some(2));

    let out = base(&["--engine", "warp"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));

    let out = base(&["--threads", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads takes"));
}

/// GOOD_RULES plus one rule whose evidence never occurs in TRAVEL_CSV —
/// the attribution profiler must rank it last and flag it as unfired.
const RULES_WITH_UNFIRED: &str = r#"
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
IF country = "Canada" AND capital IN {"Toronto"} THEN capital := "Ottawa"
IF capital = "Tokyo" AND city = "Tokyo" AND conf = "ICDE" AND country IN {"China"} THEN country := "Japan"
IF country = "Atlantis" AND capital IN {"Poseidonia"} THEN capital := "Atlantis City"
"#;

/// `repair --profile` prints a ranked per-rule table and calls out rules
/// that never fired.
#[test]
fn repair_profile_ranks_rules_and_flags_unfired() {
    let dir = tmpdir("profile_table");
    std::fs::write(dir.join("t.csv"), TRAVEL_CSV).unwrap();
    std::fs::write(dir.join("r.frl"), RULES_WITH_UNFIRED).unwrap();
    let out = fixctl(&[
        "repair",
        "--rules",
        dir.join("r.frl").to_str().unwrap(),
        "--data",
        dir.join("t.csv").to_str().unwrap(),
        "--out",
        dir.join("o.csv").to_str().unwrap(),
        "--profile",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rule"), "{stdout}");
    assert!(stdout.contains("applied"), "{stdout}");
    assert!(stdout.contains("never fired: r3"), "{stdout}");
    // Every live rule fires exactly once on the Fig 1 data.
    for rule in ["r0", "r1", "r2"] {
        assert!(stdout.contains(rule), "{stdout}");
    }
}

/// Two identical `--profile-json` runs write byte-identical files, and the
/// JSON never carries wall-clock nanoseconds.
#[test]
fn profile_json_is_byte_deterministic() {
    let dir = tmpdir("profile_json");
    std::fs::write(dir.join("t.csv"), TRAVEL_CSV).unwrap();
    std::fs::write(dir.join("r.frl"), RULES_WITH_UNFIRED).unwrap();
    let run = |tag: &str| {
        let json_path = dir.join(format!("{tag}.json"));
        let out = fixctl(&[
            "repair",
            "--rules",
            dir.join("r.frl").to_str().unwrap(),
            "--data",
            dir.join("t.csv").to_str().unwrap(),
            "--out",
            dir.join(format!("{tag}.csv")).to_str().unwrap(),
            "--engine",
            "compiled",
            "--profile",
            "--profile-json",
            json_path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&json_path).unwrap()
    };
    let first = run("a");
    let second = run("b");
    assert_eq!(first, second, "profile JSON must be byte-deterministic");
    assert!(!first.contains("_ns"), "wall-clock leaked: {first}");
    let doc = obs::json::parse(&first).expect("valid JSON");
    let rules = doc.get("rules").and_then(|r| r.as_arr()).expect("rules");
    assert_eq!(rules.len(), 4);
    // Ranked: the unfired rule sorts last.
    assert_eq!(
        rules[3].get("rule").and_then(|r| r.as_str()),
        Some("r3"),
        "{first}"
    );
    assert_eq!(rules[3].get("applied").and_then(|a| a.as_i64()), Some(0));
    let totals = doc.get("totals").expect("totals");
    assert_eq!(totals.get("applied").and_then(|a| a.as_i64()), Some(3));
}

/// `--expose` serves Prometheus text and the JSON snapshot from a live
/// process; `--expose-hold 1` keeps it up until we have scraped, and
/// `fixctl scrape` validates the exposition end to end.
#[test]
fn expose_serves_prometheus_during_repair() {
    use std::io::BufRead;
    let dir = tmpdir("expose");
    std::fs::write(dir.join("t.csv"), TRAVEL_CSV).unwrap();
    std::fs::write(dir.join("r.frl"), GOOD_RULES).unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_fixctl"))
        .args([
            "repair",
            "--rules",
            dir.join("r.frl").to_str().unwrap(),
            "--data",
            dir.join("t.csv").to_str().unwrap(),
            "--out",
            dir.join("o.csv").to_str().unwrap(),
            "--expose",
            "127.0.0.1:0",
            "--expose-hold",
            "1",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn fixctl");
    // First stdout line announces the resolved ephemeral URL.
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let announce = lines.next().unwrap().unwrap();
    let url = announce
        .strip_prefix("serving metrics on ")
        .unwrap_or_else(|| panic!("unexpected announce line: {announce}"));

    // /healthz first: it does not count as a scrape, so the hold keeps
    // the endpoint alive until the /metrics fetch below satisfies it.
    let base = url.strip_suffix("/metrics").unwrap();
    let (status, body) = obs::http_get(&format!("{base}/healthz")).unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, text) = obs::http_get(url).expect("scrape the live endpoint");
    assert_eq!(status, 200);
    let samples = obs::parse_prometheus(&text).expect("valid exposition");
    assert!(
        samples.iter().any(|s| s.name == "repair_rules_applied"),
        "{text}"
    );

    let exit = child.wait().unwrap();
    assert!(exit.success());
    let rest: Vec<String> = lines.map(|l| l.unwrap()).collect();
    let tail = rest.join("\n");
    assert!(tail.contains("served 1 scrape(s)"), "{tail}");

    // The CLI's own validator agrees with the library parser.
    let exposition = dir.join("metrics.prom");
    std::fs::write(&exposition, &text).unwrap();
    let out = fixctl(&[
        "scrape",
        exposition.to_str().unwrap(),
        "--require",
        "repair_rules_applied",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let out = fixctl(&[
        "scrape",
        exposition.to_str().unwrap(),
        "--require",
        "no_such_metric",
    ]);
    assert_eq!(out.status.code(), Some(1));
}

/// `--expose-hold` without `--expose` is an operational error.
#[test]
fn expose_hold_requires_expose() {
    let dir = tmpdir("expose_hold");
    std::fs::write(dir.join("t.csv"), TRAVEL_CSV).unwrap();
    std::fs::write(dir.join("r.frl"), GOOD_RULES).unwrap();
    let out = fixctl(&[
        "repair",
        "--rules",
        dir.join("r.frl").to_str().unwrap(),
        "--data",
        dir.join("t.csv").to_str().unwrap(),
        "--out",
        dir.join("o.csv").to_str().unwrap(),
        "--expose-hold",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--expose-hold needs --expose"));
}

/// `coverage --lint` joins the runtime profile against the static passes:
/// live rules that never fired are FR007 notes anchored at their spans,
/// while the statically dead rule staying silent produces no finding.
#[test]
fn coverage_lint_reports_unfired_rules() {
    let out = fixctl(&[
        "coverage",
        "--rules",
        &example("lint/dead_redundant.frl"),
        "--data",
        &example("lint/profile_dirty.csv"),
        "--lint",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The profile table came first, then the rustc-style join.
    assert!(stdout.contains("applied"), "{stdout}");
    assert!(stdout.contains("note[FR007]"), "{stdout}");
    assert!(stdout.contains("dead_redundant.frl:2:1"), "{stdout}");
    // The FR002-dead rule stayed silent, so no FR008 mismatch.
    assert!(!stdout.contains("FR008"), "{stdout}");

    // Without --lint only the profile table is printed.
    let out = fixctl(&[
        "coverage",
        "--rules",
        &example("lint/dead_redundant.frl"),
        "--data",
        &example("lint/profile_dirty.csv"),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("never fired"), "{stdout}");
    assert!(!stdout.contains("FR007"), "{stdout}");
}

/// `check` materializes a two-fixpoint witness for reported conflicts and
/// counts it under `consistency.witness_found`.
#[test]
fn check_materializes_conflict_witness() {
    let dir = tmpdir("check_witness");
    let metrics = dir.join("m.json");
    std::fs::write(dir.join("t.csv"), TRAVEL_CSV).unwrap();
    std::fs::write(dir.join("r.frl"), BAD_RULES).unwrap();
    let out = fixctl(&[
        "check",
        "--rules",
        dir.join("r.frl").to_str().unwrap(),
        "--data",
        dir.join("t.csv").to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("witness:"), "{stdout}");
    assert!(stdout.contains("can end as"), "{stdout}");
    let snap = obs::json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let counters = snap.get("counters").expect("counters");
    assert_eq!(
        counters
            .get("consistency.witness_found")
            .and_then(|v| v.as_i64()),
        Some(1)
    );
    assert_eq!(
        counters
            .get("consistency.pairs_checked")
            .and_then(|v| v.as_i64()),
        Some(1)
    );
}

/// `check --threads N` runs the parallel pairwise checker and still finds
/// the (lowest-indexed) conflict.
#[test]
fn parallel_check_finds_conflict() {
    let dir = tmpdir("par_check");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, BAD_RULES).unwrap();
    let out = fixctl(&[
        "check",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--threads",
        "4",
    ]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("INCONSISTENT"), "{stdout}");
    assert!(stdout.contains("[0] vs [1]"), "{stdout}");
}

// ---- scrape --require with labeled series -------------------------------

const LABELED_EXPOSITION: &str = "\
# TYPE http_requests counter
http_requests{endpoint=\"repair\",status=\"200\"} 3
http_requests{endpoint=\"readyz\",status=\"503\"} 1
# TYPE up gauge
up 1
";

#[test]
fn scrape_require_matches_labeled_series() {
    let dir = tmpdir("scrape_labeled");
    let file = dir.join("metrics.prom");
    std::fs::write(&file, LABELED_EXPOSITION).unwrap();
    let path = file.to_str().unwrap();
    // Bare names still work.
    let out = fixctl(&["scrape", path, "--require", "up"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // A labeled series matches regardless of label order, with the
    // registry's dotted name spelling.
    for required in [
        "http_requests{endpoint=\"repair\",status=\"200\"}",
        "http_requests{status=\"200\",endpoint=\"repair\"}",
        "http.requests{endpoint=\"repair\"}",
    ] {
        let out = fixctl(&["scrape", path, "--require", required]);
        assert!(
            out.status.success(),
            "--require {required}: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        assert!(String::from_utf8_lossy(&out.stdout).contains("present"));
    }
}

#[test]
fn scrape_require_rejects_absent_or_malformed_series() {
    let dir = tmpdir("scrape_labeled_miss");
    let file = dir.join("metrics.prom");
    std::fs::write(&file, LABELED_EXPOSITION).unwrap();
    let path = file.to_str().unwrap();
    // Right name, wrong label value: missing (exit 1).
    let out = fixctl(&[
        "scrape",
        path,
        "--require",
        "http_requests{endpoint=\"nope\"}",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("missing"));
    // Label subset must sit on ONE sample: endpoint from one series plus
    // status from another does not count.
    let out = fixctl(&[
        "scrape",
        path,
        "--require",
        "http_requests{endpoint=\"repair\",status=\"503\"}",
    ]);
    assert_eq!(out.status.code(), Some(1));
    // Malformed label block: operational error (exit 2).
    let out = fixctl(&[
        "scrape",
        path,
        "--require",
        "http_requests{endpoint=repair}",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --require"));
}

// ---- fixctl serve / client ----------------------------------------------

const HOSP_RULES: &str = r#"
IF zip = "36545" AND city IN {"Jackson Heights", "Jaxon"} THEN city := "Jackson"
IF zip = "36545" AND state IN {"AK"} THEN state := "AL"
"#;

/// Spawn `fixctl serve` in the background and parse the bound address off
/// its first stdout line. Returns the child, `host:port`, and the live
/// stdout reader (kept open so the daemon's final prints don't EPIPE).
fn spawn_serve(
    args: &[&str],
) -> (
    std::process::Child,
    String,
    std::io::BufReader<std::process::ChildStdout>,
) {
    use std::io::{BufRead, BufReader};
    let mut child = Command::new(env!("CARGO_BIN_EXE_fixctl"))
        .arg("serve")
        .args(args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn fixctl serve");
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("fixd listening on http://")
        .unwrap_or_else(|| panic!("unexpected serve banner {line:?}"))
        .to_string();
    (child, addr, reader)
}

#[test]
fn serve_and_client_roundtrip_with_journal() {
    let dir = tmpdir("serve_roundtrip");
    let rules = dir.join("r.frl");
    let batch = dir.join("rows.csv");
    let journal = dir.join("journal.jsonl");
    std::fs::write(&rules, HOSP_RULES).unwrap();
    std::fs::write(&batch, "zip,city,state\n36545,Jaxon,AK\n").unwrap();
    let (mut child, addr, _serve_stdout) = spawn_serve(&[
        "--rules",
        rules.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
        "--threads",
        "2",
    ]);

    // Repair a batch through the client; the response carries the fixes.
    let out = fixctl(&["client", "repair", batch.to_str().unwrap(), "--addr", &addr]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(body.contains("Jackson"), "{body}");
    assert!(body.contains("\"trace_id\""), "{body}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("trace id: "),
        "client should surface the X-Trace-Id header"
    );

    // After one repair the cache is warm and readiness is green.
    let out = fixctl(&["client", "get", "/readyz", "--addr", &addr]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"ready\":true"));

    // The live exposition satisfies a labeled --require.
    let out = fixctl(&[
        "scrape",
        &format!("http://{addr}/metrics"),
        "--require",
        "http.requests{endpoint=\"repair\",status=\"200\"}",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // check is a dry run against the same daemon.
    let out = fixctl(&["client", "check", batch.to_str().unwrap(), "--addr", &addr]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"dirty_rows\":1"));

    // Graceful shutdown: 202, the process exits 0, the journal parses.
    let out = fixctl(&["client", "shutdown", "--addr", &addr]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("draining"));
    let status = child.wait().unwrap();
    assert!(status.success());
    let text = std::fs::read_to_string(&journal).unwrap();
    let records = obs::trace::parse_jsonl(&text).unwrap();
    assert!(records.iter().any(|r| r.name == "request"));
}

#[test]
fn client_surfaces_daemon_errors_as_exit_one() {
    let dir = tmpdir("serve_client_errors");
    let rules = dir.join("r.frl");
    let bad = dir.join("bad.csv");
    std::fs::write(&rules, HOSP_RULES).unwrap();
    std::fs::write(&bad, "zip,nope\n1,2\n").unwrap();
    let (mut child, addr, _serve_stdout) = spawn_serve(&["--rules", rules.to_str().unwrap()]);
    let out = fixctl(&["client", "repair", bad.to_str().unwrap(), "--addr", &addr]);
    assert_eq!(out.status.code(), Some(1), "daemon 4xx maps to exit 1");
    assert!(String::from_utf8_lossy(&out.stdout).contains("error"));
    // Cold cache: readiness is red, and the client reports it.
    let out = fixctl(&["client", "get", "/readyz", "--addr", &addr]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"cache_warm\":false"));
    let out = fixctl(&["client", "shutdown", "--addr", &addr]);
    assert!(out.status.success());
    assert!(child.wait().unwrap().success());
}

#[test]
fn stream_quality_window_prints_a_deterministic_table() {
    let dir = tmpdir("quality_stream");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let mut runs = Vec::new();
    for tag in ["a", "b"] {
        let out_path = dir.join(format!("{tag}.csv"));
        let snap_path = dir.join(format!("{tag}.json"));
        let out = fixctl(&[
            "repair",
            "--rules",
            rules.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
            "--engine",
            "stream",
            "--quality-window",
            "2",
            "--quality-json",
            snap_path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(stdout.contains("window"), "missing table header: {stdout}");
        assert!(stdout.contains("capital"), "missing attr rows: {stdout}");
        // Drop the `wrote <path>` line — the paths differ by run tag.
        let table: String = stdout
            .lines()
            .filter(|l| !l.starts_with("wrote "))
            .map(|l| format!("{l}\n"))
            .collect();
        runs.push((table, std::fs::read_to_string(&snap_path).unwrap()));
    }
    // Both the printed table and the JSON snapshot are byte-identical
    // across runs — the CI cmp gate depends on this.
    assert_eq!(runs[0], runs[1]);
    // 4 rows through 2-row windows: both sealed windows are in history.
    let snapshot = runs[0].1.clone();
    assert!(snapshot.contains("\"clock\": 2"), "two sealed windows");
}

#[test]
fn quality_command_renders_snapshots_and_gates_on_alerts() {
    let dir = tmpdir("quality_cmd");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    let out_path = dir.join("out.csv");
    let snap_path = dir.join("snap.json");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    // Half the rows in each window repair `capital`, so a 10% repair-rate
    // threshold is guaranteed to fire.
    let out = fixctl(&[
        "repair",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        out_path.to_str().unwrap(),
        "--engine",
        "stream",
        "--quality-window",
        "2",
        "--quality-alert",
        "repair_rate>0.1",
        "--quality-json",
        snap_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("alert:"));

    // Plain rendering succeeds and shows the window table.
    let out = fixctl(&["quality", snap_path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.starts_with("quality: clock 2"), "header: {stdout}");
    assert!(stdout.contains("active alert:"), "alerts: {stdout}");

    // `--window 1` trims the table to the newest sealed window.
    let out = fixctl(&["quality", snap_path.to_str().unwrap(), "--window", "1"]);
    let trimmed = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(trimmed.matches("capital").count() < stdout.matches("capital").count());

    // `--require-green` turns the active alert into exit status 1.
    let out = fixctl(&["quality", snap_path.to_str().unwrap(), "--require-green"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("active alert(s)"));
}

#[test]
fn quality_window_rejects_non_stream_engines() {
    let dir = tmpdir("quality_engine");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let out = fixctl(&[
        "repair",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        dir.join("out.csv").to_str().unwrap(),
        "--engine",
        "lrepair",
        "--quality-window",
        "4",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("stream engine"));
}
