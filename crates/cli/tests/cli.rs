//! End-to-end tests driving the `fixctl` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fixctl"))
        .args(args)
        .output()
        .expect("spawn fixctl")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fixctl_test_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const TRAVEL_CSV: &str = "\
name,country,capital,city,conf
George,China,Beijing,Beijing,SIGMOD
Ian,China,Shanghai,Hongkong,ICDE
Peter,China,Tokyo,Tokyo,ICDE
Mike,Canada,Toronto,Toronto,VLDB
";

const GOOD_RULES: &str = r#"
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
IF country = "Canada" AND capital IN {"Toronto"} THEN capital := "Ottawa"
IF capital = "Tokyo" AND city = "Tokyo" AND conf = "ICDE" AND country IN {"China"} THEN country := "Japan"
"#;

const BAD_RULES: &str = r#"
IF country = "China" AND capital IN {"Shanghai", "Hongkong", "Tokyo"} THEN capital := "Beijing"
IF capital = "Tokyo" AND city = "Tokyo" AND conf = "ICDE" AND country IN {"China"} THEN country := "Japan"
"#;

#[test]
fn check_accepts_consistent_rules() {
    let dir = tmpdir("check_ok");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let out = fixctl(&[
        "check",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("consistent ✓"));
}

#[test]
fn check_rejects_inconsistent_rules_with_nonzero_exit() {
    let dir = tmpdir("check_bad");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, BAD_RULES).unwrap();
    let out = fixctl(&[
        "check",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("INCONSISTENT"));
}

#[test]
fn resolve_then_repair_round_trip() {
    let dir = tmpdir("resolve_repair");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    let fixed_rules = dir.join("fixed.frl");
    let repaired = dir.join("repaired.csv");
    let log = dir.join("updates.csv");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, BAD_RULES).unwrap();

    let out = fixctl(&[
        "resolve",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        fixed_rules.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = fixctl(&[
        "repair",
        "--rules",
        fixed_rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        repaired.to_str().unwrap(),
        "--updates-log",
        log.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read_to_string(&repaired).unwrap();
    // r3 repaired to Japan (φ'1 lost Tokyo in resolution, φ3 wins).
    assert!(csv.contains("Peter,Japan,Tokyo,Tokyo,ICDE"), "{csv}");
    let log_text = std::fs::read_to_string(&log).unwrap();
    assert!(log_text.starts_with("row,attribute,old,new,rule"));
    assert!(log_text.contains("country,China,Japan"));
}

#[test]
fn repair_refuses_inconsistent_rules() {
    let dir = tmpdir("repair_refuse");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, BAD_RULES).unwrap();
    let out = fixctl(&[
        "repair",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        dir.join("x.csv").to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("resolve"));
}

#[test]
fn stream_algo_matches_lrepair() {
    let dir = tmpdir("stream");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let mut outputs = Vec::new();
    for algo in ["lrepair", "stream"] {
        let out_path = dir.join(format!("{algo}.csv"));
        let out = fixctl(&[
            "repair",
            "--rules",
            rules.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
            "--algo",
            algo,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push(std::fs::read_to_string(&out_path).unwrap());
    }
    assert_eq!(outputs[0], outputs[1]);
}

#[test]
fn crepair_algo_matches_lrepair() {
    let dir = tmpdir("algos");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let mut outputs = Vec::new();
    for algo in ["lrepair", "crepair"] {
        let out_path = dir.join(format!("{algo}.csv"));
        let out = fixctl(&[
            "repair",
            "--rules",
            rules.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
            "--algo",
            algo,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push(std::fs::read_to_string(&out_path).unwrap());
    }
    assert_eq!(outputs[0], outputs[1]);
}

#[test]
fn stats_reports_rule_shape() {
    let dir = tmpdir("stats");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let out = fixctl(&[
        "stats",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rules:  3"));
    assert!(stdout.contains("capital"));
}

#[test]
fn detect_explains_without_writing() {
    let dir = tmpdir("detect");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let before = std::fs::read_to_string(&data).unwrap();
    let out = fixctl(&[
        "detect",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 planned update(s)"), "{stdout}");
    assert!(stdout.contains("known wrong value given"), "{stdout}");
    // Data untouched.
    assert_eq!(before, std::fs::read_to_string(&data).unwrap());
}

#[test]
fn convert_to_json_and_back() {
    let dir = tmpdir("convert");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    let json = dir.join("r.json");
    let frl2 = dir.join("r2.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let out = fixctl(&[
        "convert",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        json.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&json).unwrap();
    assert!(doc.contains("\"relation\""));
    assert!(doc.contains("Beijing"));
    // Round-trip frl -> frl is a normalization pass.
    let out = fixctl(&[
        "convert",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        frl2.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&frl2).unwrap();
    assert!(text.contains("THEN capital := \"Beijing\""));
}

#[test]
fn discover_learns_rules_from_redundant_data() {
    let dir = tmpdir("discover");
    let data = dir.join("t.csv");
    let fds = dir.join("fds.txt");
    let out_rules = dir.join("learned.frl");
    // Redundant country→capital data with one lone dissenter.
    let mut csv = String::from("country,capital\n");
    for _ in 0..5 {
        csv.push_str("China,Beijing\n");
    }
    csv.push_str("China,Shanghai\n");
    for _ in 0..4 {
        csv.push_str("Canada,Ottawa\n");
    }
    csv.push_str("Canada,Toronto\n");
    std::fs::write(&data, csv).unwrap();
    std::fs::write(&fds, "country -> capital\n").unwrap();
    let out = fixctl(&[
        "discover",
        "--data",
        data.to_str().unwrap(),
        "--fds",
        fds.to_str().unwrap(),
        "--out",
        out_rules.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&out_rules).unwrap();
    assert!(text.contains("THEN capital := \"Beijing\""), "{text}");
    assert!(text.contains("THEN capital := \"Ottawa\""), "{text}");
    // The learned rules repair the data they were learned from.
    let repaired = dir.join("repaired.csv");
    let out = fixctl(&[
        "repair",
        "--rules",
        out_rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        repaired.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let fixed = std::fs::read_to_string(&repaired).unwrap();
    assert!(!fixed.contains("Shanghai"));
    assert!(!fixed.contains("Toronto"));
}

#[test]
fn missing_flags_produce_usage_errors() {
    let out = fixctl(&["repair", "--data", "/nonexistent.csv"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--rules"));
    let out = fixctl(&["frobnicate"]);
    assert!(!out.status.success());
    let out = fixctl(&[]);
    assert!(!out.status.success());
}

#[test]
fn bad_rule_file_reports_line() {
    let dir = tmpdir("bad_rule");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(
        &rules,
        "IF country = \"China\" THEN capital := \"Beijing\"\n",
    )
    .unwrap();
    let out = fixctl(&[
        "check",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 1"));
}

/// `--metrics` on the paper's Fig 1–3 running example: the snapshot must be
/// parseable JSON carrying per-stage timings and pipeline counters with the
/// documented names and the exact values the example implies (three dirty
/// tuples out of four, one update each, three rule pairs checked).
#[test]
fn metrics_flag_emits_stage_timings_and_counters() {
    let dir = tmpdir("metrics");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    let repaired = dir.join("repaired.csv");
    let metrics = dir.join("metrics.json");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();

    let out = fixctl(&[
        "repair",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--out",
        repaired.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
        "--log",
        "info",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Structured logging rode along: stage events as key=value lines.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("level=info event=load.done"), "{stderr}");
    assert!(stderr.contains("event=repair.done"), "{stderr}");
    assert!(stderr.contains("algo=lrepair"), "{stderr}");

    let text = std::fs::read_to_string(&metrics).unwrap();
    let snap = obs::json::parse(&text).expect("metrics file is valid JSON");

    // Per-stage wall-clock histograms, one sample per stage.
    let histograms = snap.get("histograms").expect("histograms section");
    for stage in [
        "stage.load_ns",
        "stage.consistency_check_ns",
        "stage.index_build_ns",
        "stage.repair_ns",
        "stage.write_ns",
    ] {
        let h = histograms
            .get(stage)
            .unwrap_or_else(|| panic!("missing stage histogram {stage}"));
        assert_eq!(h.get("count").unwrap().as_i64(), Some(1), "{stage}");
        for key in ["sum", "max", "p50", "p95", "p99"] {
            assert!(h.get(key).is_some(), "{stage} missing {key}");
        }
    }

    // Pipeline counters: Ian and Mike get a capital fix, Peter a country
    // fix; George is already clean. Three rules => three pairs checked.
    let counters = snap.get("counters").expect("counters section");
    let get = |name: &str| {
        counters
            .get(name)
            .and_then(|v| v.as_i64())
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(get("repair.tuples"), 4);
    assert_eq!(get("repair.tuples_touched"), 3);
    assert_eq!(get("repair.updates"), 3);
    assert_eq!(get("repair.rules_applied"), 3);
    assert_eq!(get("consistency.pairs_checked"), 3);
    assert!(get("repair.index.probes") > 0);

    // The repair itself still happened.
    let csv = std::fs::read_to_string(&repaired).unwrap();
    assert!(csv.contains("Ian,China,Beijing,Hongkong,ICDE"), "{csv}");
    assert!(csv.contains("Peter,Japan,Tokyo,Tokyo,ICDE"), "{csv}");
    assert!(csv.contains("Mike,Canada,Ottawa,Toronto,VLDB"), "{csv}");
}

fn example(rel: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join(rel)
        .to_str()
        .unwrap()
        .to_string()
}

#[test]
fn lint_reports_conflict_with_stable_code_and_span() {
    let out = fixctl(&["lint", &example("lint/conflicting.frl")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[FR001]"), "{stdout}");
    assert!(stdout.contains("conflicting.frl:3:1"), "{stdout}");
    assert!(stdout.contains("witness tuple:"), "{stdout}");
    assert!(stdout.contains("1 error(s)"), "{stdout}");
}

#[test]
fn lint_warnings_exit_zero_unless_denied() {
    let path = example("lint/dead_redundant.frl");
    let out = fixctl(&["lint", &path]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("warning[FR002]"), "{stdout}");
    assert!(stdout.contains("dead_redundant.frl:4:1"), "{stdout}");
    assert!(stdout.contains("warning[FR003]"), "{stdout}");
    assert!(stdout.contains("dead_redundant.frl:5:1"), "{stdout}");
    assert!(stdout.contains("warning[FR004]"), "{stdout}");

    let out = fixctl(&["lint", &path, "--deny", "warnings"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn lint_deny_specific_code_is_fatal() {
    let path = example("lint/dead_redundant.frl");
    let out = fixctl(&["lint", &path, "--deny", "FR002"]);
    assert_eq!(out.status.code(), Some(1));
    // Denying a code that never fires stays clean.
    let out = fixctl(&["lint", &path, "--deny", "FR001"]);
    assert_eq!(out.status.code(), Some(0));
    // Unknown codes are an operational error, not a lint result.
    let out = fixctl(&["lint", &path, "--deny", "FR999"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn lint_good_rulesets_are_clean() {
    for rel in ["rulesets/travel.frl", "rulesets/hosp_zip.frl"] {
        let out = fixctl(&["lint", &example(rel), "--deny", "warnings"]);
        assert_eq!(out.status.code(), Some(0), "{rel} should lint clean");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("0 error(s), 0 warning(s)"), "{stdout}");
    }
}

#[test]
fn lint_json_is_deterministic_and_parses() {
    let path = example("lint/dead_redundant.frl");
    let first = fixctl(&["lint", &path, "--format", "json"]);
    let second = fixctl(&["lint", &path, "--format", "json"]);
    assert_eq!(first.stdout, second.stdout, "JSON output must be stable");
    let doc = obs::json::parse(&String::from_utf8_lossy(&first.stdout)).expect("valid JSON");
    let findings = doc
        .get("findings")
        .and_then(|f| f.as_arr())
        .expect("findings array");
    let codes: Vec<_> = findings
        .iter()
        .map(|f| f.get("code").and_then(|c| c.as_str()).unwrap())
        .collect();
    assert_eq!(codes, ["FR002", "FR003", "FR004", "FR004"]);
    let summary = doc.get("summary").expect("summary");
    assert_eq!(summary.get("warnings").unwrap().as_i64(), Some(4));
    assert_eq!(summary.get("errors").unwrap().as_i64(), Some(0));
}

#[test]
fn lint_parse_error_is_fr000() {
    let dir = tmpdir("lint_parse");
    let rules = dir.join("broken.frl");
    std::fs::write(&rules, "IF country = \"China\" capital := \"Beijing\"\n").unwrap();
    let out = fixctl(&["lint", rules.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[FR000]"), "{stdout}");
    assert!(stdout.contains("broken.frl:1:"), "{stdout}");
}

#[test]
fn lint_counts_findings_in_metrics() {
    let dir = tmpdir("lint_metrics");
    let metrics = dir.join("m.json");
    let out = fixctl(&[
        "lint",
        &example("lint/dead_redundant.frl"),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let snap = obs::json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let counters = snap.get("counters").expect("counters");
    assert_eq!(counters.get("lint.findings").unwrap().as_i64(), Some(4));
    assert_eq!(
        counters.get("lint.findings.FR002").unwrap().as_i64(),
        Some(1)
    );
    assert_eq!(
        counters.get("lint.severity.warning").unwrap().as_i64(),
        Some(4)
    );
}

/// `--metrics` without `--log` still writes the snapshot; `--log off` (the
/// default) emits nothing on stderr beyond the usual human summary.
#[test]
fn metrics_without_log_is_quiet() {
    let dir = tmpdir("metrics_quiet");
    let data = dir.join("t.csv");
    let rules = dir.join("r.frl");
    let metrics = dir.join("m.json");
    std::fs::write(&data, TRAVEL_CSV).unwrap();
    std::fs::write(&rules, GOOD_RULES).unwrap();
    let out = fixctl(&[
        "check",
        "--rules",
        rules.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!String::from_utf8_lossy(&out.stderr).contains("level="));
    let snap = obs::json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert!(snap.get("counters").is_some());
    assert!(snap.get("gauges").is_some());
    assert!(snap.get("histograms").is_some());
}
