//! `fixctl` — repair CSV data with fixing rules from the command line.
//!
//! ```text
//! fixctl lint    rules.frl [--deny warnings] [--format json]
//!                                                         # static analysis (fixlint)
//! fixctl check   --rules rules.frl --data data.csv        # consistency report
//! fixctl resolve --rules rules.frl --data data.csv --out fixed_rules.frl
//!                [--strategy shrink|drop]                 # §5.3 workflow
//! fixctl repair  --rules rules.frl --data dirty.csv --out repaired.csv
//!                [--engine lrepair|chase|compiled|compiled-chase|columnar|columnar-chase|stream]
//!                [--plan-cache on|off|CAPACITY] [--threads N]
//!                [--updates-log updates.csv]
//!                [--trace trace.jsonl]                    # provenance journal
//! fixctl stats   --rules rules.frl --data data.csv        # rule-set statistics
//! fixctl explain trace.jsonl --row R --attr A             # why did this cell change?
//! fixctl trace export trace.jsonl --chrome out.json       # Perfetto-viewable timeline
//! fixctl coverage --rules rules.frl --data data.csv [--lint]
//!                                                         # per-rule attribution profile,
//!                                                         # joined against the linter
//! fixctl serve-metrics [--addr 127.0.0.1:0] [--scrapes N] # standalone scrape endpoint
//! fixctl scrape http://HOST:PORT/metrics [--require NAME] # fetch + validate exposition
//!                                                         # NAME may be a labeled series:
//!                                                         #   http.requests{endpoint="repair"}
//! fixctl quality http://HOST:PORT [--window W]            # repair-quality window table
//!                [--require-green]                        # (also reads a snapshot file;
//!                                                         #  exit 1 on active alerts)
//! fixctl serve  --rules rules.frl [--addr 127.0.0.1:0]    # long-running repair daemon
//!               [--threads N] [--engine chase|linear] [--schema a,b,c]
//!               [--warm data.csv] [--journal trace.jsonl] [--cache-shards N]
//!               [--slo-window N] [--slo-min-samples N]
//!               [--slo-max-error-rate F] [--slo-max-p99-ms N]
//!               [--trace-sample N] [--quality-window N]
//!               [--quality-alert drift>0.5,repair_rate:city>0.25] [--quality-gate]
//! fixctl client repair rows.csv --addr HOST:PORT [--format csv]
//! fixctl client check  rows.csv --addr HOST:PORT          # dry run, nothing recorded
//! fixctl client get    /readyz  --addr HOST:PORT          # any GET endpoint
//! fixctl client shutdown        --addr HOST:PORT          # graceful drain
//! ```
//!
//! `repair` additionally takes the profiling/exposition flags:
//!
//! * `--profile` — print a ranked per-rule attribution table after the run;
//! * `--profile-json FILE` — write the profile as deterministic JSON (counts
//!   only, no wall-clock: two identical runs are byte-identical);
//! * `--expose ADDR` — serve `GET /metrics` (Prometheus text format),
//!   `/metrics.json`, and `/healthz` from the live registry during the run;
//! * `--expose-hold N` — keep the process (and endpoint) alive after the
//!   repair until `N` scrapes have been served, then shut down.
//!
//! Every command also takes the observability flags:
//!
//! * `--metrics <path>` — write a deterministic JSON snapshot of per-stage
//!   timings (`stage.*_ns` histograms) and pipeline counters
//!   (`repair.rules_applied`, `repair.tuples_touched`,
//!   `consistency.conflicts`, ...; see [`obs::METRIC_NAMES`]).
//! * `--log <off|info|debug>` — structured `key=value` progress lines on
//!   stderr.
//! * `--trace <path>` — append-only JSONL journal of stage spans plus, for
//!   `repair`, the full provenance ledger (one `repair.cell` event per
//!   fix, with rule, evidence bindings, and assured-set delta).
//!   `--trace-clock logical|wall` picks timestamps: `logical` (default)
//!   is byte-deterministic across runs, `wall` records microseconds.
//!
//! The schema is taken from the CSV header; rule files use the
//! [`fixrules::io`] line format:
//!
//! ```text
//! IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
//! ```

use std::collections::HashMap;
use std::io::Write as _;
use std::process::ExitCode;

use fixrules::consistency::resolve::{ensure_consistent, Strategy};
use fixrules::consistency::{
    conflict_witness, enumerate::WILDCARD, is_consistent_characterize_observed,
    is_consistent_parallel_observed, ConsistencyReport,
};
use fixrules::io::{format_rule, format_rules, parse_rules, parse_rules_spanned, Span};
use fixrules::provenance::{ProvenanceLedger, ProvenanceObserver, ProvenanceRecord};
use fixrules::repair::{
    columnar_table_observed, compiled_table_observed, crepair_table_observed,
    lrepair_table_observed, par_columnar_table_observed, par_compiled_table_observed,
    par_lrepair_table_observed, stream_repair_csv_compiled_observed, CompiledEngine, LRepairIndex,
    PlanCache, RepairOutcome, RuleProgram,
};
use fixrules::RuleSet;
use obs::trace::{chrome_trace, parse_jsonl, TracePhase, TraceSpan};
use obs::{
    http_get, parse_prometheus, render_snapshot, AlertRule, AttributionObserver, Json,
    MetricsObserver, MetricsRegistry, MetricsServer, QualityConfig, QualityMonitor, RepairObserver,
    RuleLabel, Tee, TraceClock, TraceJournal,
};
use relation::{ColumnTable, Schema, Symbol, SymbolTable, Table};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("fixctl: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Observability context shared by every command: a metrics registry, the
/// observer the repair drivers report into, an optional trace journal, and
/// where (if anywhere) to dump each at exit.
struct ObsCtx {
    registry: MetricsRegistry,
    observer: MetricsObserver,
    metrics_path: Option<String>,
    journal: Option<TraceJournal>,
    trace_path: Option<String>,
}

/// Compound stage guard from [`ObsCtx::span`]: a metrics span timer plus,
/// when `--trace` is active, a matching journal span. Both close on drop.
struct StageSpan<'a> {
    _timer: obs::SpanTimer,
    _trace: Option<TraceSpan<'a>>,
}

impl ObsCtx {
    fn from_flags(flags: &Flags) -> Result<ObsCtx, String> {
        if let Some(level) = flags.optional("log") {
            obs::log::set_level(level.parse()?);
        }
        let registry = MetricsRegistry::new();
        let observer = MetricsObserver::new(&registry);
        let (journal, trace_path) = match flags.optional("trace") {
            Some(path) => {
                let clock = match flags.optional("trace-clock") {
                    Some(c) => c.parse::<TraceClock>()?,
                    None => TraceClock::Logical,
                };
                (Some(TraceJournal::new(clock)), Some(path.to_string()))
            }
            None => (None, None),
        };
        Ok(ObsCtx {
            observer,
            metrics_path: flags.optional("metrics").map(str::to_string),
            journal,
            trace_path,
            registry,
        })
    }

    /// Time a named stage; the span records into `stage.<name>_ns` and, when
    /// tracing, opens a `stage.<name>` journal span.
    fn span(&self, stage: &str) -> StageSpan<'_> {
        let name = format!("stage.{stage}");
        StageSpan {
            _timer: self.registry.span(&name),
            _trace: self.journal.as_ref().map(|j| j.span(&name, 0)),
        }
    }

    /// Write the metrics snapshot and trace journal if `--metrics`/`--trace`
    /// were given. Called on both success and failure so partial runs still
    /// leave a trace.
    fn finish(&self) -> Result<(), String> {
        if let Some(path) = &self.metrics_path {
            let snapshot = self.registry.snapshot();
            std::fs::write(path, snapshot.to_string_pretty() + "\n")
                .map_err(|e| format!("writing {path}: {e}"))?;
            obs::info!("metrics.written", path = path);
        }
        if let (Some(journal), Some(path)) = (&self.journal, &self.trace_path) {
            std::fs::write(path, journal.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
            obs::info!("trace.written", path = path, records = journal.len());
        }
        Ok(())
    }
}

struct Flags {
    values: HashMap<String, String>,
}

/// Flags that are plain switches: present or absent, consuming no value.
const SWITCH_FLAGS: &[&str] = &["profile", "lint", "quality-gate", "require-green"];

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut values = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, found `{}`", args[i]))?;
            if SWITCH_FLAGS.contains(&flag) {
                values.insert(flag.to_string(), String::new());
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{flag} needs a value"))?;
            values.insert(flag.to_string(), value.clone());
            i += 2;
        }
        Ok(Flags { values })
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn optional(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// Whether a switch flag (see [`SWITCH_FLAGS`]) was given.
    fn switch(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    // `lint`, `certify` and `explain` take a file as a positional argument
    // (like rustc), `trace` has an `export` subcommand; every other
    // command is pure `--flag value` pairs.
    let (positional, flag_args) = match command.as_str() {
        "lint" | "certify" | "explain" | "scrape" | "quality" => match args.get(1) {
            Some(arg) if !arg.starts_with("--") => (Some(arg.as_str()), &args[2..]),
            _ => (None, &args[1..]),
        },
        "client" => {
            match args.get(1).map(String::as_str) {
                Some("repair" | "check" | "get" | "rules" | "shutdown") => {}
                _ => {
                    return Err("unknown client subcommand (expected `fixctl client \
                         <repair|check|get|rules|shutdown> ... --addr HOST:PORT`)"
                        .to_string())
                }
            }
            match args.get(2) {
                Some(arg) if !arg.starts_with("--") => (Some(arg.as_str()), &args[3..]),
                _ => (None, &args[2..]),
            }
        }
        "trace" => {
            if args.get(1).map(String::as_str) != Some("export") {
                return Err(
                    "unknown trace subcommand (expected `fixctl trace export <trace.jsonl> \
                     --chrome out.json`)"
                        .to_string(),
                );
            }
            match args.get(2) {
                Some(arg) if !arg.starts_with("--") => (Some(arg.as_str()), &args[3..]),
                _ => (None, &args[2..]),
            }
        }
        _ => (None, &args[1..]),
    };
    let flags = Flags::parse(flag_args)?;
    let obs_ctx = ObsCtx::from_flags(&flags)?;
    let result = match command.as_str() {
        "check" => cmd_check(&flags, &obs_ctx).map(|()| ExitCode::SUCCESS),
        "convert" => cmd_convert(&flags, &obs_ctx).map(|()| ExitCode::SUCCESS),
        "coverage" => cmd_coverage(&flags, &obs_ctx).map(|()| ExitCode::SUCCESS),
        "detect" => cmd_detect(&flags, &obs_ctx).map(|()| ExitCode::SUCCESS),
        "discover" => cmd_discover(&flags).map(|()| ExitCode::SUCCESS),
        "explain" => cmd_explain(positional, &flags),
        "lint" => cmd_lint(positional, &flags, &obs_ctx),
        "certify" => cmd_certify(positional, &flags, &obs_ctx),
        "resolve" => cmd_resolve(&flags, &obs_ctx).map(|()| ExitCode::SUCCESS),
        "repair" => cmd_repair(&flags, &obs_ctx).map(|()| ExitCode::SUCCESS),
        "scrape" => cmd_scrape(positional, &flags),
        "quality" => cmd_quality(positional, &flags),
        "serve" => cmd_serve(&flags).map(|()| ExitCode::SUCCESS),
        "client" => cmd_client(args[1].as_str(), positional, &flags),
        "serve-metrics" => cmd_serve_metrics(&flags, &obs_ctx).map(|()| ExitCode::SUCCESS),
        "stats" => cmd_stats(&flags, &obs_ctx).map(|()| ExitCode::SUCCESS),
        "trace" => cmd_trace_export(positional, &flags).map(|()| ExitCode::SUCCESS),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    obs_ctx.finish()?;
    result
}

fn usage() -> String {
    "usage: fixctl <check|detect|discover|resolve|repair|stats|convert> --rules FILE --data FILE.csv \
     [--out FILE] [--engine lrepair|chase|compiled|compiled-chase|columnar|columnar-chase|stream] \
     [--plan-cache on|off|CAPACITY] [--threads N] [--strategy shrink|drop] [--updates-log FILE] \
     [--metrics FILE.json] [--log off|info|debug] [--trace FILE.jsonl] [--trace-clock logical|wall] \
     [--profile] [--profile-json FILE] [--expose ADDR] [--expose-hold N] \
     [--quality-window N] [--quality-alert SPEC,...] [--quality-json FILE] \
     | lint RULES.frl [--schema a,b,c | --data FILE.csv] [--format human|json|sarif] \
     [--deny warnings|FR001,...] \
     | certify RULES.frl [--schema a,b,c | --data FILE.csv] [--format human|json|sarif] \
     [--deny warnings|FR001,...] \
     | coverage --rules FILE --data FILE.csv [--engine lrepair|chase|compiled] [--lint] \
     | serve-metrics [--addr HOST:PORT] [--scrapes N] \
     | serve --rules FILE [--addr HOST:PORT] [--threads N] [--engine chase|linear] \
     [--schema a,b,c] [--warm FILE.csv] [--journal FILE.jsonl] [--cache-shards N] \
     [--slo-window N] [--slo-min-samples N] [--slo-max-error-rate F] [--slo-max-p99-ms N] \
     [--trace-sample N] [--quality-window N] [--quality-alert SPEC,...] [--quality-gate] \
     | client repair|check FILE --addr HOST:PORT [--format csv|json] \
     | client rules RULES.frl --addr HOST:PORT \
     | client get PATH --addr HOST:PORT | client shutdown --addr HOST:PORT \
     | scrape URL|FILE [--require METRIC[{k=\"v\",...}]] \
     | quality URL|SNAPSHOT.json [--window W] [--require-green] \
     | explain TRACE.jsonl --row N --attr NAME \
     | trace export TRACE.jsonl --chrome OUT.json \
     | discover --data FILE.csv --fds FILE --out rules.frl [--min-support N] [--min-confidence F]"
        .to_string()
}

/// Static analysis of a rule file: parse (inferring a schema from the
/// rules themselves unless `--schema`/`--data` provides one), run the
/// `fixlint` passes, and render the findings rustc-style or as JSON.
/// Exit status: 2 on operational errors, 1 when any finding is fatal
/// (errors always; plus whatever `--deny` promotes), 0 otherwise.
fn cmd_lint(positional: Option<&str>, flags: &Flags, obs_ctx: &ObsCtx) -> Result<ExitCode, String> {
    let path = positional
        .or_else(|| flags.optional("rules"))
        .ok_or("lint needs a rules file: fixctl lint <rules.frl>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let deny = match flags.optional("deny") {
        Some(spec) => fixlint::DenyList::parse(spec)?,
        None => fixlint::DenyList::none(),
    };
    let format = flags.optional("format").unwrap_or("human");
    let mut symbols = SymbolTable::new();
    let schema = if let Some(names) = flags.optional("schema") {
        relation::Schema::new("R", names.split(',').map(str::trim)).map_err(|e| e.to_string())?
    } else if let Some(data_path) = flags.optional("data") {
        relation::csv_io::read_csv_file(data_path, "data", &mut symbols)
            .map_err(|e| format!("reading {data_path}: {e}"))?
            .schema()
            .clone()
    } else {
        match fixrules::io::infer_schema(&text, "R") {
            Ok(schema) => schema,
            // An unparseable file still gets a rendered FR000 report below.
            Err(_) => relation::Schema::new("R", ["_"]).map_err(|e| e.to_string())?,
        }
    };
    let report = {
        let _span = obs_ctx.span("lint");
        fixlint::lint_source(
            &text,
            &schema,
            &mut symbols,
            &fixlint::LintOptions::default(),
        )
    };
    report.observe(&obs_ctx.observer);
    obs::info!(
        "lint.done",
        file = path,
        errors = report.errors(),
        warnings = report.warnings(),
        notes = report.notes()
    );
    match format {
        "json" => println!("{}", report.to_json(path).to_string_pretty()),
        "sarif" => println!("{}", fixlint::render_sarif(&report, path)),
        "human" => print!("{}", fixlint::render_report(&report, path, &text)),
        other => return Err(format!("unknown format `{other}` (human|json|sarif)")),
    }
    if report.fatal(&deny) > 0 {
        Ok(ExitCode::from(1))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Whole-set chase certification of a rule file: build the interaction
/// graph (termination), commute every interacting critical pair through
/// the compiled engine (confluence), and render the certificate. Exit
/// status mirrors `lint`: 2 on operational errors, 1 when any finding is
/// fatal under `--deny` (FR009/FR010 are errors, hence always fatal),
/// 0 on a green certificate.
fn cmd_certify(
    positional: Option<&str>,
    flags: &Flags,
    obs_ctx: &ObsCtx,
) -> Result<ExitCode, String> {
    let path = positional
        .or_else(|| flags.optional("rules"))
        .ok_or("certify needs a rules file: fixctl certify <rules.frl>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let deny = match flags.optional("deny") {
        Some(spec) => fixlint::DenyList::parse(spec)?,
        None => fixlint::DenyList::none(),
    };
    let format = flags.optional("format").unwrap_or("human");
    let mut symbols = SymbolTable::new();
    let schema = if let Some(names) = flags.optional("schema") {
        relation::Schema::new("R", names.split(',').map(str::trim)).map_err(|e| e.to_string())?
    } else if let Some(data_path) = flags.optional("data") {
        relation::csv_io::read_csv_file(data_path, "data", &mut symbols)
            .map_err(|e| format!("reading {data_path}: {e}"))?
            .schema()
            .clone()
    } else {
        match fixrules::io::infer_schema(&text, "R") {
            Ok(schema) => schema,
            // An unparseable file still gets a rendered FR000 report below.
            Err(_) => relation::Schema::new("R", ["_"]).map_err(|e| e.to_string())?,
        }
    };
    let cert = {
        let _span = obs_ctx.span("certify");
        match fixrules::io::parse_rules_spanned(&text, &schema, &mut symbols) {
            Ok(parsed) => fixlint::certify_observed(
                &parsed.rules,
                &parsed.spans,
                &symbols,
                &fixlint::CertOptions::default(),
                &obs_ctx.observer,
            ),
            Err(error) => fixlint::Certificate {
                report: fixlint::parse_error_report(&error),
                ..fixlint::Certificate::default()
            },
        }
    };
    cert.observe(&obs_ctx.observer);
    obs::info!(
        "certify.done",
        file = path,
        certified = cert.is_certified(),
        rules = cert.rules,
        pairs = cert.confluence.pairs_checked,
        violations = cert.confluence.violations
    );
    match format {
        "json" => println!("{}", cert.to_json(path).to_string_pretty()),
        "sarif" => println!("{}", fixlint::render_sarif(&cert.report, path)),
        "human" => {
            print!("{}", fixlint::render_report(&cert.report, path, &text));
            let bound = match cert.termination.round_bound {
                Some(b) => format!("round bound {b}"),
                None => "no order-independent round bound".to_string(),
            };
            println!(
                "{path}: {} — {} rule(s), {}, {} pair(s) checked, {} witness run(s), \
                 {} skipped over budget",
                if cert.is_certified() {
                    "certificate GREEN"
                } else {
                    "certificate RED"
                },
                cert.rules,
                bound,
                cert.confluence.pairs_checked,
                cert.confluence.witness_runs,
                cert.confluence.pairs_skipped
            );
        }
        other => return Err(format!("unknown format `{other}` (human|json|sarif)")),
    }
    if cert.report.fatal(&deny) > 0 {
        Ok(ExitCode::from(1))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Convert between the `.frl` line format and the portable JSON document,
/// picking the direction from the output extension.
fn cmd_convert(flags: &Flags, obs_ctx: &ObsCtx) -> Result<(), String> {
    let out = flags.required("out")?;
    let (_table, rules, symbols) = load(flags, obs_ctx)?;
    if out.ends_with(".json") {
        let doc = fixrules::io::to_portable(&rules, &symbols);
        std::fs::write(out, doc.to_json_string()).map_err(|e| format!("writing {out}: {e}"))?;
    } else {
        std::fs::write(out, format_rules(&rules, &symbols))
            .map_err(|e| format!("writing {out}: {e}"))?;
    }
    println!("wrote {out} ({} rules)", rules.len());
    Ok(())
}

/// Discover fixing rules from the data alone (support/confidence over FD
/// groups) and write them as a rule file.
fn cmd_discover(flags: &Flags) -> Result<(), String> {
    let data_path = flags.required("data")?;
    let fds_path = flags.required("fds")?;
    let out = flags.required("out")?;
    let mut symbols = SymbolTable::new();
    let table = relation::csv_io::read_csv_file(data_path, "data", &mut symbols)
        .map_err(|e| format!("reading {data_path}: {e}"))?;
    let fds_text =
        std::fs::read_to_string(fds_path).map_err(|e| format!("reading {fds_path}: {e}"))?;
    let fds = fd::parse::parse_fds(table.schema(), &fds_text)
        .map_err(|e| format!("parsing {fds_path}: {e}"))?;
    let mut config = fixrules::discovery::DiscoveryConfig::default();
    if let Some(s) = flags.optional("min-support") {
        config.min_support = s.parse().map_err(|_| "--min-support N".to_string())?;
    }
    if let Some(c) = flags.optional("min-confidence") {
        config.min_confidence = c.parse().map_err(|_| "--min-confidence F".to_string())?;
    }
    let discovered = fixrules::discovery::discover_all(&table, &fds, config);
    let mut rules = RuleSet::new(table.schema().clone());
    for d in &discovered {
        rules.push(d.rule.clone());
    }
    let log = fixrules::consistency::resolve::ensure_consistent_batch(&mut rules);
    println!(
        "discovered {} rule(s) from {} FD(s); {} resolution action(s) applied",
        rules.len(),
        fds.len(),
        log.actions.len()
    );
    std::fs::write(out, format_rules(&rules, &symbols))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// Audit mode: report and explain every update a repair would apply,
/// without writing anything.
fn cmd_detect(flags: &Flags, obs_ctx: &ObsCtx) -> Result<(), String> {
    let (table, rules, symbols) = load(flags, obs_ctx)?;
    let report = check_consistency_observed(&rules, obs_ctx, threads_flag(flags)?);
    if !report.is_consistent() {
        return Err(format!(
            "rule set has {} conflict(s); run `fixctl resolve` first",
            report.conflicts.len()
        ));
    }
    let index = {
        let _span = obs_ctx.span("index_build");
        LRepairIndex::build(&rules)
    };
    let plan = {
        let _span = obs_ctx.span("detect");
        fixrules::repair::detect_table(&rules, &index, &table)
    };
    println!(
        "{} planned update(s) across {} row(s) of {}",
        plan.total_updates(),
        plan.rows_touched(),
        table.len()
    );
    for u in plan.updates.iter().take(100) {
        println!(
            "  {}",
            fixrules::repair::explain(u, &rules, table.schema(), &symbols)
        );
    }
    if plan.total_updates() > 100 {
        println!("  ... and {} more", plan.total_updates() - 100);
    }
    Ok(())
}

/// Load the CSV (schema from header) and the rule file against it.
fn load(flags: &Flags, obs_ctx: &ObsCtx) -> Result<(Table, RuleSet, SymbolTable), String> {
    let _span = obs_ctx.span("load");
    let data_path = flags.required("data")?;
    let rules_path = flags.required("rules")?;
    let mut symbols = SymbolTable::new();
    let table = relation::csv_io::read_csv_file(data_path, "data", &mut symbols)
        .map_err(|e| format!("reading {data_path}: {e}"))?;
    let text =
        std::fs::read_to_string(rules_path).map_err(|e| format!("reading {rules_path}: {e}"))?;
    let rules = parse_rules(&text, table.schema(), &mut symbols)
        .map_err(|e| format!("parsing {rules_path}: {e}"))?;
    obs::info!(
        "load.done",
        rows = table.len(),
        rules = rules.len(),
        vocab = symbols.len()
    );
    Ok((table, rules, symbols))
}

/// `--threads N` (default 1 = sequential).
fn threads_flag(flags: &Flags) -> Result<usize, String> {
    match flags.optional("threads") {
        Some(t) => t
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| "--threads takes a worker count >= 1".to_string()),
        None => Ok(1),
    }
}

/// `--plan-cache on|off|CAPACITY`; `None` means the flag was absent and the
/// engine's default applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheSpec {
    Off,
    On,
    Bounded(usize),
}

fn plan_cache_flag(flags: &Flags) -> Result<Option<CacheSpec>, String> {
    match flags.optional("plan-cache") {
        None => Ok(None),
        Some("on") => Ok(Some(CacheSpec::On)),
        Some("off") => Ok(Some(CacheSpec::Off)),
        Some(n) => n
            .parse::<usize>()
            .ok()
            .filter(|&c| c >= 1)
            .map(|c| Some(CacheSpec::Bounded(c)))
            .ok_or_else(|| format!("--plan-cache takes on, off, or a capacity >= 1 (got `{n}`)")),
    }
}

/// Build the plan cache an engine run should use: sharded when parallel
/// workers will share it, exact-LRU when a capacity was requested.
fn build_plan_cache(spec: CacheSpec, threads: usize) -> Option<PlanCache> {
    match (spec, threads) {
        (CacheSpec::Off, _) => None,
        (CacheSpec::On, 1) => Some(PlanCache::unbounded()),
        (CacheSpec::On, t) => Some(PlanCache::sharded(t * 4)),
        (CacheSpec::Bounded(c), 1) => Some(PlanCache::bounded_lru(c)),
        (CacheSpec::Bounded(c), t) => Some(PlanCache::sharded_bounded(t * 4, c)),
    }
}

/// Log and print one plan-cache summary line after a cached run.
fn report_plan_cache(cache: &PlanCache) {
    let stats = cache.stats();
    obs::info!(
        "plan_cache.done",
        hits = stats.hits,
        misses = stats.misses,
        evictions = stats.evictions,
        plans = stats.entries
    );
    println!(
        "plan cache: {} hit(s), {} miss(es), {} eviction(s), {} plan(s) held",
        stats.hits, stats.misses, stats.evictions, stats.entries
    );
}

/// Labels for the attribution profiler: rule `i` becomes `r{i}`, tagged
/// with the name of the attribute its fix writes (the rule's B attribute).
fn rule_labels(rules: &RuleSet) -> Vec<RuleLabel> {
    rules
        .iter()
        .map(|(id, rule)| RuleLabel {
            rule: format!("r{}", id.0),
            attr: rules.schema().attr_name(rule.b()).to_string(),
        })
        .collect()
}

/// Build the attribution observer when `--profile` or `--profile-json`
/// asks for one. Latency collection rides on `--profile` (the table shows
/// quantiles); the JSON rendering never includes measured nanoseconds, so
/// `--profile-json` stays byte-deterministic either way.
fn attribution_for(
    flags: &Flags,
    obs_ctx: &ObsCtx,
    rules: &RuleSet,
) -> Option<AttributionObserver> {
    (flags.switch("profile") || flags.optional("profile-json").is_some()).then(|| {
        AttributionObserver::new(&obs_ctx.registry, rule_labels(rules))
            .with_timing(flags.switch("profile"))
    })
}

/// Print/write the per-rule profile after a run, per `--profile` and
/// `--profile-json`.
fn emit_profile(flags: &Flags, attribution: Option<&AttributionObserver>) -> Result<(), String> {
    let Some(attribution) = attribution else {
        return Ok(());
    };
    let profile = attribution.profile();
    if flags.switch("profile") {
        print!("{}", profile.render_table());
    }
    if let Some(path) = flags.optional("profile-json") {
        std::fs::write(path, profile.to_json().to_string_pretty() + "\n")
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `--expose-hold N`: how many scrapes to wait for before shutting the
/// endpoint down after the run.
fn expose_hold_flag(flags: &Flags) -> Result<Option<u64>, String> {
    match flags.optional("expose-hold") {
        None => Ok(None),
        Some(n) => n
            .parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .map(Some)
            .ok_or_else(|| "--expose-hold takes a scrape count >= 1".to_string()),
    }
}

/// `--expose ADDR`: start the scrape endpoint over the shared registry
/// before the repair runs, printing the resolved URL (`:0` binds an
/// ephemeral port) on a flushed line so a harness can scrape mid-run.
fn start_expose(flags: &Flags, obs_ctx: &ObsCtx) -> Result<Option<MetricsServer>, String> {
    let Some(addr) = flags.optional("expose") else {
        if flags.optional("expose-hold").is_some() {
            return Err("--expose-hold needs --expose ADDR".to_string());
        }
        return Ok(None);
    };
    let server = MetricsServer::bind(addr, obs_ctx.registry.clone())
        .map_err(|e| format!("binding {addr}: {e}"))?;
    println!("serving metrics on http://{}/metrics", server.addr());
    std::io::stdout().flush().ok();
    obs::info!("expose.bound", addr = format!("{}", server.addr()));
    Ok(Some(server))
}

/// Honor `--expose-hold`, then stop the endpoint.
fn finish_expose(hold: Option<u64>, server: Option<MetricsServer>) {
    let Some(server) = server else { return };
    if let Some(n) = hold {
        server.wait_for_scrapes(n);
        println!("served {} scrape(s)", server.scrapes());
    }
    server.shutdown();
}

/// The pairwise `isConsist_r` check, timed and fed into the observer;
/// `threads > 1` partitions the pairs across workers (stopping at the
/// lowest-indexed conflict).
fn check_consistency_observed(
    rules: &RuleSet,
    obs_ctx: &ObsCtx,
    threads: usize,
) -> ConsistencyReport {
    let _span = obs_ctx.span("consistency_check");
    let report = if threads > 1 {
        is_consistent_parallel_observed(rules, threads, &obs_ctx.observer)
    } else {
        is_consistent_characterize_observed(rules, usize::MAX, &obs_ctx.observer)
    };
    obs::info!(
        "consistency.done",
        pairs_checked = report.pairs_checked,
        conflicts = report.conflicts.len()
    );
    report
}

fn cmd_check(flags: &Flags, obs_ctx: &ObsCtx) -> Result<(), String> {
    let (_table, rules, symbols) = load(flags, obs_ctx)?;
    let report = check_consistency_observed(&rules, obs_ctx, threads_flag(flags)?);
    println!(
        "{} rules, size(Σ) = {}, {} pairs checked",
        rules.len(),
        rules.size(),
        report.pairs_checked
    );
    if report.is_consistent() {
        println!("consistent ✓");
        Ok(())
    } else {
        println!(
            "INCONSISTENT — {} conflicting pair(s):",
            report.conflicts.len()
        );
        for c in report.conflicts.iter().take(20) {
            println!("  [{}] vs [{}]  ({:?})", c.first.0, c.second.0, c.case);
            println!(
                "    {}",
                rules.rule(c.first).display(rules.schema(), &symbols)
            );
            println!(
                "    {}",
                rules.rule(c.second).display(rules.schema(), &symbols)
            );
            // Materialize a concrete two-fixpoint witness when the pair's
            // candidate space is small enough; each one is counted in the
            // `consistency.witness_found` metric.
            if let Some(w) = conflict_witness(&rules, c, 4096) {
                obs_ctx.observer.witness_found();
                println!(
                    "    witness: ({}) can end as ({}) or ({})",
                    render_tuple(&w.tuple, &symbols),
                    render_tuple(&w.fixes[0], &symbols),
                    render_tuple(&w.fixes[1], &symbols)
                );
            }
        }
        if report.conflicts.len() > 20 {
            println!("  ... and {} more", report.conflicts.len() - 20);
        }
        Err("rule set is inconsistent (run `fixctl resolve`)".into())
    }
}

/// Render a witness tuple; attributes unconstrained by either rule hold
/// the enumeration wildcard and print as `_`.
fn render_tuple(tuple: &[Symbol], symbols: &SymbolTable) -> String {
    tuple
        .iter()
        .map(|&s| {
            if s == WILDCARD {
                "_".to_string()
            } else {
                format!("\"{}\"", symbols.resolve(s))
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Run a repair with the attribution profiler attached and print the
/// ranked per-rule table; with `--lint`, join the runtime profile against
/// the static analysis (FR007: live rule that never fired; FR008: rule
/// flagged dead that did fire) and render the findings rustc-style.
fn cmd_coverage(flags: &Flags, obs_ctx: &ObsCtx) -> Result<(), String> {
    let data_path = flags.required("data")?;
    let rules_path = flags.required("rules")?;
    let mut symbols = SymbolTable::new();
    let mut table = {
        let _span = obs_ctx.span("load");
        relation::csv_io::read_csv_file(data_path, "data", &mut symbols)
            .map_err(|e| format!("reading {data_path}: {e}"))?
    };
    let text =
        std::fs::read_to_string(rules_path).map_err(|e| format!("reading {rules_path}: {e}"))?;
    let parsed = parse_rules_spanned(&text, table.schema(), &mut symbols)
        .map_err(|e| format!("parsing {rules_path}: {e}"))?;
    let rules = parsed.rules;
    let report = check_consistency_observed(&rules, obs_ctx, 1);
    if !report.is_consistent() {
        return Err(format!(
            "rule set has {} conflict(s); run `fixctl resolve` first",
            report.conflicts.len()
        ));
    }
    let attribution =
        AttributionObserver::new(&obs_ctx.registry, rule_labels(&rules)).with_timing(true);
    let observer = Tee(&obs_ctx.observer, &attribution);
    let engine = flags.optional("engine").unwrap_or("lrepair");
    {
        let _span = obs_ctx.span("repair");
        match engine {
            "lrepair" => {
                let index = LRepairIndex::build(&rules);
                lrepair_table_observed(&rules, &index, &mut table, &observer);
            }
            "crepair" | "chase" => {
                crepair_table_observed(&rules, &mut table, &observer);
            }
            "compiled" | "compiled-chase" => {
                let kind = if engine == "compiled" {
                    CompiledEngine::Linear
                } else {
                    CompiledEngine::Chase
                };
                let program = RuleProgram::compile(&rules);
                compiled_table_observed(&rules, &program, kind, None, &mut table, &observer);
            }
            other => {
                return Err(format!(
                    "unknown engine `{other}` (lrepair|chase|crepair|compiled|compiled-chase)"
                ))
            }
        }
    }
    let profile = attribution.profile();
    print!("{}", profile.render_table());
    if let Some(path) = flags.optional("profile-json") {
        std::fs::write(path, profile.to_json().to_string_pretty() + "\n")
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if flags.switch("lint") {
        let lint_report = fixlint::lint(
            &rules,
            &parsed.spans,
            &symbols,
            &fixlint::LintOptions::default(),
        );
        // Rows carry the `r{i}` labels built above; fold them back into
        // rule-id order for the join (the catch-all row has no id).
        let mut activity = vec![fixlint::RuleActivity::default(); rules.len()];
        for row in &profile.rows {
            if let Some(i) = row
                .rule
                .strip_prefix('r')
                .and_then(|s| s.parse::<usize>().ok())
            {
                if let Some(slot) = activity.get_mut(i) {
                    slot.applied = row.applied;
                    slot.rejected = row.rejected;
                }
            }
        }
        let coverage = fixlint::coverage_join(&lint_report, &parsed.spans, &activity);
        print!("{}", fixlint::render_report(&coverage, rules_path, &text));
    }
    Ok(())
}

/// Standalone scrape endpoint over this process's registry — the mount
/// point external harnesses poll. `--scrapes N` exits after `N` scrapes
/// have been served; without it the server runs until killed.
fn cmd_serve_metrics(flags: &Flags, obs_ctx: &ObsCtx) -> Result<(), String> {
    let addr = flags.optional("addr").unwrap_or("127.0.0.1:0");
    let server = MetricsServer::bind(addr, obs_ctx.registry.clone())
        .map_err(|e| format!("binding {addr}: {e}"))?;
    println!("serving metrics on http://{}/metrics", server.addr());
    std::io::stdout().flush().ok();
    match flags.optional("scrapes") {
        Some(n) => {
            let n: u64 = n
                .parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| "--scrapes takes a count >= 1".to_string())?;
            server.wait_for_scrapes(n);
            println!("served {} scrape(s)", server.scrapes());
            server.shutdown();
            Ok(())
        }
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
}

/// Fetch a Prometheus exposition (over HTTP, or from a file written by a
/// previous scrape) and validate it with the in-repo text-format parser.
/// Exit 1 when `--require NAME` names a metric the exposition lacks.
fn cmd_scrape(positional: Option<&str>, flags: &Flags) -> Result<ExitCode, String> {
    let target =
        positional.ok_or("scrape needs a target: fixctl scrape http://HOST:PORT/metrics")?;
    let text = if target.starts_with("http://") {
        let (status, body) = http_get(target).map_err(|e| format!("fetching {target}: {e}"))?;
        if status != 200 {
            return Err(format!("{target} answered HTTP {status}"));
        }
        body
    } else {
        std::fs::read_to_string(target).map_err(|e| format!("reading {target}: {e}"))?
    };
    let samples =
        parse_prometheus(&text).map_err(|e| format!("invalid exposition from {target}: {e}"))?;
    let mut names: Vec<&str> = samples.iter().map(|s| s.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    println!(
        "{target}: exposition OK, {} sample(s) across {} metric(s)",
        samples.len(),
        names.len()
    );
    if let Some(required) = flags.optional("require") {
        if !require_present(&samples, required)? {
            println!("required metric `{required}` is missing");
            return Ok(ExitCode::from(1));
        }
        println!("required metric `{required}` present");
    }
    Ok(ExitCode::SUCCESS)
}

/// Does any scraped sample satisfy `required`? A bare name (`up`) matches
/// on the sanitized metric name alone; a labeled series
/// (`http.requests{endpoint="repair"}`) additionally needs every required
/// label pair on the same sample, in any order, extra labels allowed.
fn require_present(samples: &[obs::PromSample], required: &str) -> Result<bool, String> {
    let (raw_name, raw_block) = obs::expose::split_series(required);
    let name = obs::expose::sanitize_name(raw_name);
    let required_pairs = obs::parse_label_pairs(raw_block)
        .map_err(|e| format!("bad --require series {required:?}: {e}"))?;
    Ok(samples.iter().any(|sample| {
        if sample.name != name {
            return false;
        }
        if required_pairs.is_empty() {
            return true;
        }
        // The exposition already validated, so its blocks parse.
        let pairs = obs::parse_label_pairs(&sample.labels).unwrap_or_default();
        required_pairs.iter().all(|pair| pairs.contains(pair))
    }))
}

/// Parse `--quality-alert` as comma-separated [`AlertRule`] specs, e.g.
/// `drift>0.5,repair_rate:city>0.25`.
fn quality_alerts_flag(flags: &Flags) -> Result<Vec<AlertRule>, String> {
    match flags.optional("quality-alert") {
        Some(specs) => specs
            .split(',')
            .map(|spec| AlertRule::parse(spec.trim()))
            .collect(),
        None => Ok(Vec::new()),
    }
}

/// Fetch a repair-quality snapshot — from a running daemon's
/// `GET /quality`, or from a file written by `repair --quality-json` —
/// and render the per-window signal table. Exit 1 when `--require-green`
/// finds active alerts (the CI spelling of "is the data still healthy?").
fn cmd_quality(positional: Option<&str>, flags: &Flags) -> Result<ExitCode, String> {
    let target = positional
        .ok_or("quality needs a target: fixctl quality http://HOST:PORT | snapshot.json")?;
    let text = if target.starts_with("http://") {
        // Accept both a daemon base URL and the endpoint itself.
        let url = if target.ends_with("/quality") {
            target.to_string()
        } else {
            format!("{}/quality", target.trim_end_matches('/'))
        };
        let (status, body) = http_get(&url).map_err(|e| format!("fetching {url}: {e}"))?;
        if status != 200 {
            return Err(format!("{url} answered HTTP {status}"));
        }
        body
    } else {
        std::fs::read_to_string(target).map_err(|e| format!("reading {target}: {e}"))?
    };
    let snapshot =
        obs::json::parse(&text).map_err(|e| format!("invalid snapshot from {target}: {e}"))?;
    let last = match flags.optional("window") {
        Some(n) => Some(
            n.parse()
                .ok()
                .filter(|&w| w >= 1)
                .ok_or_else(|| format!("--window: bad value `{n}` (newest N windows)"))?,
        ),
        None => None,
    };
    print!("{}", render_snapshot(&snapshot, last)?);
    if flags.switch("require-green") {
        let alerts = snapshot
            .get("alerts")
            .and_then(|j| j.as_arr())
            .map_or(0, |arr| arr.len());
        if alerts > 0 {
            println!("require-green: {alerts} active alert(s)");
            return Ok(ExitCode::from(1));
        }
        println!("require-green: no active alerts");
    }
    Ok(ExitCode::SUCCESS)
}

/// Run the long-lived `fixd` repair daemon in the foreground: rules are
/// loaded, linted, and compiled once, then every `POST /repair` batch
/// shares one warm plan cache. Blocks until `POST /shutdown` drains it.
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let mut config = fixd::DaemonConfig {
        rules: fixd::RulesSource::Path(flags.required("rules")?.to_string()),
        ..fixd::DaemonConfig::default()
    };
    if let Some(addr) = flags.optional("addr") {
        config.addr = addr.to_string();
    }
    if let Some(threads) = flags.optional("threads") {
        config.threads = threads
            .parse()
            .map_err(|_| format!("--threads: bad value `{threads}`"))?;
    }
    if let Some(shards) = flags.optional("cache-shards") {
        config.cache_shards = shards
            .parse()
            .map_err(|_| format!("--cache-shards: bad value `{shards}`"))?;
    }
    if let Some(names) = flags.optional("schema") {
        config.schema =
            fixd::SchemaSource::Names(names.split(',').map(|s| s.trim().to_string()).collect());
    }
    if let Some(engine) = flags.optional("engine") {
        config.engine = match engine {
            "chase" => CompiledEngine::Chase,
            "linear" | "lrepair" => CompiledEngine::Linear,
            other => return Err(format!("unknown serve engine `{other}` (chase|linear)")),
        };
    }
    if let Some(cache) = flags.optional("plan-cache") {
        config.plan_cache = match cache {
            "on" => true,
            "off" => false,
            other => return Err(format!("unknown --plan-cache `{other}` (on|off)")),
        };
    }
    if let Some(path) = flags.optional("journal") {
        config.journal_path = Some(path.to_string());
    }
    if let Some(path) = flags.optional("warm") {
        config.warm = Some(path.to_string());
    }
    if let Some(clock) = flags.optional("trace-clock") {
        config.trace_clock = match clock {
            "logical" => TraceClock::Logical,
            "wall" => TraceClock::Wall,
            other => return Err(format!("unknown --trace-clock `{other}` (logical|wall)")),
        };
    }
    if let Some(window) = flags.optional("slo-window") {
        config.slo.window = window
            .parse()
            .map_err(|_| format!("--slo-window: bad value `{window}`"))?;
    }
    if let Some(min) = flags.optional("slo-min-samples") {
        config.slo.min_samples = min
            .parse()
            .map_err(|_| format!("--slo-min-samples: bad value `{min}`"))?;
    }
    if let Some(rate) = flags.optional("slo-max-error-rate") {
        config.slo.max_error_rate = rate
            .parse()
            .map_err(|_| format!("--slo-max-error-rate: bad value `{rate}`"))?;
    }
    if let Some(ms) = flags.optional("slo-max-p99-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("--slo-max-p99-ms: bad value `{ms}`"))?;
        config.slo.max_p99_ns = ms.saturating_mul(1_000_000);
    }
    if let Some(sample) = flags.optional("trace-sample") {
        config.trace_sample = sample
            .parse()
            .map_err(|_| format!("--trace-sample: bad value `{sample}` (rows per request)"))?;
    }
    if let Some(window) = flags.optional("quality-window") {
        config.quality_window = window
            .parse()
            .map_err(|_| format!("--quality-window: bad value `{window}` (rows, 0 disables)"))?;
    }
    config.quality_alerts = quality_alerts_flag(flags)?;
    config.quality_gate = flags.switch("quality-gate");
    if config.quality_gate && config.quality_window == 0 {
        return Err("--quality-gate needs quality monitoring (--quality-window > 0)".to_string());
    }
    let daemon = fixd::Daemon::start(config).map_err(|e| format!("starting fixd: {e}"))?;
    println!("fixd listening on http://{}", daemon.addr());
    daemon.wait();
    println!("fixd drained and stopped");
    Ok(())
}

/// Normalize `--addr` into a base URL (a bare `host:port` is accepted).
fn client_base(flags: &Flags) -> Result<String, String> {
    let addr = flags.required("addr")?;
    Ok(if addr.starts_with("http://") {
        addr.trim_end_matches('/').to_string()
    } else {
        format!("http://{addr}")
    })
}

/// Thin HTTP client for a running `fixd` daemon: post a repair/check
/// batch from a file, fetch any GET endpoint, or request a graceful
/// shutdown. Prints the response body; exit status 1 on a non-2xx reply.
fn cmd_client(sub: &str, positional: Option<&str>, flags: &Flags) -> Result<ExitCode, String> {
    let base = client_base(flags)?;
    let reply =
        match sub {
            "repair" | "check" => {
                let data = positional.or_else(|| flags.optional("data")).ok_or_else(|| {
                format!("client {sub} needs a batch file: fixctl client {sub} rows.csv --addr ...")
            })?;
                let body = std::fs::read(data).map_err(|e| format!("reading {data}: {e}"))?;
                let content_type = if data.ends_with(".json") {
                    "application/json"
                } else {
                    "text/csv"
                };
                let query = match flags.optional("format") {
                    Some("csv") => "?format=csv",
                    Some("json") | None => "",
                    Some(other) => return Err(format!("unknown --format `{other}` (csv|json)")),
                };
                obs::http_post(&format!("{base}/{sub}{query}"), content_type, &body)
            }
            "get" => {
                let path = positional
                    .ok_or("client get needs a path, e.g. fixctl client get /readyz --addr ...")?;
                obs::http_request("GET", &format!("{base}{path}"), "text/plain", b"")
            }
            "rules" => {
                let path = positional
                    .or_else(|| flags.optional("rules"))
                    .ok_or_else(|| {
                        "client rules needs a rule file: fixctl client rules rules.frl --addr ..."
                            .to_string()
                    })?;
                let body = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
                obs::http_post(&format!("{base}/rules"), "text/plain", &body)
            }
            "shutdown" => obs::http_post(&format!("{base}/shutdown"), "text/plain", b""),
            other => return Err(format!("unknown client subcommand `{other}`")),
        }
        .map_err(|e| format!("talking to {base}: {e}"))?;
    if let Some((_, trace_id)) = reply
        .headers
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case("x-trace-id"))
    {
        eprintln!("trace id: {trace_id}");
    }
    print!("{}", reply.body);
    if !reply.body.ends_with('\n') {
        println!();
    }
    Ok(if reply.status < 400 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_resolve(flags: &Flags, obs_ctx: &ObsCtx) -> Result<(), String> {
    let (_table, mut rules, symbols) = load(flags, obs_ctx)?;
    let strategy = match flags.optional("strategy").unwrap_or("shrink") {
        "shrink" => Strategy::ShrinkNegatives,
        "drop" => Strategy::Conservative,
        other => return Err(format!("unknown strategy `{other}` (shrink|drop)")),
    };
    let before = rules.len();
    let log = {
        let _span = obs_ctx.span("resolve");
        ensure_consistent(&mut rules, strategy)
    };
    println!(
        "resolved in {} round(s): {} negative pattern(s) removed, {} rule(s) removed ({} -> {})",
        log.rounds,
        log.negatives_removed(),
        log.rules_removed(),
        before,
        rules.len()
    );
    let out = flags.required("out")?;
    std::fs::write(out, format_rules(&rules, &symbols))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_repair(flags: &Flags, obs_ctx: &ObsCtx) -> Result<(), String> {
    let (mut table, rules, symbols) = load(flags, obs_ctx)?;
    let threads = threads_flag(flags)?;
    let cache_spec = plan_cache_flag(flags)?;
    let hold = expose_hold_flag(flags)?;
    // The endpoint goes up before any repair work so a scraper can watch
    // the counters move while the run is in flight.
    let server = start_expose(flags, obs_ctx)?;
    let report = check_consistency_observed(&rules, obs_ctx, threads);
    if !report.is_consistent() {
        return Err(format!(
            "rule set has {} conflict(s); run `fixctl resolve` first",
            report.conflicts.len()
        ));
    }
    // `--engine` is the current spelling; `--algo` stays as an alias, and
    // `chase` names the same engine `crepair` always did.
    let algo = flags
        .optional("engine")
        .or_else(|| flags.optional("algo"))
        .unwrap_or("lrepair");
    if !matches!(
        algo,
        "compiled" | "compiled-chase" | "columnar" | "columnar-chase" | "stream"
    ) && cache_spec.is_some()
        && cache_spec != Some(CacheSpec::Off)
    {
        return Err(format!(
            "--plan-cache only applies to the compiled, columnar, and stream engines (got `{algo}`)"
        ));
    }
    if algo != "stream" && flags.optional("quality-window").is_some() {
        return Err(format!(
            "--quality-window only applies to the stream engine (got `{algo}`)"
        ));
    }
    if algo == "stream" {
        // One-pass constant-memory repair: re-read the data file and write
        // records as they are repaired.
        let data_path = flags.required("data")?;
        let out = flags.required("out")?;
        let mut symbols2 = SymbolTable::new();
        // Rebuild the rules against a schema taken from the header so the
        // attribute ids align with the stream (load() used its own table).
        let header_table = relation::csv_io::read_csv_file(data_path, "data", &mut symbols2)
            .map_err(|e| format!("reading {data_path}: {e}"))?;
        let text = std::fs::read_to_string(flags.required("rules")?)
            .map_err(|e| format!("re-reading rules: {e}"))?;
        let rules2 = parse_rules(&text, header_table.schema(), &mut symbols2)
            .map_err(|e| format!("parsing rules: {e}"))?;
        if threads > 1 {
            return Err(
                "--threads does not apply to the stream engine (one pass, one reader)".to_string(),
            );
        }
        let reader =
            std::fs::File::open(data_path).map_err(|e| format!("opening {data_path}: {e}"))?;
        let writer = std::io::BufWriter::new(
            std::fs::File::create(out).map_err(|e| format!("creating {out}: {e}"))?,
        );
        let started = std::time::Instant::now();
        let ledger = ProvenanceLedger::new();
        // `--plan-cache` switches the stream onto the compiled engine with
        // a bounded LRU memo (a stream has no end, so the cache must not
        // grow without bound); default capacity holds 4096 plans.
        let stream_cache = match cache_spec.unwrap_or(CacheSpec::Off) {
            CacheSpec::Off => None,
            CacheSpec::On => Some(PlanCache::bounded_lru(4096)),
            CacheSpec::Bounded(c) => Some(PlanCache::bounded_lru(c)),
        };
        // `--quality-window` hangs a QualityMonitor off the same observer
        // chain: tumbling windows of pre/post sketches over the stream,
        // summarized as a per-window table after the run.
        let quality = match flags.optional("quality-window") {
            Some(n) => {
                let window: usize = n
                    .parse()
                    .ok()
                    .filter(|&w| w >= 1)
                    .ok_or_else(|| format!("--quality-window: bad value `{n}` (rows >= 1)"))?;
                let cfg = QualityConfig {
                    window_rows: window,
                    alerts: quality_alerts_flag(flags)?,
                    ..QualityConfig::default()
                };
                let names = header_table
                    .schema()
                    .attr_names()
                    .map(str::to_string)
                    .collect();
                Some(QualityMonitor::new(cfg, names).with_registry(&obs_ctx.registry))
            }
            None => None,
        };
        // Optional observers tee onto the metrics observer as trait
        // objects; the blanket `&T` impl lets the generic drivers take the
        // assembled `&dyn` chain without monomorphizing every combination.
        let attribution = attribution_for(flags, obs_ctx, &rules2);
        let prov = obs_ctx
            .journal
            .is_some()
            .then(|| ProvenanceObserver::new(&rules2, &ledger));
        let tee_prov;
        let tee_attr;
        let tee_quality;
        let mut observer: &dyn RepairObserver = &obs_ctx.observer;
        if let Some(p) = &prov {
            tee_prov = Tee(observer, p as &dyn RepairObserver);
            observer = &tee_prov;
        }
        if let Some(a) = &attribution {
            tee_attr = Tee(observer, a as &dyn RepairObserver);
            observer = &tee_attr;
        }
        if let Some(q) = &quality {
            tee_quality = Tee(observer, q as &dyn RepairObserver);
            observer = &tee_quality;
        }
        let stats = {
            let _span = obs_ctx.span("repair");
            let result = if let Some(cache) = &stream_cache {
                let program = {
                    let _span = obs_ctx.span("compile");
                    RuleProgram::compile(&rules2)
                };
                stream_repair_csv_compiled_observed(
                    &rules2,
                    &program,
                    CompiledEngine::Linear,
                    Some(cache),
                    &mut symbols2,
                    reader,
                    writer,
                    &observer,
                )
            } else {
                let index = {
                    let _span = obs_ctx.span("index_build");
                    LRepairIndex::build(&rules2)
                };
                fixrules::repair::stream_repair_csv_observed(
                    &rules2,
                    &index,
                    &mut symbols2,
                    reader,
                    writer,
                    &observer,
                )
            };
            result.map_err(|e| format!("streaming: {e}"))?
        };
        if let Some(journal) = &obs_ctx.journal {
            write_trace_events(journal, &rules2, &symbols2, &ledger, algo);
        }
        obs::info!(
            "repair.done",
            algo = algo,
            rows = stats.rows,
            updates = stats.updates,
            rows_per_sec = format!("{:.0}", stats.rows_per_sec(started.elapsed()))
        );
        println!(
            "{} update(s) across {} row(s) of {} (streamed)",
            stats.updates, stats.rows_touched, stats.rows
        );
        if let Some(cache) = &stream_cache {
            report_plan_cache(cache);
        }
        if let Some(quality) = &quality {
            // Seal the trailing partial window so the table covers every
            // row, then print the per-window signal summary.
            quality.flush();
            print!("{}", quality.render_table());
            if let Some(path) = flags.optional("quality-json") {
                std::fs::write(path, quality.snapshot().to_string_pretty() + "\n")
                    .map_err(|e| format!("writing {path}: {e}"))?;
                obs::info!("quality.written", path = path);
            }
        }
        println!("wrote {out}");
        emit_profile(flags, attribution.as_ref())?;
        finish_expose(hold, server);
        return Ok(());
    }
    let ledger = ProvenanceLedger::new();
    // Optional observers (provenance for `--trace`, attribution for
    // `--profile*`) tee onto the metrics observer as trait objects. The
    // blanket `impl RepairObserver for &T` lets every generic driver take
    // the assembled `&dyn` chain, instead of monomorphizing each Tee/no-Tee
    // combination per engine.
    let attribution = attribution_for(flags, obs_ctx, &rules);
    let prov = obs_ctx
        .journal
        .is_some()
        .then(|| ProvenanceObserver::new(&rules, &ledger));
    let tee_prov;
    let tee_attr;
    let mut observer: &dyn RepairObserver = &obs_ctx.observer;
    if let Some(p) = &prov {
        tee_prov = Tee(observer, p as &dyn RepairObserver);
        observer = &tee_prov;
    }
    if let Some(a) = &attribution {
        tee_attr = Tee(observer, a as &dyn RepairObserver);
        observer = &tee_attr;
    }
    let outcome: RepairOutcome = match algo {
        "lrepair" => {
            let index = {
                let _span = obs_ctx.span("index_build");
                LRepairIndex::build(&rules)
            };
            let _span = obs_ctx.span("repair");
            if threads > 1 {
                par_lrepair_table_observed(&rules, &index, &mut table, threads, &observer)
            } else {
                lrepair_table_observed(&rules, &index, &mut table, &observer)
            }
        }
        "crepair" | "chase" => {
            if threads > 1 {
                return Err(
                    "--threads does not apply to the chase engine (use --engine compiled-chase)"
                        .to_string(),
                );
            }
            let _span = obs_ctx.span("repair");
            crepair_table_observed(&rules, &mut table, &observer)
        }
        "compiled" | "compiled-chase" => {
            let engine = if algo == "compiled" {
                CompiledEngine::Linear
            } else {
                CompiledEngine::Chase
            };
            let program = {
                let _span = obs_ctx.span("compile");
                RuleProgram::compile(&rules)
            };
            let cache = {
                let _span = obs_ctx.span("plan_cache");
                build_plan_cache(cache_spec.unwrap_or(CacheSpec::On), threads)
            };
            let outcome = {
                let _span = obs_ctx.span("repair");
                if threads > 1 {
                    par_compiled_table_observed(
                        &rules,
                        &program,
                        engine,
                        cache.as_ref(),
                        &mut table,
                        threads,
                        &observer,
                    )
                } else {
                    compiled_table_observed(
                        &rules,
                        &program,
                        engine,
                        cache.as_ref(),
                        &mut table,
                        &observer,
                    )
                }
            };
            if let Some(cache) = &cache {
                report_plan_cache(cache);
            }
            outcome
        }
        "columnar" | "columnar-chase" => {
            let engine = if algo == "columnar" {
                CompiledEngine::Linear
            } else {
                CompiledEngine::Chase
            };
            let program = {
                let _span = obs_ctx.span("compile");
                RuleProgram::compile(&rules)
            };
            let cache = {
                let _span = obs_ctx.span("plan_cache");
                build_plan_cache(cache_spec.unwrap_or(CacheSpec::On), threads)
            };
            let mut columns = ColumnTable::from(&table);
            let (outcome, batch) = {
                let _span = obs_ctx.span("repair");
                if threads > 1 {
                    par_columnar_table_observed(
                        &rules,
                        &program,
                        engine,
                        cache.as_ref(),
                        &mut columns,
                        threads,
                        &observer,
                    )
                } else {
                    columnar_table_observed(
                        &rules,
                        &program,
                        engine,
                        cache.as_ref(),
                        &mut columns,
                        &observer,
                    )
                }
            };
            table = columns.to_table();
            println!(
                "batch: {} rows, {} distinct signatures ({} scattered)",
                batch.rows, batch.groups, batch.scattered
            );
            if let Some(cache) = &cache {
                report_plan_cache(cache);
            }
            outcome
        }
        other => {
            return Err(format!(
                "unknown engine `{other}` (lrepair|chase|crepair|compiled|compiled-chase|columnar|columnar-chase|stream)"
            ))
        }
    };
    if let Some(journal) = &obs_ctx.journal {
        write_trace_events(journal, &rules, &symbols, &ledger, algo);
    }
    let stats = outcome.stats(table.len());
    obs::info!(
        "repair.done",
        algo = algo,
        rows = stats.rows,
        updates = stats.updates,
        rows_touched = stats.rows_touched
    );
    println!(
        "{} update(s) across {} row(s) of {}",
        outcome.total_updates(),
        outcome.rows_touched(),
        table.len()
    );
    let out = flags.required("out")?;
    {
        let _span = obs_ctx.span("write");
        relation::csv_io::write_csv_file(out, &table, &symbols)
            .map_err(|e| format!("writing {out}: {e}"))?;
    }
    println!("wrote {out}");
    if let Some(log_path) = flags.optional("updates-log") {
        let mut w = String::from("row,attribute,old,new,rule\n");
        for u in &outcome.updates {
            w.push_str(&format!(
                "{},{},{},{},{}\n",
                u.row,
                table.schema().attr_name(u.attr),
                symbols.resolve(u.old),
                symbols.resolve(u.new),
                u.rule.0
            ));
        }
        std::fs::write(log_path, w).map_err(|e| format!("writing {log_path}: {e}"))?;
        println!("wrote {log_path}");
    }
    emit_profile(flags, attribution.as_ref())?;
    finish_expose(hold, server);
    Ok(())
}

/// Dump the run metadata, rule texts, and provenance ledger into the trace
/// journal as instant events; `fixctl explain` reconstructs rule chains
/// from exactly these records.
fn write_trace_events(
    journal: &TraceJournal,
    rules: &RuleSet,
    symbols: &SymbolTable,
    ledger: &ProvenanceLedger,
    algo: &str,
) {
    let schema = rules.schema();
    let attrs: Vec<Json> = schema.attr_names().map(Json::from).collect();
    journal.event(
        "trace.meta",
        0,
        Json::obj([
            ("algo", Json::from(algo)),
            ("attrs", Json::Arr(attrs)),
            ("schema", Json::from(schema.name())),
        ]),
    );
    for (id, rule) in rules.iter() {
        journal.event(
            "rule",
            0,
            Json::obj([
                ("id", Json::from(u64::from(id.0))),
                (
                    "text",
                    Json::from(format_rule(rule, schema, symbols).as_str()),
                ),
            ]),
        );
    }
    for rec in ledger.records() {
        journal.event("repair.cell", 0, rec.to_json(schema, symbols));
    }
}

/// Reconstruct and render the causal rule chain behind one repaired cell,
/// from a journal written by `fixctl repair --trace`. Exit status: 1 when
/// the cell was never repaired, 0 when a chain is rendered.
fn cmd_explain(positional: Option<&str>, flags: &Flags) -> Result<ExitCode, String> {
    let path = positional
        .or_else(|| flags.optional("trace"))
        .ok_or("explain needs a journal: fixctl explain <trace.jsonl> --row N --attr NAME")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let records = parse_jsonl(&text)?;
    // Rebuild the run context from the journal's instant events.
    let meta = records
        .iter()
        .find(|r| r.phase == TracePhase::Event && r.name == "trace.meta")
        .ok_or("journal has no `trace.meta` event (was it written by `fixctl repair --trace`?)")?;
    let attr_names: Vec<String> = meta
        .fields
        .get("attrs")
        .and_then(Json::as_arr)
        .ok_or("trace.meta has no `attrs` array")?
        .iter()
        .filter_map(|a| a.as_str().map(str::to_string))
        .collect();
    let schema_name = meta
        .fields
        .get("schema")
        .and_then(Json::as_str)
        .unwrap_or("R");
    let algo = meta
        .fields
        .get("algo")
        .and_then(Json::as_str)
        .unwrap_or("?");
    let schema = Schema::new(schema_name, attr_names.iter().map(String::as_str))
        .map_err(|e| e.to_string())?;
    let mut rule_texts: Vec<String> = Vec::new();
    for r in &records {
        if r.phase != TracePhase::Event || r.name != "rule" {
            continue;
        }
        let Some(id) = r.fields.get("id").and_then(Json::as_i64) else {
            continue;
        };
        let rule_text = r.fields.get("text").and_then(Json::as_str).unwrap_or("");
        let id = id as usize;
        if rule_texts.len() <= id {
            rule_texts.resize(id + 1, String::new());
        }
        rule_texts[id] = rule_text.to_string();
    }
    let mut symbols = SymbolTable::new();
    let mut cells: Vec<ProvenanceRecord> = Vec::new();
    for r in &records {
        if r.phase == TracePhase::Event && r.name == "repair.cell" {
            cells.push(ProvenanceRecord::from_json(
                &r.fields,
                &schema,
                &mut symbols,
            )?);
        }
    }
    let row: usize = flags
        .required("row")?
        .parse()
        .map_err(|_| "--row takes a 0-based row index".to_string())?;
    let attr_name = flags.required("attr")?;
    let attr = schema.attr(attr_name).ok_or_else(|| {
        format!(
            "unknown attribute `{attr_name}` (schema: {})",
            attr_names.join(", ")
        )
    })?;
    let mut row_records: Vec<ProvenanceRecord> =
        cells.into_iter().filter(|r| r.row == row).collect();
    row_records.sort_by_key(|r| r.ordinal);
    let chain_ix = fixrules::provenance::chain(&row_records, attr);
    if chain_ix.is_empty() {
        println!("no repair recorded for row {row}, attribute `{attr_name}`");
        return Ok(ExitCode::from(1));
    }
    let chain: Vec<&ProvenanceRecord> = chain_ix.iter().map(|&i| &row_records[i]).collect();
    // Render rustc-style over a synthesized "source" where line N holds the
    // text of rule N-1, so each chain link underlines the rule that fired.
    let source = rule_texts.join("\n");
    let last = chain.last().expect("chain is non-empty");
    let header = format!(
        "fix[row {row}, {attr_name}]: \"{}\" -> \"{}\"",
        symbols.resolve(last.old),
        symbols.resolve(last.new)
    );
    let location = format!("{path} (row {row})");
    let mut excerpts = Vec::new();
    for (step, rec) in chain.iter().enumerate() {
        let rule_ix = rec.rule.0 as usize;
        let text_len = rule_texts.get(rule_ix).map_or(1, |t| t.len().max(1));
        let evidence: Vec<String> = rec
            .evidence
            .iter()
            .map(|&(a, v)| format!("{} = \"{}\"", schema.attr_name(a), symbols.resolve(v)))
            .collect();
        excerpts.push(fixlint::Excerpt {
            span: Span::new(rule_ix + 1, 1, text_len),
            marker: if step + 1 == chain.len() { '^' } else { '-' },
            label: format!(
                "step {}: {} \"{}\" -> \"{}\" (round {}, evidence: {})",
                step + 1,
                schema.attr_name(rec.attr),
                symbols.resolve(rec.old),
                symbols.resolve(rec.new),
                rec.round,
                evidence.join(", ")
            ),
        });
    }
    let notes = vec![format!(
        "chain of {} rule application(s) recorded by `{algo}`",
        chain.len()
    )];
    print!(
        "{}",
        fixlint::render_block(&header, &location, &excerpts, &notes, &source)
    );
    Ok(ExitCode::SUCCESS)
}

/// Convert a JSONL trace journal to Chrome trace-event JSON (viewable in
/// Perfetto / `chrome://tracing`).
fn cmd_trace_export(positional: Option<&str>, flags: &Flags) -> Result<(), String> {
    let path = positional.or_else(|| flags.optional("trace")).ok_or(
        "trace export needs a journal: fixctl trace export <trace.jsonl> --chrome out.json",
    )?;
    let out = flags.required("chrome")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let records = parse_jsonl(&text)?;
    let chrome = chrome_trace(&records);
    std::fs::write(out, chrome.to_string_pretty() + "\n")
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out} ({} trace event(s))", records.len());
    Ok(())
}

fn cmd_stats(flags: &Flags, obs_ctx: &ObsCtx) -> Result<(), String> {
    let (table, rules, _symbols) = load(flags, obs_ctx)?;
    println!("schema: {}", table.schema());
    println!("data:   {} rows", table.len());
    println!("rules:  {} (size(Σ) = {})", rules.len(), rules.size());
    let mut by_b: HashMap<&str, usize> = HashMap::new();
    let mut neg_total = 0usize;
    let mut neg_max = 0usize;
    for (_, rule) in rules.iter() {
        *by_b.entry(table.schema().attr_name(rule.b())).or_insert(0) += 1;
        neg_total += rule.neg().len();
        neg_max = neg_max.max(rule.neg().len());
    }
    if !rules.is_empty() {
        println!(
            "negative patterns: {} total, {:.1} avg, {} max",
            neg_total,
            neg_total as f64 / rules.len() as f64,
            neg_max
        );
    }
    let mut attrs: Vec<(&str, usize)> = by_b.into_iter().collect();
    attrs.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("rules per repaired attribute:");
    for (attr, n) in attrs {
        println!("  {attr:<20} {n}");
    }
    Ok(())
}
