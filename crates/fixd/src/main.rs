//! `fixd` — run the repair daemon from the command line.
//!
//! ```text
//! fixd --rules rules.frl [--addr 127.0.0.1:0] [--threads 4]
//!      [--engine chase|linear] [--schema a,b,c] [--warm data.csv]
//!      [--journal trace.jsonl] [--trace-clock logical|wall]
//!      [--cache-shards 8] [--slo-window N] [--slo-min-samples N]
//!      [--slo-max-error-rate F] [--slo-max-p99-ms N]
//! ```
//!
//! The process serves until `POST /shutdown`, then drains in-flight
//! requests, flushes the journal, and exits 0. (`fixctl serve` wraps the
//! same daemon with the full CLI's flag conventions.)

use std::process::ExitCode;

use fixd::{Daemon, DaemonConfig, RulesSource, SchemaSource};
use fixrules::repair::CompiledEngine;
use obs::TraceClock;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("fixd: {message}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", USAGE);
        return Ok(ExitCode::SUCCESS);
    }
    let mut config = DaemonConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--rules" => config.rules = RulesSource::Path(value("--rules")?.clone()),
            "--addr" => config.addr = value("--addr")?.clone(),
            "--threads" => config.threads = parse(value("--threads")?, "--threads")?,
            "--cache-shards" => {
                config.cache_shards = parse(value("--cache-shards")?, "--cache-shards")?
            }
            "--schema" => {
                config.schema = SchemaSource::Names(
                    value("--schema")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect(),
                )
            }
            "--engine" => {
                config.engine = match value("--engine")?.as_str() {
                    "chase" => CompiledEngine::Chase,
                    "linear" => CompiledEngine::Linear,
                    other => return Err(format!("unknown engine {other:?} (chase|linear)")),
                }
            }
            "--journal" => config.journal_path = Some(value("--journal")?.clone()),
            "--plan-cache" => {
                config.plan_cache = match value("--plan-cache")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("unknown --plan-cache {other:?} (on|off)")),
                }
            }
            "--warm" => config.warm = Some(value("--warm")?.clone()),
            "--trace-clock" => {
                config.trace_clock = match value("--trace-clock")?.as_str() {
                    "logical" => TraceClock::Logical,
                    "wall" => TraceClock::Wall,
                    other => return Err(format!("unknown clock {other:?} (logical|wall)")),
                }
            }
            "--slo-window" => config.slo.window = parse(value("--slo-window")?, "--slo-window")?,
            "--slo-min-samples" => {
                config.slo.min_samples = parse(value("--slo-min-samples")?, "--slo-min-samples")?
            }
            "--slo-max-error-rate" => {
                config.slo.max_error_rate =
                    parse(value("--slo-max-error-rate")?, "--slo-max-error-rate")?
            }
            "--slo-max-p99-ms" => {
                let ms: u64 = parse(value("--slo-max-p99-ms")?, "--slo-max-p99-ms")?;
                config.slo.max_p99_ns = ms.saturating_mul(1_000_000);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if matches!(&config.rules, RulesSource::Inline(text) if text.is_empty()) {
        return Err("missing --rules <file.frl>".to_string());
    }
    let daemon = Daemon::start(config).map_err(|e| e.to_string())?;
    // Parseable by scripts waiting for the ephemeral port.
    println!("fixd listening on http://{}", daemon.addr());
    daemon.wait();
    Ok(ExitCode::SUCCESS)
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: bad value {text:?}"))
}

const USAGE: &str = "\
fixd — long-running fixing-rules repair daemon

USAGE:
    fixd --rules <file.frl> [options]

OPTIONS:
    --rules <file>            rule file to load, lint, and compile (required)
    --addr <host:port>        bind address (default 127.0.0.1:0)
    --threads <n>             worker threads (default 4)
    --engine <chase|linear>   compiled engine (default chase)
    --schema <a,b,c>          explicit schema (default: inferred from rules)
    --warm <file.csv>         pre-warm the plan cache from a CSV at startup
    --journal <file.jsonl>    flush the trace journal here on shutdown
    --plan-cache <on|off>     shared repair-plan memoization (default on)
    --trace-clock <logical|wall>  journal clock (default logical)
    --cache-shards <n>        plan cache shards (default 8)
    --slo-window <n>          rolling SLO window size (default 512)
    --slo-min-samples <n>     samples before the SLO applies (default 20)
    --slo-max-error-rate <f>  readiness error-rate ceiling (default 0.05)
    --slo-max-p99-ms <n>      readiness p99 latency ceiling (default 2000)

ENDPOINTS:
    POST /repair    POST /check    GET /explain/{row}/{attr}
    GET /trace/{id}    GET /metrics    GET /healthz    GET /readyz
    POST /shutdown
";
