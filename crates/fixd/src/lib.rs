//! # fixd — a long-running repair daemon over compiled fixing rules
//!
//! The paper's repair algorithms are batch procedures: load rules, load a
//! table, chase. A *dependable* deployment looks different — rules are
//! loaded once, requests arrive continuously, and the service must expose
//! how healthy it is. `fixd` packages the compiled repair stack as a
//! std-only HTTP/1.1 daemon (hand-rolled on [`std::net::TcpListener`] with
//! a fixed thread pool, no external dependencies — the same plumbing as
//! [`obs::http`]):
//!
//! * rules are parsed, linted, and compiled **once** into a
//!   [`RuleProgram`]; every request repairs against the same program and
//!   one shared warm [`PlanCache`], so duplicate dirty signatures across
//!   requests replay memoized plans instead of re-running the chase;
//! * every request gets a **trace id** (`X-Trace-Id` response header) and
//!   a span scope in a global [`TraceJournal`]; `GET /trace/{id}` replays
//!   the request's records as JSONL (or `?format=chrome` for
//!   `chrome://tracing`);
//! * per-endpoint labeled telemetry (`http.requests{endpoint=...,status=...}`
//!   counters, `http.latency_ns{endpoint=...}` histograms) is scrapeable at
//!   `GET /metrics` in Prometheus text format;
//! * a rolling-window [`HealthEvaluator`] judges recent request outcomes
//!   against error-rate and p99-latency SLOs; `GET /healthz` is pure
//!   liveness while `GET /readyz` is readiness — lint-clean rules,
//!   consistent rule set, warm plan cache, green SLOs;
//! * repairs append to a [`ProvenanceLedger`] with daemon-global row ids
//!   (`row_base` in each response), so `GET /explain/{row}/{attr}` can
//!   justify any cell the daemon ever changed;
//! * every repaired batch also feeds a windowed
//!   [`QualityMonitor`]: per-attribute repair rate,
//!   new-value ratio, and sketch-based frequency drift over tumbling row
//!   windows, served at `GET /quality` and exported as
//!   `quality.drift{attr=...}` gauges; firing
//!   [`AlertRule`]s optionally gate `GET /readyz`
//!   (`quality_gate` in [`DaemonConfig`]);
//! * `POST /rules` hot-swaps the rule set behind a **certified promotion
//!   gate**: the candidate text is linted, certified by `fixcert`
//!   (termination + confluence), and semantically diffed against the
//!   serving set; only a green certificate atomically promotes a freshly
//!   compiled program bundle — with a *new* plan cache, since memoized
//!   plans from the old rules must never replay against the new ones. A
//!   red candidate is rejected wholesale and the old program keeps
//!   serving, so a bad rule set can never reach the data path;
//! * `POST /shutdown` (or [`Daemon::shutdown`]) drains in-flight requests
//!   and flushes the trace journal to disk.
//!
//! # Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /repair` | Repair a batch (CSV with header, or JSON rows); mutating |
//! | `POST /check` | Dry-run repair: per-row violation counts, nothing recorded |
//! | `POST /rules` | Hot-swap the rule set (lint + certify + diff gate) |
//! | `GET /explain/{row}/{attr}` | Provenance chain for a repaired cell, JSONL |
//! | `GET /trace/{id}` | One request's trace records (`?format=chrome` optional) |
//! | `GET /quality` | Repair-quality snapshot: current window, history, alerts |
//! | `GET /metrics` | Prometheus text v0.0.4 (`/metrics.json` for the snapshot) |
//! | `GET /healthz` | Liveness — always `200 ok` while the process serves |
//! | `GET /readyz` | Readiness — `200`/`503` with a JSON explanation |
//! | `POST /shutdown` | Graceful drain: `202`, then stop accepting |
//!
//! # Example
//!
//! ```
//! use fixd::{Daemon, DaemonConfig, RulesSource};
//! use obs::http::{http_get, http_post};
//!
//! let config = DaemonConfig {
//!     rules: RulesSource::Inline(
//!         r#"IF country = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing""#.into(),
//!     ),
//!     ..DaemonConfig::default()
//! };
//! let daemon = Daemon::start(config).unwrap();
//! let url = format!("http://{}/repair", daemon.addr());
//! let body = "country,capital\nChina,Shanghai\n";
//! let reply = http_post(&url, "text/csv", body.as_bytes()).unwrap();
//! assert_eq!(reply.status, 200);
//! assert!(reply.body.contains("Beijing"));
//! daemon.shutdown();
//! ```

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use fixrules::io::{infer_schema, parse_rules_spanned};
use fixrules::provenance::{ProvenanceLedger, ProvenanceObserver};
use fixrules::repair::{
    repair_columns_grouped, repair_row_compiled, CompiledEngine, CompiledScratch, PlanCache,
    RuleProgram,
};
use fixrules::RuleSet;
use obs::http::{Request, Response};
use obs::{
    prometheus_text, Json, MetricsObserver, MetricsRegistry, RepairObserver, SloConfig, TraceClock,
    TraceJournal, TracePhase, TraceRecord,
};
use obs::{AlertRule, HealthEvaluator, QualityConfig, QualityMonitor, Tee};
use relation::{csv_io, Schema, Symbol, SymbolTable};

/// How many recent trace ids stay resolvable via `GET /trace/{id}`.
const TRACE_INDEX_CAP: usize = 1024;

/// Default per-request cap on `row.repaired` journal events
/// ([`DaemonConfig::trace_sample`]; 0 disables row events entirely).
/// Aggregate totals always land in the request's `request.end` record.
const ROW_EVENT_SAMPLE: usize = 16;

/// Default rows per repair-quality window ([`DaemonConfig::quality_window`];
/// 0 disables quality monitoring entirely).
const QUALITY_WINDOW: usize = 256;

/// Where the daemon's rule text comes from.
#[derive(Debug, Clone)]
pub enum RulesSource {
    /// Read the rule file at this path at startup.
    Path(String),
    /// Use this text directly (tests, benches, embedding).
    Inline(String),
}

/// Where the daemon's schema comes from.
#[derive(Debug, Clone)]
pub enum SchemaSource {
    /// Infer attribute names from the rule text, in order of first
    /// appearance ([`fixrules::io::infer_schema`]). Requests may then only
    /// carry rule-mentioned attributes.
    Infer,
    /// Explicit attribute names, e.g. the full relation header. Requests
    /// must cover every one of them.
    Names(Vec<String>),
}

/// Everything [`Daemon::start`] needs; `Default` is a loopback daemon on
/// an ephemeral port with the chase engine and default SLOs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Rule text source. The default (empty inline text) is only useful
    /// for liveness tests — real configs set a path or inline rules.
    pub rules: RulesSource,
    /// Schema source (default: infer from the rules).
    pub schema: SchemaSource,
    /// Which compiled engine serves repairs (default: chase).
    pub engine: CompiledEngine,
    /// Bind address (default `127.0.0.1:0` — ephemeral port).
    pub addr: String,
    /// Worker threads handling connections (default 4, clamped ≥ 1).
    pub threads: usize,
    /// Shards for the shared [`PlanCache`] (default 8).
    pub cache_shards: usize,
    /// SLO thresholds for `GET /readyz`.
    pub slo: SloConfig,
    /// Trace clock for the journal (default logical — byte-deterministic).
    pub trace_clock: TraceClock,
    /// If set, the journal is flushed here (JSONL) on graceful shutdown.
    pub journal_path: Option<String>,
    /// Optional CSV to repair at startup, pre-warming the plan cache
    /// before the first request (not recorded in the provenance ledger).
    pub warm: Option<String>,
    /// Share one plan cache across all requests (default). Disabling it
    /// exists for the `bench serve` ablation — every row then pays full
    /// engine evaluation.
    pub plan_cache: bool,
    /// Per-request cap on sampled `row.repaired` journal events
    /// (default 16; 0 = no row events). Recorded in the journal's
    /// `trace.meta` record so a trace reader knows the sampling regime.
    pub trace_sample: usize,
    /// Rows per repair-quality window (default 256; 0 disables the
    /// quality monitor and `GET /quality` reports `enabled: false`).
    pub quality_window: usize,
    /// Alert thresholds evaluated whenever a quality window seals.
    pub quality_alerts: Vec<AlertRule>,
    /// Fold firing quality alerts into `GET /readyz` (opt-in: a drifting
    /// upstream then flips readiness until a calm window seals).
    pub quality_gate: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            rules: RulesSource::Inline(String::new()),
            schema: SchemaSource::Infer,
            engine: CompiledEngine::Chase,
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            cache_shards: 8,
            slo: SloConfig::default(),
            trace_clock: TraceClock::Logical,
            journal_path: None,
            warm: None,
            plan_cache: true,
            trace_sample: ROW_EVENT_SAMPLE,
            quality_window: QUALITY_WINDOW,
            quality_alerts: Vec::new(),
            quality_gate: false,
        }
    }
}

/// Ring-buffered `trace_id → root span id` index: old requests age out of
/// `GET /trace/{id}` once [`TRACE_INDEX_CAP`] newer ones have been served.
#[derive(Debug, Default)]
struct TraceIndex {
    entries: VecDeque<(String, u64)>,
}

impl TraceIndex {
    fn insert(&mut self, trace_id: String, span: u64) {
        if self.entries.len() == TRACE_INDEX_CAP {
            self.entries.pop_front();
        }
        self.entries.push_back((trace_id, span));
    }

    fn lookup(&self, trace_id: &str) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|(id, _)| id == trace_id)
            .map(|&(_, span)| span)
    }
}

/// Everything that must swap *atomically* when `POST /rules` promotes a
/// new rule set: the rules, their compiled program, the plan cache keyed
/// to them, and the analysis verdicts `GET /readyz` reports. Handlers
/// take one `Arc` snapshot at request start, so an in-flight batch keeps
/// a consistent rules/program/cache view across a concurrent swap.
#[derive(Debug)]
struct ProgramBundle {
    rules: RuleSet,
    program: RuleProgram,
    /// Fresh per bundle: a memoized plan references rule ids and facts of
    /// the set it was recorded under, so promotion *must* discard every
    /// old plan (pinned by the hot-swap ledger-equality test).
    cache: PlanCache,
    lint_errors: usize,
    consistent: bool,
    certified: bool,
    cert_errors: usize,
    /// Monotonic swap counter: 0 for the boot set, +1 per promotion.
    generation: u64,
}

/// Shared daemon state: the swappable [`ProgramBundle`] plus the
/// concurrent journals and caches every worker thread touches.
#[derive(Debug)]
struct DaemonState {
    schema: Schema,
    bundle: RwLock<Arc<ProgramBundle>>,
    engine: CompiledEngine,
    cache_shards: usize,
    symbols: RwLock<SymbolTable>,
    registry: MetricsRegistry,
    health: HealthEvaluator,
    journal: TraceJournal,
    ledger: ProvenanceLedger,
    trace_index: Mutex<TraceIndex>,
    trace_seq: AtomicU64,
    rows_served: AtomicUsize,
    use_cache: bool,
    trace_sample: usize,
    quality: Option<QualityMonitor>,
    quality_gate: bool,
    stop: AtomicBool,
    journal_path: Option<String>,
}

impl DaemonState {
    /// The currently serving bundle (one atomic refcount bump).
    fn bundle(&self) -> Arc<ProgramBundle> {
        Arc::clone(&self.bundle.read().unwrap())
    }
}

/// Parse, lint, certify, and compile one rule text into a promotable
/// bundle. Never rejects analysis findings — the verdicts ride along for
/// the caller (boot surfaces them via `/readyz`; the hot-swap gate
/// refuses to promote on them).
fn build_bundle(
    text: &str,
    schema: &Schema,
    symbols: &mut SymbolTable,
    cache_shards: usize,
    generation: u64,
) -> Result<
    (ProgramBundle, fixlint::Certificate, Vec<fixrules::io::Span>),
    fixrules::io::RuleParseError,
> {
    let parsed = parse_rules_spanned(text, schema, symbols)?;
    let lint = fixlint::lint(
        &parsed.rules,
        &parsed.spans,
        symbols,
        &fixlint::LintOptions::default(),
    );
    let cert = fixlint::certify(
        &parsed.rules,
        &parsed.spans,
        symbols,
        &fixlint::CertOptions::default(),
    );
    let program = RuleProgram::compile(&parsed.rules);
    let bundle = ProgramBundle {
        consistent: parsed.rules.check_consistency().is_consistent(),
        program,
        cache: PlanCache::sharded(cache_shards.max(1)),
        lint_errors: lint.errors(),
        certified: cert.is_certified(),
        cert_errors: cert.report.errors(),
        generation,
        rules: parsed.rules,
    };
    Ok((bundle, cert, parsed.spans))
}

/// A handler-level failure: an HTTP status plus a message the client sees
/// as `{"error": ...}`.
struct SrvError {
    status: u16,
    message: String,
}

impl SrvError {
    fn new(status: u16, message: impl Into<String>) -> SrvError {
        SrvError {
            status,
            message: message.into(),
        }
    }
}

type SrvResult = Result<Response, SrvError>;

fn bad_request(message: impl Into<String>) -> SrvError {
    SrvError::new(400, message)
}

/// A running repair daemon. Dropping the handle does **not** stop the
/// daemon — call [`Daemon::shutdown`] (drain + flush) or [`Daemon::wait`]
/// (block until `POST /shutdown` arrives).
#[derive(Debug)]
pub struct Daemon {
    addr: SocketAddr,
    state: Arc<DaemonState>,
    accept: JoinHandle<()>,
}

impl Daemon {
    /// Load, lint, and compile the configured rules, bind the listener,
    /// and start serving. Fails on unreadable/unparseable rules or an
    /// unbindable address.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        Daemon::start_with_registry(config, MetricsRegistry::new())
    }

    /// [`Daemon::start`] against a caller-owned [`MetricsRegistry`], so an
    /// embedding harness (the `bench serve` driver) can snapshot daemon
    /// telemetry itself.
    pub fn start_with_registry(
        config: DaemonConfig,
        registry: MetricsRegistry,
    ) -> io::Result<Daemon> {
        let invalid = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
        let text = match &config.rules {
            RulesSource::Path(path) => std::fs::read_to_string(path)?,
            RulesSource::Inline(text) => text.clone(),
        };
        let schema = match &config.schema {
            SchemaSource::Infer => infer_schema(&text, "R").map_err(|e| invalid(e.message()))?,
            SchemaSource::Names(names) => Schema::new("R", names.iter().map(String::as_str))
                .map_err(|e| invalid(e.to_string()))?,
        };
        let mut symbols = SymbolTable::new();
        let cache_shards = config.cache_shards.max(1);
        // Boot runs the same build as a hot-swap (lint + certify + compile),
        // but tolerates red verdicts — `GET /readyz` reports them as 503
        // instead, so a probe can distinguish "bad rules" from "down".
        let (bundle, cert, _spans) = build_bundle(&text, &schema, &mut symbols, cache_shards, 0)
            .map_err(|e| invalid(e.message()))?;
        cert.observe(&MetricsObserver::new(&registry));

        let quality = (config.quality_window > 0).then(|| {
            let qcfg = QualityConfig {
                window_rows: config.quality_window,
                alerts: config.quality_alerts.clone(),
                ..QualityConfig::default()
            };
            let names = schema.attr_names().map(str::to_string).collect();
            QualityMonitor::new(qcfg, names).with_registry(&registry)
        });

        let state = Arc::new(DaemonState {
            schema,
            bundle: RwLock::new(Arc::new(bundle)),
            engine: config.engine,
            cache_shards,
            symbols: RwLock::new(symbols),
            registry: registry.clone(),
            health: HealthEvaluator::new(config.slo),
            journal: TraceJournal::new(config.trace_clock),
            ledger: ProvenanceLedger::new(),
            trace_index: Mutex::new(TraceIndex::default()),
            trace_seq: AtomicU64::new(0),
            rows_served: AtomicUsize::new(0),
            use_cache: config.plan_cache,
            trace_sample: config.trace_sample,
            quality,
            quality_gate: config.quality_gate,
            stop: AtomicBool::new(false),
            journal_path: config.journal_path.clone(),
        });
        // The journal leads with the configuration a reader needs to
        // interpret it — in particular the row-event sampling regime.
        state.journal.event(
            "trace.meta",
            0,
            Json::obj([
                ("quality_window", Json::from(config.quality_window)),
                ("row_event_sample", Json::from(config.trace_sample)),
                ("source", Json::from("fixd")),
            ]),
        );

        if let Some(warm_path) = &config.warm {
            warm_cache(&state, warm_path).map_err(|e| invalid(e.message))?;
        }

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let threads = config.threads.max(1);
        let accept = {
            let state = Arc::clone(&state);
            thread::spawn(move || accept_loop(listener, state, threads))
        };
        obs::info!("fixd.listening", addr = addr, threads = threads);
        Ok(Daemon {
            addr,
            state,
            accept,
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` configs).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry collecting per-endpoint telemetry.
    pub fn registry(&self) -> MetricsRegistry {
        self.state.registry.clone()
    }

    /// Memoized repair plans currently in the serving bundle's cache.
    pub fn plan_cache_len(&self) -> usize {
        self.state.bundle().cache.len()
    }

    /// Hit/miss/eviction counters of the serving bundle's plan cache.
    pub fn plan_cache_stats(&self) -> fixrules::repair::PlanCacheStats {
        self.state.bundle().cache.stats()
    }

    /// The generation of the serving rule set: 0 at boot, +1 per
    /// promoted `POST /rules` hot-swap.
    pub fn rules_generation(&self) -> u64 {
        self.state.bundle().generation
    }

    /// The current rolling SLO verdict (what `GET /readyz` consults).
    pub fn health_report(&self) -> obs::HealthReport {
        self.state.health.report()
    }

    /// The journal so far, serialized as JSONL.
    pub fn journal_jsonl(&self) -> String {
        self.state.journal.to_jsonl()
    }

    /// Request a graceful stop and block until in-flight requests drain
    /// and the journal is flushed.
    pub fn shutdown(self) {
        self.state.stop.store(true, Ordering::SeqCst);
        let _ = self.accept.join();
    }

    /// Block until the daemon stops on its own (`POST /shutdown`).
    pub fn wait(self) {
        let _ = self.accept.join();
    }
}

/// Repair every row of `path` once so its tuple signatures are memoized
/// before the first request. Deliberately invisible: no provenance, no
/// request metrics, no global row ids consumed.
fn plan_cache<'a>(state: &DaemonState, bundle: &'a ProgramBundle) -> Option<&'a PlanCache> {
    state.use_cache.then_some(&bundle.cache)
}

fn warm_cache(state: &DaemonState, path: &str) -> Result<usize, SrvError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SrvError::new(400, format!("reading {path}: {e}")))?;
    let mut rows = parse_csv_rows(state, &text)?;
    let bundle = state.bundle();
    let mut scratch = CompiledScratch::new(bundle.rules.len());
    for row in &mut rows {
        repair_row_compiled(
            &bundle.rules,
            &bundle.program,
            state.engine,
            plan_cache(state, &bundle),
            &mut scratch,
            row,
            &obs::NoopObserver,
        );
    }
    Ok(rows.len())
}

/// Accept loop + fixed worker pool. Runs until the stop flag is set, then
/// drains: the channel sender drops, each worker finishes its in-flight
/// connection and exits, and the journal is flushed.
fn accept_loop(listener: TcpListener, state: Arc<DaemonState>, threads: usize) {
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..threads)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            thread::spawn(move || {
                // One scratch per worker, reused across every request it
                // serves — zero steady-state allocation in the hot path.
                // Survives hot-swaps: `begin_tuple` resizes the scratch
                // whenever the rule count changes.
                let mut scratch = CompiledScratch::new(state.bundle().rules.len());
                loop {
                    let stream = match rx.lock().unwrap().recv() {
                        Ok(stream) => stream,
                        Err(_) => break, // sender dropped: drain complete
                    };
                    handle_connection(&state, &mut scratch, stream);
                }
            })
        })
        .collect();

    while !state.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // A send can only fail after drain starts; drop the
                // connection in that case.
                let _ = tx.send(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
    drop(tx);
    for worker in workers {
        let _ = worker.join();
    }
    if let Some(path) = &state.journal_path {
        if let Err(e) = std::fs::write(path, state.journal.to_jsonl()) {
            obs::info!("fixd.journal_flush_failed", path = path, error = e);
        }
    }
    obs::info!(
        "fixd.stopped",
        rows_served = state.rows_served.load(Ordering::SeqCst)
    );
}

/// Which label the request contributes to `http.requests{endpoint=...}`.
fn endpoint_label(request: &Request) -> &'static str {
    match request.path.as_str() {
        "/repair" => "repair",
        "/check" => "check",
        "/rules" => "rules",
        "/metrics" | "/metrics.json" => "metrics",
        "/quality" => "quality",
        "/healthz" => "healthz",
        "/readyz" => "readyz",
        "/shutdown" => "shutdown",
        p if p.starts_with("/explain/") => "explain",
        p if p.starts_with("/trace/") => "trace",
        _ => "other",
    }
}

/// Endpoints whose outcomes feed the SLO window. Scrapes and probes are
/// excluded so a tight scrape interval can't dilute (or trip) the SLO.
fn counts_for_slo(endpoint: &str) -> bool {
    matches!(endpoint, "repair" | "check" | "explain" | "trace")
}

fn handle_connection(state: &DaemonState, scratch: &mut CompiledScratch, mut stream: TcpStream) {
    let started = Instant::now();
    let request = match Request::read_from(&mut stream) {
        Ok(request) => request,
        Err(e) => {
            let response = Response::json(400, format!("{{\"error\":{:?}}}\n", e.to_string()));
            state
                .registry
                .counter_with("http.requests", &[("endpoint", "other"), ("status", "400")])
                .inc();
            let _ = response.write_to(&mut stream);
            return;
        }
    };
    let endpoint = endpoint_label(&request);
    let response = match route(state, scratch, &request, endpoint) {
        Ok(response) => response,
        Err(e) => Response::json(
            e.status,
            format!("{}\n", Json::obj([("error", Json::from(e.message))])),
        ),
    };
    let latency_ns = started.elapsed().as_nanos() as u64;
    state
        .registry
        .counter_with(
            "http.requests",
            &[
                ("endpoint", endpoint),
                ("status", &response.status.to_string()),
            ],
        )
        .inc();
    state
        .registry
        .histogram_with("http.latency_ns", &[("endpoint", endpoint)])
        .record(latency_ns);
    if counts_for_slo(endpoint) {
        state.health.record(response.status < 500, latency_ns);
    }
    let _ = response.write_to(&mut stream);
}

fn route(
    state: &DaemonState,
    scratch: &mut CompiledScratch,
    request: &Request,
    endpoint: &str,
) -> SrvResult {
    match (request.method.as_str(), endpoint) {
        ("POST", "repair") => handle_repair(state, scratch, request),
        ("POST", "check") => handle_check(state, scratch, request),
        ("POST", "rules") => handle_rules(state, request),
        ("GET", "explain") => handle_explain(state, request),
        ("GET", "trace") => handle_trace(state, request),
        ("GET", "metrics") => Ok(handle_metrics(state, request)),
        ("GET", "quality") => Ok(handle_quality(state)),
        ("GET", "healthz") => Ok(Response::text(200, "ok\n")),
        ("GET", "readyz") => Ok(handle_readyz(state)),
        ("POST", "shutdown") => {
            state.stop.store(true, Ordering::SeqCst);
            Ok(Response::text(202, "draining\n"))
        }
        (_, "other") => Err(SrvError::new(404, format!("no route {}", request.path))),
        (method, _) => Err(SrvError::new(
            405,
            format!("{method} not allowed on {}", request.path),
        )),
    }
}

/// Parse a request body into rows in daemon-schema attribute order,
/// interning new values into the shared symbol table.
fn parse_rows(state: &DaemonState, request: &Request) -> Result<Vec<Vec<Symbol>>, SrvError> {
    let body = request.body_str();
    if body.trim().is_empty() {
        return Err(bad_request("empty request body"));
    }
    let is_json = request
        .header("content-type")
        .map(|ct| ct.contains("json"))
        .unwrap_or_else(|| matches!(body.trim_start().as_bytes().first(), Some(b'{' | b'[')));
    if is_json {
        parse_json_rows(state, &body)
    } else {
        parse_csv_rows(state, &body)
    }
}

/// CSV with a header row. Columns may come in any order; every daemon
/// schema attribute must be present and unknown columns are rejected —
/// silently dropping a column the rules constrain would repair against
/// evidence the client never sent.
///
/// Parsing interns into a request-local [`SymbolTable`], then maps the
/// cells onto the shared table via [`intern_rows`] — so concurrent
/// batches parse in parallel instead of serializing on the write lock.
fn parse_csv_rows(state: &DaemonState, body: &str) -> Result<Vec<Vec<Symbol>>, SrvError> {
    let mut local = SymbolTable::new();
    let table = csv_io::read_csv(body.as_bytes(), "request", &mut local)
        .map_err(|e| bad_request(format!("csv: {e}")))?;
    for name in table.schema().attr_names() {
        if state.schema.attr(name).is_none() {
            return Err(bad_request(format!("unknown column {name:?}")));
        }
    }
    let mut columns = Vec::with_capacity(state.schema.arity());
    for name in state.schema.attr_names() {
        let id = table
            .schema()
            .attr(name)
            .ok_or_else(|| bad_request(format!("missing column {name:?}")))?;
        columns.push(id);
    }
    let rows: Vec<Vec<&str>> = (0..table.len())
        .map(|i| {
            columns
                .iter()
                .map(|&c| local.resolve(table.cell(i, c)))
                .collect()
        })
        .collect();
    Ok(intern_rows(state, &rows))
}

/// Map parsed string cells onto the shared symbol table. Steady-state
/// traffic (every value already interned by an earlier batch or the
/// rule set) resolves under the read lock alone; only a batch carrying
/// genuinely new values falls back to the write lock.
fn intern_rows(state: &DaemonState, rows: &[Vec<&str>]) -> Vec<Vec<Symbol>> {
    {
        let symbols = state.symbols.read().unwrap();
        let mut out = Vec::with_capacity(rows.len());
        let mut all_known = true;
        'rows: for row in rows {
            let mut mapped = Vec::with_capacity(row.len());
            for cell in row {
                match symbols.get(cell) {
                    Some(sym) => mapped.push(sym),
                    None => {
                        all_known = false;
                        break 'rows;
                    }
                }
            }
            out.push(mapped);
        }
        if all_known {
            return out;
        }
    }
    let mut symbols = state.symbols.write().unwrap();
    rows.iter()
        .map(|row| row.iter().map(|cell| symbols.intern(cell)).collect())
        .collect()
}

/// JSON rows: either a bare array or `{"rows": [...]}`, each row an
/// object with exactly the daemon schema's attributes as string values.
fn parse_json_rows(state: &DaemonState, body: &str) -> Result<Vec<Vec<Symbol>>, SrvError> {
    let value = obs::json::parse(body).map_err(|e| bad_request(format!("json: {e}")))?;
    let rows_value = value.get("rows").unwrap_or(&value);
    let items = rows_value.as_arr().ok_or_else(|| {
        bad_request("expected a JSON array of row objects (or {\"rows\": [...]})")
    })?;
    let mut rows = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let obj = item
            .as_obj()
            .ok_or_else(|| bad_request(format!("row {i}: expected an object")))?;
        for key in obj.keys() {
            if state.schema.attr(key).is_none() {
                return Err(bad_request(format!("row {i}: unknown attribute {key:?}")));
            }
        }
        let mut row = Vec::with_capacity(state.schema.arity());
        for name in state.schema.attr_names() {
            let cell = obj
                .get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| bad_request(format!("row {i}: missing attribute {name:?}")))?;
            row.push(cell);
        }
        rows.push(row);
    }
    Ok(intern_rows(state, &rows))
}

/// `t` plus exactly eight lowercase hex digits — the shape every
/// daemon-generated id has, and the only shape accepted from callers.
fn valid_trace_id(id: &str) -> bool {
    let bytes = id.as_bytes();
    bytes.len() == 9
        && bytes[0] == b't'
        && bytes[1..]
            .iter()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(b))
}

/// Register `span` under the request's trace id and return it. A caller
/// may supply its own id in an `X-Trace-Id` request header to correlate
/// its logs with the daemon's journal end-to-end; it is honored iff it
/// has the canonical `t%08x` shape (anything else falls back to a
/// generated id — a malformed or hostile header must not pollute the
/// index). `GET /trace/{id}` resolves the newest request under an id, so
/// a caller reusing one id simply shadows its older requests.
fn new_trace_id(state: &DaemonState, span: u64, request: &Request) -> String {
    let trace_id = match request.header("x-trace-id").filter(|id| valid_trace_id(id)) {
        Some(id) => id.to_string(),
        None => format!("t{:08x}", state.trace_seq.fetch_add(1, Ordering::SeqCst)),
    };
    state
        .trace_index
        .lock()
        .unwrap()
        .insert(trace_id.clone(), span);
    trace_id
}

fn handle_repair(
    state: &DaemonState,
    scratch: &mut CompiledScratch,
    request: &Request,
) -> SrvResult {
    let span = state.journal.span("request", 0);
    let trace_id = new_trace_id(state, span.id(), request);
    state.journal.event(
        "request.begin",
        span.id(),
        Json::obj([
            ("bytes", Json::from(request.body.len())),
            ("endpoint", Json::from("repair")),
            ("trace_id", Json::from(trace_id.as_str())),
        ]),
    );
    let mut rows = parse_rows(state, request)?;
    // One bundle snapshot for the whole batch: a concurrent hot-swap must
    // never mix old-rules plans with new-rules attribution mid-request.
    let bundle = state.bundle();
    let row_base = state.rows_served.fetch_add(rows.len(), Ordering::SeqCst);
    let metrics = MetricsObserver::new(&state.registry);
    let provenance = ProvenanceObserver::new(&bundle.rules, &state.ledger);
    let observer = Tee(&metrics, &provenance);
    let mut repaired_rows = 0usize;
    let repair_started = Instant::now();
    let all_updates = {
        let repair_span = state.journal.span("repair", span.id());
        // Column-major copy of the batch for the group-by-plan core;
        // `rows` keeps the pre-repair values until the quality replay
        // below has scored the incoming distribution.
        let mut cols: Vec<Vec<Symbol>> = vec![Vec::with_capacity(rows.len()); state.schema.arity()];
        for row in &rows {
            for (col, &sym) in cols.iter_mut().zip(row.iter()) {
                col.push(sym);
            }
        }
        let mut col_slices: Vec<&mut [Symbol]> =
            cols.iter_mut().map(|c| c.as_mut_slice()).collect();
        let (all_updates, _batch) = repair_columns_grouped(
            &bundle.rules,
            &bundle.program,
            state.engine,
            plan_cache(state, &bundle),
            scratch,
            &mut col_slices,
            row_base,
            &observer,
        );
        // Replay the fix stream per row for the quality monitor, which
        // attributes repairs to the window that observed the row — so
        // each row's `row_observed` (on the *incoming* values) must
        // immediately precede its `cell_repaired`s, exactly as in the
        // row-at-a-time loop.
        let mut pre: Vec<u32> = Vec::with_capacity(state.schema.arity());
        let mut cursor = 0usize;
        for (i, row) in rows.iter().enumerate() {
            if let Some(quality) = &state.quality {
                pre.clear();
                pre.extend(row.iter().map(|s| s.0));
                quality.row_observed(&pre);
            }
            let start = cursor;
            while cursor < all_updates.len() && all_updates[cursor].row == row_base + i {
                cursor += 1;
            }
            if start == cursor {
                continue;
            }
            repaired_rows += 1;
            if let Some(quality) = &state.quality {
                for (ordinal, update) in all_updates[start..cursor].iter().enumerate() {
                    quality.cell_repaired(update.as_fix(ordinal));
                }
            }
            // Row-level detail is sampled: a large dirty batch would
            // otherwise append thousands of journal records per request
            // (one global mutex hit each) and grow the in-memory journal
            // without bound under sustained traffic. The request.end
            // record always carries the exact totals.
            if repaired_rows <= state.trace_sample {
                state.journal.event(
                    "row.repaired",
                    repair_span.id(),
                    Json::obj([
                        ("row", Json::from(row_base + i)),
                        ("updates", Json::from(cursor - start)),
                    ]),
                );
            }
        }
        // Apply the fixes to the row-major batch for the response (the
        // updates are in application order per row, so the last write to
        // a cell wins — the same final value the columns hold).
        for update in &all_updates {
            rows[update.row - row_base][update.attr.index()] = update.new;
        }
        all_updates
    };
    // Stage-level latency: end-to-end `http.latency_ns` is dominated by
    // transport and (de)serialization, so the plan-cache effect is only
    // visible on the repair loop itself.
    state
        .registry
        .histogram_with(
            "serve.repair_stage_ns",
            &[("cache", if state.use_cache { "on" } else { "off" })],
        )
        .record(repair_started.elapsed().as_nanos() as u64);
    state.journal.event(
        "request.end",
        span.id(),
        Json::obj([
            ("repaired_rows", Json::from(repaired_rows)),
            (
                "rows_sampled",
                Json::from(repaired_rows.min(state.trace_sample)),
            ),
            ("rows", Json::from(rows.len())),
            ("updates", Json::from(all_updates.len())),
        ]),
    );
    let updates_json: Vec<Json> = {
        let symbols = state.symbols.read().unwrap();
        all_updates
            .iter()
            .map(|update| {
                Json::obj([
                    ("attr", Json::from(state.schema.attr_name(update.attr))),
                    ("new", Json::from(symbols.resolve(update.new))),
                    ("old", Json::from(symbols.resolve(update.old))),
                    ("round", Json::from(u64::from(update.round))),
                    ("row", Json::from(update.row)),
                    ("rule", Json::from(update.rule.index())),
                ])
            })
            .collect()
    };
    let response = if request.query.contains("format=csv") {
        Response::new(200, "text/csv; charset=utf-8", render_csv(state, &rows))
    } else {
        let symbols = state.symbols.read().unwrap();
        let rows_json: Vec<Json> = rows
            .iter()
            .map(|row| {
                Json::Arr(
                    row.iter()
                        .map(|&sym| Json::from(symbols.resolve(sym)))
                        .collect(),
                )
            })
            .collect();
        let columns: Vec<Json> = state.schema.attr_names().map(Json::from).collect();
        Response::json(
            200,
            format!(
                "{}\n",
                Json::obj([
                    ("columns", Json::Arr(columns)),
                    ("repaired_rows", Json::from(repaired_rows)),
                    ("row_base", Json::from(row_base)),
                    ("rows", Json::Arr(rows_json)),
                    ("trace_id", Json::from(trace_id.as_str())),
                    ("updates", Json::Arr(updates_json)),
                ])
            ),
        )
    };
    Ok(response.with_header("X-Trace-Id", &trace_id))
}

fn render_csv(state: &DaemonState, rows: &[Vec<Symbol>]) -> Vec<u8> {
    let symbols = state.symbols.read().unwrap();
    let mut out = String::new();
    out.push_str(&state.schema.attr_names().collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<&str> = row.iter().map(|&sym| symbols.resolve(sym)).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out.into_bytes()
}

/// Dry-run repair: same parsing and the same shared plan cache (a check
/// warms plans for the repair that follows), but nothing is recorded —
/// no ledger rows, no global row ids.
fn handle_check(
    state: &DaemonState,
    scratch: &mut CompiledScratch,
    request: &Request,
) -> SrvResult {
    let span = state.journal.span("request", 0);
    let trace_id = new_trace_id(state, span.id(), request);
    state.journal.event(
        "request.begin",
        span.id(),
        Json::obj([
            ("endpoint", Json::from("check")),
            ("trace_id", Json::from(trace_id.as_str())),
        ]),
    );
    let mut rows = parse_rows(state, request)?;
    let bundle = state.bundle();
    let mut per_row = Vec::with_capacity(rows.len());
    let mut dirty_rows = 0usize;
    let mut total_updates = 0usize;
    for row in rows.iter_mut() {
        let updates = repair_row_compiled(
            &bundle.rules,
            &bundle.program,
            state.engine,
            plan_cache(state, &bundle),
            scratch,
            row,
            &obs::NoopObserver,
        );
        if !updates.is_empty() {
            dirty_rows += 1;
            total_updates += updates.len();
        }
        per_row.push(Json::from(updates.len()));
    }
    state.journal.event(
        "request.end",
        span.id(),
        Json::obj([
            ("dirty_rows", Json::from(dirty_rows)),
            ("rows", Json::from(rows.len())),
        ]),
    );
    let body = Json::obj([
        ("clean", Json::from(dirty_rows == 0)),
        ("dirty_rows", Json::from(dirty_rows)),
        ("per_row", Json::Arr(per_row)),
        ("rows", Json::from(rows.len())),
        ("total_updates", Json::from(total_updates)),
        ("trace_id", Json::from(trace_id.as_str())),
    ]);
    Ok(Response::json(200, format!("{body}\n")).with_header("X-Trace-Id", &trace_id))
}

/// `POST /rules` — certified hot-swap of the serving rule set.
///
/// The body is rule text against the daemon's (fixed) schema. It is
/// parsed, linted, certified by `fixcert`, and semantically diffed
/// against the serving set. Promotion is all-or-nothing:
///
/// * parse error → `400`, lint errors or a red certificate → `422`; in
///   every rejection the old bundle keeps serving untouched and the
///   response says why (`promoted: false`, the findings, the diff);
/// * a green certificate atomically swaps in a freshly compiled
///   [`ProgramBundle`] with an **empty plan cache** — memoized plans
///   from the old rules must never replay against the new ones.
fn handle_rules(state: &DaemonState, request: &Request) -> SrvResult {
    let span = state.journal.span("request", 0);
    let trace_id = new_trace_id(state, span.id(), request);
    let text = request.body_str();
    if text.trim().is_empty() {
        return Err(bad_request("empty rule text"));
    }
    state.journal.event(
        "request.begin",
        span.id(),
        Json::obj([
            ("bytes", Json::from(request.body.len())),
            ("endpoint", Json::from("rules")),
            ("trace_id", Json::from(trace_id.as_str())),
        ]),
    );
    // Swaps are rare administrative operations: hold the symbol-table
    // write lock across the whole build so rule symbols intern against a
    // stable table (no lost-intern race with concurrent batches).
    let mut symbols = state.symbols.write().unwrap();
    let (mut candidate, cert, spans) =
        build_bundle(&text, &state.schema, &mut symbols, state.cache_shards, 0)
            .map_err(|e| bad_request(format!("rules: {}", e.message())))?;
    cert.observe(&MetricsObserver::new(&state.registry));
    let serving = state.bundle();
    let delta = fixlint::fixcert::diff(
        &serving.rules,
        &candidate.rules,
        &spans,
        &symbols,
        &fixlint::CertOptions::default(),
    );
    let findings: Vec<Json> = cert
        .report
        .diagnostics
        .iter()
        .map(|d| {
            Json::from(format!(
                "{}[{}]: {}",
                d.severity.as_str(),
                d.code.as_str(),
                d.message
            ))
        })
        .collect();
    let lint_errors = candidate.lint_errors;
    let accepted = lint_errors == 0 && candidate.certified;
    let generation = if accepted {
        // Fix the generation under the bundle write lock so concurrent
        // swaps serialize into strictly increasing generations.
        let mut slot = state.bundle.write().unwrap();
        candidate.generation = slot.generation + 1;
        let generation = candidate.generation;
        *slot = Arc::new(candidate);
        generation
    } else {
        serving.generation
    };
    state.journal.event(
        "rules.swap",
        span.id(),
        Json::obj([
            ("certified", Json::from(cert.is_certified())),
            ("generation", Json::from(generation)),
            ("lint_errors", Json::from(lint_errors)),
            ("promoted", Json::from(accepted)),
        ]),
    );
    let body = Json::obj([
        ("cert_errors", Json::from(cert.report.errors())),
        ("certified", Json::from(cert.is_certified())),
        ("diff", delta.to_json()),
        ("findings", Json::Arr(findings)),
        ("generation", Json::from(generation)),
        ("lint_errors", Json::from(lint_errors)),
        ("promoted", Json::from(accepted)),
        ("trace_id", Json::from(trace_id.as_str())),
    ]);
    let status = if accepted { 200 } else { 422 };
    Ok(Response::json(status, format!("{body}\n")).with_header("X-Trace-Id", &trace_id))
}

/// `GET /explain/{row}/{attr}` — the provenance chain justifying the
/// current value of one cell, one JSON record per line (newest last).
fn handle_explain(state: &DaemonState, request: &Request) -> SrvResult {
    let rest = request.path.trim_start_matches("/explain/");
    let (row_text, attr_name) = rest
        .split_once('/')
        .ok_or_else(|| bad_request("expected /explain/{row}/{attr}"))?;
    let row: usize = row_text
        .parse()
        .map_err(|_| bad_request(format!("bad row index {row_text:?}")))?;
    let attr = state
        .schema
        .attr(attr_name)
        .ok_or_else(|| SrvError::new(404, format!("unknown attribute {attr_name:?}")))?;
    let chain = state.ledger.chain_for(row, attr);
    if chain.is_empty() {
        return Err(SrvError::new(
            404,
            format!("no provenance for row {row} attribute {attr_name:?}"),
        ));
    }
    let symbols = state.symbols.read().unwrap();
    let mut body = String::new();
    for record in &chain {
        body.push_str(&record.to_json(&state.schema, &symbols).to_string());
        body.push('\n');
    }
    Ok(Response::new(
        200,
        "application/jsonl; charset=utf-8",
        body.into_bytes(),
    ))
}

/// `GET /trace/{id}` — replay one request's records from the global
/// journal: the root `request` span plus every descendant, in journal
/// order. `?format=chrome` converts to the Chrome trace-event JSON.
fn handle_trace(state: &DaemonState, request: &Request) -> SrvResult {
    let trace_id = request.path.trim_start_matches("/trace/");
    let root = state
        .trace_index
        .lock()
        .unwrap()
        .lookup(trace_id)
        .ok_or_else(|| SrvError::new(404, format!("unknown trace id {trace_id:?}")))?;
    // Parents always precede children in append order, so one forward
    // pass with a membership set reconstructs the subtree.
    let mut members = std::collections::HashSet::from([root]);
    let subtree: Vec<TraceRecord> = state
        .journal
        .records()
        .into_iter()
        .filter(|record| {
            if record.span == root || members.contains(&record.parent) {
                if record.phase == TracePhase::SpanBegin {
                    members.insert(record.span);
                }
                return true;
            }
            false
        })
        .collect();
    if request.query.contains("format=chrome") {
        let chrome = obs::trace::chrome_trace(&subtree);
        return Ok(Response::json(200, format!("{chrome}\n")));
    }
    let mut body = String::new();
    for record in &subtree {
        body.push_str(&record.to_json().to_string());
        body.push('\n');
    }
    Ok(Response::new(
        200,
        "application/jsonl; charset=utf-8",
        body.into_bytes(),
    ))
}

/// `GET /quality` — the [`QualityMonitor`] snapshot: configuration,
/// logical window clock, the in-progress window's signals, sealed window
/// history, and the active alert set. Byte-deterministic for a given
/// request sequence (integer counts and per-mille ratios only).
fn handle_quality(state: &DaemonState) -> Response {
    match &state.quality {
        Some(quality) => {
            let mut snapshot = quality.snapshot();
            snapshot.set("enabled", true);
            Response::json(200, format!("{}\n", snapshot.to_string_pretty()))
        }
        None => Response::json(
            200,
            format!("{}\n", Json::obj([("enabled", Json::from(false))])),
        ),
    }
}

fn handle_metrics(state: &DaemonState, request: &Request) -> Response {
    let snapshot = state.registry.snapshot();
    if request.path == "/metrics.json" {
        Response::json(200, format!("{snapshot}\n"))
    } else {
        Response::new(
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus_text(&snapshot).into_bytes(),
        )
    }
}

/// Readiness: lint-clean rules, a consistent rule set, a green `fixcert`
/// certificate (termination + confluence), at least one memoized plan
/// (the cache is warm), and green SLOs. With the opt-in quality gate,
/// active quality alerts also flip readiness (without the gate they are
/// reported but never gate). `503` otherwise, with every sub-verdict in
/// the JSON body.
fn handle_readyz(state: &DaemonState) -> Response {
    let report = state.health.report();
    let bundle = state.bundle();
    let lint_clean = bundle.lint_errors == 0;
    // With the cache disabled there is nothing to warm; don't gate
    // readiness on it.
    let cache_warm = !state.use_cache || !bundle.cache.is_empty();
    let quality_alerts = state
        .quality
        .as_ref()
        .map_or(0, |quality| quality.active_alerts().len());
    let quality_ok = !state.quality_gate || quality_alerts == 0;
    let ready = lint_clean
        && bundle.consistent
        && bundle.certified
        && cache_warm
        && report.healthy
        && quality_ok;
    let body = Json::obj([
        ("cache_plans", Json::from(bundle.cache.len())),
        ("cache_warm", Json::from(cache_warm)),
        ("cert_errors", Json::from(bundle.cert_errors)),
        ("certified", Json::from(bundle.certified)),
        ("consistent", Json::from(bundle.consistent)),
        ("generation", Json::from(bundle.generation)),
        ("health", report.to_json()),
        ("lint_clean", Json::from(lint_clean)),
        ("lint_errors", Json::from(bundle.lint_errors)),
        ("quality_alerts", Json::from(quality_alerts)),
        ("quality_gate", Json::from(state.quality_gate)),
        ("quality_ok", Json::from(quality_ok)),
        ("ready", Json::from(ready)),
        (
            "rows_served",
            Json::from(state.rows_served.load(Ordering::SeqCst)),
        ),
        ("rules", Json::from(bundle.rules.len())),
    ]);
    Response::json(if ready { 200 } else { 503 }, format!("{body}\n"))
}
