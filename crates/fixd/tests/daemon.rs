//! End-to-end tests of the `fixd` daemon over real loopback sockets:
//! batch repair in both body formats, the shared warm plan cache under
//! concurrent clients, trace retrieval, SLO-driven readiness, provenance
//! explain, error paths, and graceful shutdown with a parseable journal.

use std::sync::atomic::{AtomicUsize, Ordering};

use fixd::{Daemon, DaemonConfig, RulesSource, SchemaSource};
use obs::http::{http_get, http_post, http_request};
use obs::{Json, SloConfig};

const RULES: &str = r#"
IF zip = "36545" AND city IN {"Jackson Heights", "Jaxon"} THEN city := "Jackson"
IF zip = "36545" AND state IN {"AK"} THEN state := "AL"
IF zip = "10001" AND city IN {"NYC", "New-York"} THEN city := "New York"
IF zip = "10001" AND state IN {"NJ"} THEN state := "NY"
"#;

fn daemon() -> Daemon {
    Daemon::start(DaemonConfig {
        rules: RulesSource::Inline(RULES.to_string()),
        threads: 4,
        ..DaemonConfig::default()
    })
    .unwrap()
}

fn url(daemon: &Daemon, path: &str) -> String {
    format!("http://{}{}", daemon.addr(), path)
}

fn parse_json(body: &str) -> Json {
    obs::json::parse(body).expect("response body must be JSON")
}

#[test]
fn repairs_a_csv_batch_and_serves_its_trace() {
    let daemon = daemon();
    let body = "zip,city,state\n36545,Jaxon,AK\n10001,New York,NY\n";
    let reply = http_post(&url(&daemon, "/repair"), "text/csv", body.as_bytes()).unwrap();
    assert_eq!(reply.status, 200);
    let json = parse_json(&reply.body);
    assert_eq!(json.get("repaired_rows").unwrap().as_i64(), Some(1));
    assert_eq!(json.get("row_base").unwrap().as_i64(), Some(0));
    let rows = json.get("rows").unwrap().as_arr().unwrap();
    let first = rows[0].as_arr().unwrap();
    // Schema is inferred from the rules: zip, city, state.
    assert_eq!(first[1].as_str(), Some("Jackson"));
    assert_eq!(first[2].as_str(), Some("AL"));
    assert_eq!(rows[1].as_arr().unwrap()[1].as_str(), Some("New York"));

    // The trace id is in both the header and the body, and resolves to a
    // JSONL subtree with the request/repair spans and row events.
    let trace_id = json.get("trace_id").unwrap().as_str().unwrap().to_string();
    let header = reply
        .headers
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case("x-trace-id"))
        .map(|(_, value)| value.as_str());
    assert_eq!(header, Some(trace_id.as_str()));
    let (status, trace) = http_get(&url(&daemon, &format!("/trace/{trace_id}"))).unwrap();
    assert_eq!(status, 200);
    let records = obs::trace::parse_jsonl(&trace).unwrap();
    assert!(records.iter().any(|r| r.name == "request"));
    assert!(records.iter().any(|r| r.name == "repair"));
    assert_eq!(
        records.iter().filter(|r| r.name == "row.repaired").count(),
        1
    );

    // Chrome export of the same subtree wraps the events for
    // chrome://tracing.
    let (status, chrome) =
        http_get(&url(&daemon, &format!("/trace/{trace_id}?format=chrome"))).unwrap();
    assert_eq!(status, 200);
    let events = parse_json(&chrome);
    let events = events.get("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), records.len());
    daemon.shutdown();
}

#[test]
fn accepts_json_rows_and_reordered_csv_columns() {
    let daemon = daemon();
    // JSON rows under {"rows": [...]}.
    let body = r#"{"rows":[{"zip":"36545","city":"Jaxon","state":"AL"}]}"#;
    let reply = http_post(
        &url(&daemon, "/repair"),
        "application/json",
        body.as_bytes(),
    )
    .unwrap();
    assert_eq!(reply.status, 200);
    let json = parse_json(&reply.body);
    let row = json.get("rows").unwrap().as_arr().unwrap()[0]
        .as_arr()
        .unwrap();
    assert_eq!(row[1].as_str(), Some("Jackson"));

    // CSV columns in a different order than the daemon schema.
    let body = "state,zip,city\nAK,36545,Jackson\n";
    let reply = http_post(&url(&daemon, "/repair"), "text/csv", body.as_bytes()).unwrap();
    assert_eq!(reply.status, 200);
    let json = parse_json(&reply.body);
    let row = json.get("rows").unwrap().as_arr().unwrap()[0]
        .as_arr()
        .unwrap();
    assert_eq!(
        row[2].as_str(),
        Some("AL"),
        "state column remapped and repaired"
    );

    // format=csv echoes the repaired batch as CSV in schema order.
    let reply = http_request(
        "POST",
        &url(&daemon, "/repair?format=csv"),
        "text/csv",
        "zip,city,state\n36545,Jaxon,AK\n".as_bytes(),
    )
    .unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.body, "zip,city,state\n36545,Jackson,AL\n");
    daemon.shutdown();
}

#[test]
fn concurrent_batches_share_one_warm_plan_cache() {
    let daemon = daemon();
    let repair_url = url(&daemon, "/repair");
    // 4 distinct dirty signatures, hammered by 8 clients × 5 batches.
    let batch = "zip,city,state\n\
                 36545,Jaxon,AL\n36545,Jackson,AK\n10001,NYC,NY\n10001,New York,NJ\n";
    let served = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let repair_url = &repair_url;
            let served = &served;
            s.spawn(move || {
                for _ in 0..5 {
                    let reply = http_post(repair_url, "text/csv", batch.as_bytes()).unwrap();
                    assert_eq!(reply.status, 200);
                    let json = parse_json(&reply.body);
                    assert_eq!(json.get("repaired_rows").unwrap().as_i64(), Some(4));
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(served.load(Ordering::Relaxed), 40);
    // 160 rows, only 4 distinct signatures: the shared cache holds the 4
    // plans and almost every row replayed a memoized plan.
    let stats = daemon.plan_cache_stats();
    assert_eq!(stats.entries, 4);
    assert_eq!(stats.hits + stats.misses, 160);
    assert!(stats.hits >= 156, "cross-request hits, got {stats:?}");
    // Each batch is a distinct request with its own trace id and global
    // row ids: 40 requests × 4 rows.
    let (_, readyz) = http_get(&url(&daemon, "/readyz")).unwrap();
    let json = parse_json(&readyz);
    assert_eq!(json.get("rows_served").unwrap().as_i64(), Some(160));
    daemon.shutdown();
}

#[test]
fn readyz_needs_a_warm_cache_and_green_slos() {
    let daemon = daemon();
    // Liveness is unconditional; readiness wants a warm plan cache.
    let (status, body) = http_get(&url(&daemon, "/healthz")).unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, body) = http_get(&url(&daemon, "/readyz")).unwrap();
    assert_eq!(status, 503);
    let json = parse_json(&body);
    assert_eq!(json.get("cache_warm").unwrap().as_bool(), Some(false));
    assert_eq!(json.get("lint_clean").unwrap().as_bool(), Some(true));
    assert_eq!(json.get("consistent").unwrap().as_bool(), Some(true));

    // The first repair warms the cache; readiness flips green.
    let body = "zip,city,state\n36545,Jaxon,AL\n";
    http_post(&url(&daemon, "/repair"), "text/csv", body.as_bytes()).unwrap();
    let (status, body) = http_get(&url(&daemon, "/readyz")).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        parse_json(&body).get("ready").unwrap().as_bool(),
        Some(true)
    );
    daemon.shutdown();
}

#[test]
fn slo_breach_turns_readiness_red_while_liveness_stays_green() {
    // A p99 ceiling of 0ns is unsatisfiable once min_samples arrive.
    let daemon = Daemon::start(DaemonConfig {
        rules: RulesSource::Inline(RULES.to_string()),
        slo: SloConfig {
            window: 8,
            min_samples: 3,
            max_error_rate: 1.0,
            max_p99_ns: 0,
        },
        ..DaemonConfig::default()
    })
    .unwrap();
    let body = "zip,city,state\n36545,Jaxon,AL\n";
    for _ in 0..3 {
        let reply = http_post(&url(&daemon, "/repair"), "text/csv", body.as_bytes()).unwrap();
        assert_eq!(reply.status, 200);
    }
    let (status, readyz) = http_get(&url(&daemon, "/readyz")).unwrap();
    assert_eq!(status, 503, "latency SLO breach must fail readiness");
    let json = parse_json(&readyz);
    assert_eq!(json.get("cache_warm").unwrap().as_bool(), Some(true));
    let health = json.get("health").unwrap();
    assert_eq!(health.get("healthy").unwrap().as_bool(), Some(false));
    assert_eq!(health.get("latency_ok").unwrap().as_bool(), Some(false));
    let (status, _) = http_get(&url(&daemon, "/healthz")).unwrap();
    assert_eq!(status, 200, "liveness is not SLO-gated");
    daemon.shutdown();
}

#[test]
fn check_is_a_dry_run_over_the_shared_cache() {
    let daemon = daemon();
    let body = "zip,city,state\n36545,Jaxon,AL\n10001,New York,NY\n";
    let reply = http_post(&url(&daemon, "/check"), "text/csv", body.as_bytes()).unwrap();
    assert_eq!(reply.status, 200);
    let json = parse_json(&reply.body);
    assert_eq!(json.get("clean").unwrap().as_bool(), Some(false));
    assert_eq!(json.get("dirty_rows").unwrap().as_i64(), Some(1));
    assert_eq!(json.get("total_updates").unwrap().as_i64(), Some(1));
    let per_row = json.get("per_row").unwrap().as_arr().unwrap();
    assert_eq!(per_row[0].as_i64(), Some(1));
    assert_eq!(per_row[1].as_i64(), Some(0));
    // Dry runs consume no global row ids and write no provenance, but do
    // warm the shared cache.
    let (_, readyz) = http_get(&url(&daemon, "/readyz")).unwrap();
    let readyz = parse_json(&readyz);
    assert_eq!(readyz.get("rows_served").unwrap().as_i64(), Some(0));
    assert_eq!(readyz.get("cache_warm").unwrap().as_bool(), Some(true));
    let reply = http_get(&url(&daemon, "/explain/0/city")).unwrap();
    assert_eq!(reply.0, 404, "check must not create provenance");
    daemon.shutdown();
}

#[test]
fn explain_serves_the_provenance_chain_with_global_row_ids() {
    let daemon = daemon();
    // Two batches: row ids keep counting across requests.
    for _ in 0..2 {
        let body = "zip,city,state\n36545,Jaxon,AL\n";
        http_post(&url(&daemon, "/repair"), "text/csv", body.as_bytes()).unwrap();
    }
    for row in [0, 1] {
        let (status, body) = http_get(&url(&daemon, &format!("/explain/{row}/city"))).unwrap();
        assert_eq!(status, 200, "row {row} must have provenance");
        let record = parse_json(body.lines().next().unwrap());
        assert_eq!(record.get("row").unwrap().as_i64(), Some(row));
        assert_eq!(record.get("attr").unwrap().as_str(), Some("city"));
        assert_eq!(record.get("new").unwrap().as_str(), Some("Jackson"));
    }
    let (status, _) = http_get(&url(&daemon, "/explain/7/city")).unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_get(&url(&daemon, "/explain/0/nope")).unwrap();
    assert_eq!(status, 404);
    daemon.shutdown();
}

#[test]
fn rejects_malformed_requests_with_structured_errors() {
    let daemon = daemon();
    let cases: Vec<(&str, &str, Vec<u8>, u16)> = vec![
        ("POST", "/repair", Vec::new(), 400), // empty body
        ("POST", "/repair", b"zip,city\n36545,Jaxon\n".to_vec(), 400), // missing column
        (
            "POST",
            "/repair",
            b"zip,city,state,extra\na,b,c,d\n".to_vec(),
            400,
        ), // unknown column
        ("POST", "/repair", b"[{\"zip\":\"1\"}]".to_vec(), 400), // missing attrs
        ("POST", "/repair", b"{\"rows\":[42]}".to_vec(), 400), // non-object row
        ("GET", "/nope", Vec::new(), 404),
        ("GET", "/repair", Vec::new(), 405),
        ("POST", "/healthz", Vec::new(), 405),
        ("GET", "/trace/t12345678", Vec::new(), 404),
    ];
    for (method, path, body, expected) in cases {
        let reply = http_request(method, &url(&daemon, path), "text/plain", &body).unwrap();
        assert_eq!(
            reply.status,
            expected,
            "{method} {path} with {} byte body",
            body.len()
        );
        if expected == 400 || expected == 404 || expected == 405 {
            assert!(
                parse_json(&reply.body).get("error").is_some(),
                "{method} {path}: error body must be structured JSON"
            );
        }
    }
    daemon.shutdown();
}

#[test]
fn csv_header_with_no_rows_repairs_nothing() {
    let daemon = daemon();
    let reply = http_post(&url(&daemon, "/repair"), "text/csv", b"zip,city,state\n").unwrap();
    assert_eq!(reply.status, 200);
    let json = parse_json(&reply.body);
    assert_eq!(
        json.get("rows").unwrap().as_arr().map(<[Json]>::len),
        Some(0)
    );
    daemon.shutdown();
}

#[test]
fn warm_file_and_explicit_schema_make_a_daemon_ready_at_boot() {
    let dir = std::env::temp_dir().join("fixd-test-warm");
    std::fs::create_dir_all(&dir).unwrap();
    let warm = dir.join("warm.csv");
    std::fs::write(&warm, "zip,city,state,extra_ignored\n").ok();
    // Explicit schema: an attribute the rules never mention is legal.
    std::fs::write(&warm, "zip,city,state\n36545,Jaxon,AL\n").unwrap();
    let daemon = Daemon::start(DaemonConfig {
        rules: RulesSource::Inline(RULES.to_string()),
        schema: SchemaSource::Names(vec![
            "zip".to_string(),
            "city".to_string(),
            "state".to_string(),
        ]),
        warm: Some(warm.display().to_string()),
        ..DaemonConfig::default()
    })
    .unwrap();
    let (status, body) = http_get(&url(&daemon, "/readyz")).unwrap();
    assert_eq!(status, 200, "warm file readies the daemon before traffic");
    let json = parse_json(&body);
    assert_eq!(json.get("rows_served").unwrap().as_i64(), Some(0));
    assert!(json.get("cache_plans").unwrap().as_i64().unwrap() >= 1);
    daemon.shutdown();
}

#[test]
fn shutdown_endpoint_drains_and_flushes_a_parseable_journal() {
    let dir = std::env::temp_dir().join("fixd-test-journal");
    std::fs::create_dir_all(&dir).unwrap();
    let journal_path = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&journal_path);
    let daemon = Daemon::start(DaemonConfig {
        rules: RulesSource::Inline(RULES.to_string()),
        journal_path: Some(journal_path.display().to_string()),
        ..DaemonConfig::default()
    })
    .unwrap();
    let base = daemon.addr();
    let body = "zip,city,state\n36545,Jaxon,AL\n";
    let reply = http_post(
        &format!("http://{base}/repair"),
        "text/csv",
        body.as_bytes(),
    )
    .unwrap();
    assert_eq!(reply.status, 200);
    let reply = http_post(&format!("http://{base}/shutdown"), "text/plain", b"").unwrap();
    assert_eq!(reply.status, 202);
    assert_eq!(reply.body, "draining\n");
    daemon.wait();
    // The flushed journal parses and holds the request's span scope.
    let text = std::fs::read_to_string(&journal_path).unwrap();
    let records = obs::trace::parse_jsonl(&text).unwrap();
    assert!(records.iter().any(|r| r.name == "request"));
    assert!(records.iter().any(|r| r.name == "row.repaired"));
    // The daemon socket is gone: a fresh request now fails to connect.
    assert!(http_get(&format!("http://{base}/healthz")).is_err());
}

#[test]
fn metrics_expose_per_endpoint_labeled_series() {
    let daemon = daemon();
    let body = "zip,city,state\n36545,Jaxon,AL\n";
    http_post(&url(&daemon, "/repair"), "text/csv", body.as_bytes()).unwrap();
    http_get(&url(&daemon, "/readyz")).unwrap();
    let (status, text) = http_get(&url(&daemon, "/metrics")).unwrap();
    assert_eq!(status, 200);
    let samples = obs::parse_prometheus(&text).unwrap();
    let series: Vec<String> = samples
        .iter()
        .map(|s| format!("{}{}", s.name, s.labels))
        .collect();
    assert!(
        series.iter().any(|s| s.starts_with("http_requests{")
            && s.contains("endpoint=\"repair\"")
            && s.contains("status=\"200\"")),
        "missing repair counter in {series:?}"
    );
    assert!(
        series.iter().any(|s| s.contains("endpoint=\"readyz\"")),
        "missing readyz counter"
    );
    assert!(
        text.contains("http_latency_ns"),
        "missing latency histograms"
    );
    // The JSON twin parses and carries the same counters section.
    let (status, json) = http_get(&url(&daemon, "/metrics.json")).unwrap();
    assert_eq!(status, 200);
    assert!(parse_json(&json).get("counters").is_some());
    daemon.shutdown();
}

#[test]
fn hot_swap_never_promotes_an_uncertified_rule_set() {
    let daemon = daemon();
    let batch = "zip,city,state\n36545,Jaxon,AL\n";
    let reply = http_post(&url(&daemon, "/repair"), "text/csv", batch.as_bytes()).unwrap();
    assert_eq!(reply.status, 200);
    let (status, _) = http_get(&url(&daemon, "/readyz")).unwrap();
    assert_eq!(status, 200, "daemon must be ready before the bad swap");

    // Unparseable candidate: rejected outright, nothing changes.
    let reply = http_post(&url(&daemon, "/rules"), "text/plain", b"this is not a rule").unwrap();
    assert_eq!(reply.status, 400);

    // A conflicting candidate lints dirty AND certifies red (FR009): the
    // gate must refuse it wholesale.
    let conflicting = "IF zip = \"1\" AND city IN {\"a\"} THEN city := \"b\"\n\
                       IF zip = \"1\" AND city IN {\"a\"} THEN city := \"c\"\n";
    let reply = http_post(
        &url(&daemon, "/rules"),
        "text/plain",
        conflicting.as_bytes(),
    )
    .unwrap();
    assert_eq!(reply.status, 422, "uncertified rules must not promote");
    let json = parse_json(&reply.body);
    assert_eq!(json.get("promoted").unwrap().as_bool(), Some(false));
    assert_eq!(json.get("certified").unwrap().as_bool(), Some(false));
    assert_eq!(json.get("generation").unwrap().as_i64(), Some(0));
    let findings = json.get("findings").unwrap().as_arr().unwrap();
    assert!(
        findings
            .iter()
            .any(|f| f.as_str().is_some_and(|s| s.contains("FR009"))),
        "rejection must carry the confluence finding, got {findings:?}"
    );

    // The old bundle keeps serving: readiness stays green on generation 0
    // and repairs still follow the boot rules.
    let (status, body) = http_get(&url(&daemon, "/readyz")).unwrap();
    assert_eq!(status, 200, "readyz must stay green after a rejected swap");
    let readyz = parse_json(&body);
    assert_eq!(readyz.get("generation").unwrap().as_i64(), Some(0));
    assert_eq!(readyz.get("certified").unwrap().as_bool(), Some(true));
    let reply = http_post(&url(&daemon, "/repair"), "text/csv", batch.as_bytes()).unwrap();
    let row = parse_json(&reply.body)
        .get("rows")
        .unwrap()
        .as_arr()
        .unwrap()[0]
        .as_arr()
        .unwrap()
        .to_vec();
    assert_eq!(row[1].as_str(), Some("Jackson"), "old rules still serve");
    daemon.shutdown();
}

#[test]
fn hot_swap_promotes_certified_rules_and_invalidates_the_plan_cache() {
    let daemon = daemon();
    let batch = "zip,city,state\n36545,Jaxon,AL\n";
    let reply = http_post(&url(&daemon, "/repair"), "text/csv", batch.as_bytes()).unwrap();
    assert_eq!(reply.status, 200);
    assert!(daemon.plan_cache_len() >= 1, "first batch memoizes a plan");
    assert_eq!(daemon.rules_generation(), 0);

    // The replacement set repairs the SAME dirty signature differently:
    // a stale memoized plan would keep producing "Jackson".
    let swapped = "IF zip = \"36545\" AND city IN {\"Jaxon\", \"Jackson Heights\"} THEN city := \"Jacksonville\"\n\
                   IF zip = \"10001\" AND state IN {\"NJ\"} THEN state := \"NY\"\n";
    let reply = http_post(&url(&daemon, "/rules"), "text/plain", swapped.as_bytes()).unwrap();
    assert_eq!(
        reply.status, 200,
        "certified rules must promote: {}",
        reply.body
    );
    let json = parse_json(&reply.body);
    assert_eq!(json.get("promoted").unwrap().as_bool(), Some(true));
    assert_eq!(json.get("certified").unwrap().as_bool(), Some(true));
    assert_eq!(json.get("generation").unwrap().as_i64(), Some(1));
    assert!(json.get("diff").unwrap().get("entries").is_some());
    assert_eq!(
        daemon.plan_cache_len(),
        0,
        "promotion must discard every old-rules plan"
    );

    // Ledger equality with a fresh daemon booted directly on the new set:
    // the swapped daemon's updates must match field-for-field (modulo the
    // daemon-global row id), proving no old plan replayed.
    let fresh = Daemon::start(DaemonConfig {
        rules: RulesSource::Inline(swapped.to_string()),
        schema: SchemaSource::Names(vec![
            "zip".to_string(),
            "city".to_string(),
            "state".to_string(),
        ]),
        ..DaemonConfig::default()
    })
    .unwrap();
    let strip_row = |body: &str| -> Vec<String> {
        parse_json(body)
            .get("updates")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|u| {
                format!(
                    "{}:{}->{} rule={} round={}",
                    u.get("attr").unwrap().as_str().unwrap(),
                    u.get("old").unwrap().as_str().unwrap(),
                    u.get("new").unwrap().as_str().unwrap(),
                    u.get("rule").unwrap().as_i64().unwrap(),
                    u.get("round").unwrap().as_i64().unwrap(),
                )
            })
            .collect()
    };
    let after_swap = http_post(&url(&daemon, "/repair"), "text/csv", batch.as_bytes()).unwrap();
    let from_boot = http_post(&url(&fresh, "/repair"), "text/csv", batch.as_bytes()).unwrap();
    let swapped_updates = strip_row(&after_swap.body);
    assert_eq!(
        swapped_updates,
        strip_row(&from_boot.body),
        "post-swap ledger must equal a fresh boot of the new rules"
    );
    assert_eq!(swapped_updates, ["city:Jaxon->Jacksonville rule=0 round=1"]);
    // Provenance for the post-swap row attributes the NEW rule set.
    let (status, chain) = http_get(&url(&daemon, "/explain/1/city")).unwrap();
    assert_eq!(status, 200);
    assert!(chain.contains("Jacksonville"), "{chain}");

    // Readiness is green again once the new cache warms, on generation 1.
    let (status, body) = http_get(&url(&daemon, "/readyz")).unwrap();
    assert_eq!(status, 200);
    let readyz = parse_json(&body);
    assert_eq!(readyz.get("generation").unwrap().as_i64(), Some(1));
    assert_eq!(readyz.get("rules").unwrap().as_i64(), Some(2));
    fresh.shutdown();
    daemon.shutdown();
}

#[test]
fn rejects_unparseable_and_lint_dirty_rule_sets_at_startup() {
    let err = Daemon::start(DaemonConfig {
        rules: RulesSource::Inline("this is not a rule".to_string()),
        ..DaemonConfig::default()
    })
    .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // Conflicting rules load (the daemon still serves liveness) but the
    // rule set is inconsistent, so readiness stays red forever.
    let conflicting = r#"
IF zip = "1" AND city IN {"a"} THEN city := "b"
IF zip = "1" AND city IN {"a"} THEN city := "c"
"#;
    let daemon = Daemon::start(DaemonConfig {
        rules: RulesSource::Inline(conflicting.to_string()),
        ..DaemonConfig::default()
    })
    .unwrap();
    let (status, body) = http_get(&url(&daemon, "/readyz")).unwrap();
    assert_eq!(status, 503);
    let json = parse_json(&body);
    assert_eq!(json.get("consistent").unwrap().as_bool(), Some(false));
    daemon.shutdown();
}

#[test]
fn caller_supplied_trace_id_is_honored_and_resolvable() {
    let daemon = daemon();
    let body = "zip,city,state\n36545,Jaxon,AK\n";
    let reply = obs::http_request_with_headers(
        "POST",
        &url(&daemon, "/repair"),
        "text/csv",
        body.as_bytes(),
        &[("X-Trace-Id", "t00c0ffee")],
    )
    .unwrap();
    assert_eq!(reply.status, 200);
    let json = parse_json(&reply.body);
    assert_eq!(json.get("trace_id").unwrap().as_str(), Some("t00c0ffee"));
    assert_eq!(reply.header("x-trace-id"), Some("t00c0ffee"));
    // The caller's id resolves through the trace index like a generated
    // one: the subtree holds the request span and its row events.
    let (status, trace) = http_get(&url(&daemon, "/trace/t00c0ffee")).unwrap();
    assert_eq!(status, 200);
    let records = obs::trace::parse_jsonl(&trace).unwrap();
    assert!(records.iter().any(|r| r.name == "request"));
    assert!(records.iter().any(|r| r.name == "row.repaired"));

    // A header without the canonical t%08x shape is ignored: the daemon
    // falls back to a generated id rather than indexing hostile input.
    for bad in ["not-a-trace", "tZZZZZZZZ", "t123", "T00c0ffee"] {
        let reply = obs::http_request_with_headers(
            "POST",
            &url(&daemon, "/repair"),
            "text/csv",
            body.as_bytes(),
            &[("X-Trace-Id", bad)],
        )
        .unwrap();
        assert_eq!(reply.status, 200);
        let json = parse_json(&reply.body);
        let id = json.get("trace_id").unwrap().as_str().unwrap().to_string();
        assert_ne!(id, bad, "malformed id must not be honored");
        assert!(
            id.starts_with('t') && id.len() == 9,
            "generated shape: {id}"
        );
    }
    daemon.shutdown();
}

#[test]
fn trace_sample_zero_disables_row_events_and_is_recorded() {
    let dir = std::env::temp_dir().join("fixd-test-trace-sample");
    std::fs::create_dir_all(&dir).unwrap();
    let journal_path = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&journal_path);
    let daemon = Daemon::start(DaemonConfig {
        rules: RulesSource::Inline(RULES.to_string()),
        journal_path: Some(journal_path.display().to_string()),
        trace_sample: 0,
        ..DaemonConfig::default()
    })
    .unwrap();
    let body = "zip,city,state\n36545,Jaxon,AK\n10001,NYC,NJ\n";
    let reply = http_post(&url(&daemon, "/repair"), "text/csv", body.as_bytes()).unwrap();
    assert_eq!(reply.status, 200);
    let json = parse_json(&reply.body);
    assert_eq!(json.get("repaired_rows").unwrap().as_i64(), Some(2));
    let reply = http_post(&url(&daemon, "/shutdown"), "text/plain", b"").unwrap();
    assert_eq!(reply.status, 202);
    daemon.wait();
    let text = std::fs::read_to_string(&journal_path).unwrap();
    let records = obs::trace::parse_jsonl(&text).unwrap();
    assert!(
        !records.iter().any(|r| r.name == "row.repaired"),
        "trace_sample 0 must suppress every row event"
    );
    let end = records
        .iter()
        .find(|r| r.name == "request.end")
        .expect("request.end event");
    assert_eq!(end.fields.get("rows_sampled").unwrap().as_i64(), Some(0));
    // The journal leads with the sampling regime so a reader knows the
    // absence of row events is policy, not a quiet batch.
    let meta = records
        .iter()
        .find(|r| r.name == "trace.meta")
        .expect("boot trace.meta event");
    assert_eq!(
        meta.fields.get("row_event_sample").unwrap().as_i64(),
        Some(0)
    );
    assert_eq!(meta.fields.get("source").unwrap().as_str(), Some("fixd"));
}

/// One dirty batch: every row matches a rule, so each sealed window's
/// per-attribute repair rate is 1000‰ — enough to trip a 50% alert.
const SKEWED_BATCH: &str = "zip,city,state\n\
    36545,Jaxon,AK\n36545,Jaxon,AK\n36545,Jaxon,AK\n36545,Jaxon,AK\n";

#[test]
fn quality_snapshot_tracks_windows_and_alerts() {
    let daemon = Daemon::start(DaemonConfig {
        rules: RulesSource::Inline(RULES.to_string()),
        quality_window: 2,
        quality_alerts: vec!["repair_rate>0.5".parse().unwrap()],
        ..DaemonConfig::default()
    })
    .unwrap();
    // Before any traffic the monitor is enabled but empty.
    let (status, body) = http_get(&url(&daemon, "/quality")).unwrap();
    assert_eq!(status, 200);
    let json = parse_json(&body);
    assert_eq!(json.get("enabled").unwrap().as_bool(), Some(true));
    assert_eq!(json.get("clock").unwrap().as_i64(), Some(0));

    let reply = http_post(
        &url(&daemon, "/repair"),
        "text/csv",
        SKEWED_BATCH.as_bytes(),
    )
    .unwrap();
    assert_eq!(reply.status, 200);
    let (status, body) = http_get(&url(&daemon, "/quality")).unwrap();
    assert_eq!(status, 200);
    let json = parse_json(&body);
    // 4 rows through a 2-row window: at least one sealed window, and the
    // all-repaired batch fired the repair-rate alert.
    assert!(json.get("clock").unwrap().as_i64().unwrap() >= 1);
    let alerts = json.get("alerts").unwrap().as_arr().unwrap();
    assert!(!alerts.is_empty(), "skewed batch must fire an alert");
    assert_eq!(
        alerts[0].get("signal").unwrap().as_str(),
        Some("repair_rate")
    );
    // Drift gauges for the sealed window are live on /metrics.
    let (_, text) = http_get(&url(&daemon, "/metrics")).unwrap();
    assert!(
        text.contains("quality_drift{"),
        "missing quality_drift gauge in exposition"
    );
    assert!(text.contains("quality_alert{"), "missing alert counter");
    daemon.shutdown();

    // With the monitor disabled the endpoint says so instead of 404ing.
    let off = Daemon::start(DaemonConfig {
        rules: RulesSource::Inline(RULES.to_string()),
        quality_window: 0,
        ..DaemonConfig::default()
    })
    .unwrap();
    let (status, body) = http_get(&url(&off, "/quality")).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        parse_json(&body).get("enabled").unwrap().as_bool(),
        Some(false)
    );
    off.shutdown();
}

#[test]
fn quality_gate_flips_readyz_only_when_opted_in() {
    let config = |gate: bool| DaemonConfig {
        rules: RulesSource::Inline(RULES.to_string()),
        quality_window: 2,
        quality_alerts: vec!["repair_rate>0.5".parse().unwrap()],
        quality_gate: gate,
        ..DaemonConfig::default()
    };
    // Without the gate a firing alert is reported but never gates.
    let ungated = Daemon::start(config(false)).unwrap();
    http_post(
        &url(&ungated, "/repair"),
        "text/csv",
        SKEWED_BATCH.as_bytes(),
    )
    .unwrap();
    let (status, body) = http_get(&url(&ungated, "/readyz")).unwrap();
    assert_eq!(status, 200, "alerts must not gate without opt-in: {body}");
    let json = parse_json(&body);
    assert!(json.get("quality_alerts").unwrap().as_i64().unwrap() >= 1);
    assert_eq!(json.get("quality_ok").unwrap().as_bool(), Some(true));
    assert_eq!(json.get("quality_gate").unwrap().as_bool(), Some(false));
    ungated.shutdown();

    // With the gate the same traffic turns readiness red, and liveness
    // stays green — the daemon is degraded, not down.
    let gated = Daemon::start(config(true)).unwrap();
    http_post(&url(&gated, "/repair"), "text/csv", SKEWED_BATCH.as_bytes()).unwrap();
    let (status, body) = http_get(&url(&gated, "/readyz")).unwrap();
    assert_eq!(status, 503, "gated alert must flip readiness: {body}");
    let json = parse_json(&body);
    assert_eq!(json.get("quality_ok").unwrap().as_bool(), Some(false));
    assert_eq!(json.get("quality_gate").unwrap().as_bool(), Some(true));
    let (status, _) = http_get(&url(&gated, "/healthz")).unwrap();
    assert_eq!(status, 200);
    gated.shutdown();
}
