//! Shared fixtures for the criterion benches.

use datagen::noise::{inject, NoiseConfig};
use eval::rules::{build_ruleset, RuleGenConfig};
use fixrules::RuleSet;
use relation::Table;

/// A prepared bench workload: dirty table + consistent rules.
pub struct Workload {
    /// The dataset (schema/symbols/truth/FDs).
    pub dataset: datagen::Dataset,
    /// Dirty instance to repair.
    pub dirty: Table,
    /// Consistent rules from the §7.1 pipeline.
    pub rules: RuleSet,
}

/// Build a hosp workload of `rows` rows and `rules` rules.
pub fn hosp_workload(rows: usize, rules: usize) -> Workload {
    workload(datagen::hosp::generate(rows, 7), rules)
}

/// Build a uis workload of `rows` rows and `rules` rules.
pub fn uis_workload(rows: usize, rules: usize) -> Workload {
    workload(datagen::uis::generate(rows, 7), rules)
}

fn workload(mut dataset: datagen::Dataset, target: usize) -> Workload {
    let attrs = dataset.constrained_attrs();
    let mut dirty = dataset.clean.clone();
    inject(
        &mut dirty,
        &mut dataset.symbols,
        &attrs,
        NoiseConfig {
            rate: 0.10,
            typo_fraction: 0.5,
            seed: 7,
        },
    );
    let (rules, _) = build_ruleset(
        &mut dataset,
        &dirty,
        RuleGenConfig {
            target,
            seed: 7,
            enrich_factor: 1.0,
        },
    );
    Workload {
        dataset,
        dirty,
        rules,
    }
}
