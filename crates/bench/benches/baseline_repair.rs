//! §7.2 runtime-table bench: `lRepair` vs `Heu` vs `Csm` end to end on
//! both datasets (the paper's closing comparison, where lRepair wins by
//! detecting errors per tuple instead of per tuple-pair).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use baselines::{csm_repair, heu_repair};
use fixrules::repair::{lrepair_table, LRepairIndex};

fn bench_baselines(c: &mut Criterion) {
    let workloads = vec![
        ("hosp", bench::hosp_workload(8_000, 300)),
        ("uis", bench::uis_workload(4_000, 80)),
    ];
    let mut group = c.benchmark_group("table_rt_baselines");
    for (name, w) in &workloads {
        group.bench_with_input(BenchmarkId::new("lRepair", name), name, |b, _| {
            b.iter_batched(
                || w.dirty.clone(),
                |mut table| {
                    let index = LRepairIndex::build(&w.rules);
                    lrepair_table(&w.rules, &index, &mut table)
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("Heu", name), name, |b, _| {
            b.iter_batched(
                || (w.dirty.clone(), w.dataset.symbols.clone()),
                |(mut table, mut symbols)| heu_repair(&mut table, &w.dataset.fds, 5, &mut symbols),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("Csm", name), name, |b, _| {
            b.iter_batched(
                || w.dirty.clone(),
                |mut table| csm_repair(&mut table, &w.dataset.fds, 10, 7),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_baselines
}
criterion_main!(benches);
