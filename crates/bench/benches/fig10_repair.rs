//! Fig 10 companion bench: `cRepair` vs `lRepair` on the hosp workload at
//! full |Σ|, with an embedded metrics snapshot per benchmark — the report
//! carries not just wall-clock but the pipeline counters
//! (`repair.rules_applied`, `repair.tuples_touched`, ...) the run implied,
//! so a timing regression can be told apart from a behavior change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fixrules::repair::{crepair_table_observed, lrepair_table_observed, LRepairIndex};
use obs::MetricsObserver;

fn bench_fig10_repair(c: &mut Criterion) {
    let workload = bench::hosp_workload(5_000, 200);
    let mut group = c.benchmark_group("fig10_repair");
    group.throughput(Throughput::Elements(workload.dirty.len() as u64));
    group.bench_with_input(BenchmarkId::new("cRepair", "hosp"), &(), |b, _| {
        let observer = MetricsObserver::new(b.metrics());
        b.iter_batched(
            || workload.dirty.clone(),
            |mut table| crepair_table_observed(&workload.rules, &mut table, &observer),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_with_input(BenchmarkId::new("lRepair", "hosp"), &(), |b, _| {
        let observer = MetricsObserver::new(b.metrics());
        let index = LRepairIndex::build(&workload.rules);
        b.iter_batched(
            || workload.dirty.clone(),
            |mut table| lrepair_table_observed(&workload.rules, &index, &mut table, &observer),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig10_repair
}
criterion_main!(benches);
