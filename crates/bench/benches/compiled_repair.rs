//! Compiled-engine bench: chase vs lRepair vs compiled(+plan cache) on a
//! duplicated-tuple table — the memoization target workload, where most
//! rows share their relevant-attribute signature with an earlier row.
//!
//! Engine configurations over the same table:
//!
//! * `cRepair` / `lRepair` — the uncached drivers (every row pays full rule
//!   evaluation);
//! * `compiled_cold` — compiled linear engine with a **fresh** plan cache
//!   per iteration (first sight of each signature runs the engine, the
//!   duplicates replay);
//! * `compiled_warm` — compiled linear engine with a cache pre-warmed on
//!   the same table (every row replays a memoized plan; this is the
//!   steady-state of repeated repair runs and must beat `lRepair` by ≥2×).
//! * `lRepair_attributed` / `compiled_warm_attributed` — the same drivers
//!   with an [`obs::AttributionObserver`] teed in (timing off), pinning the
//!   per-rule attribution overhead next to its unattributed baseline.
//!
//! Each benchmark embeds its metrics snapshot, so the report also records
//! cache hit/miss counts alongside wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fixrules::repair::{
    compiled_table_observed, crepair_table_observed, lrepair_table_observed, CompiledEngine,
    LRepairIndex, PlanCache, RuleProgram,
};
use fixrules::RuleSet;
use obs::{AttributionObserver, MetricsObserver, RuleLabel, Tee};
use relation::Table;

/// Distinct source rows cycled into the benched table.
const DISTINCT_ROWS: usize = 400;
/// Total rows of the benched table (each distinct row appears ~50×).
const TOTAL_ROWS: usize = 20_000;

/// Tile the first `DISTINCT_ROWS` rows of the workload's dirty table up to
/// `TOTAL_ROWS` — real dirty data is dominated by repeated records, which
/// is exactly what the plan cache exploits.
fn duplicated_table(src: &Table) -> Table {
    let mut dup = Table::with_capacity(src.schema().clone(), TOTAL_ROWS);
    for i in 0..TOTAL_ROWS {
        dup.push_row(src.row(i % DISTINCT_ROWS)).unwrap();
    }
    dup
}

/// Per-rule series labels for the attribution rows, mirroring `fixctl`:
/// stable rule id plus the attribute the rule fixes.
fn rule_labels(rules: &RuleSet) -> Vec<RuleLabel> {
    rules
        .iter()
        .map(|(id, rule)| RuleLabel {
            rule: format!("r{}", id.0),
            attr: rules.schema().attr_name(rule.b()).to_string(),
        })
        .collect()
}

fn bench_compiled_repair(c: &mut Criterion) {
    let workload = bench::hosp_workload(DISTINCT_ROWS, 200);
    let rules = &workload.rules;
    let table = duplicated_table(&workload.dirty);
    let index = LRepairIndex::build(rules);
    let program = RuleProgram::compile(rules);

    let mut group = c.benchmark_group("compiled_repair");
    group.throughput(Throughput::Elements(table.len() as u64));

    group.bench_with_input(BenchmarkId::new("cRepair", "dup"), &(), |b, _| {
        let observer = MetricsObserver::new(b.metrics());
        b.iter_batched(
            || table.clone(),
            |mut t| crepair_table_observed(rules, &mut t, &observer),
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_with_input(BenchmarkId::new("lRepair", "dup"), &(), |b, _| {
        let observer = MetricsObserver::new(b.metrics());
        b.iter_batched(
            || table.clone(),
            |mut t| lrepair_table_observed(rules, &index, &mut t, &observer),
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_with_input(
        BenchmarkId::new("lRepair_attributed", "dup"),
        &(),
        |b, _| {
            let observer = MetricsObserver::new(b.metrics());
            let attribution = AttributionObserver::new(b.metrics(), rule_labels(rules));
            let teed = Tee(&observer, &attribution);
            b.iter_batched(
                || table.clone(),
                |mut t| lrepair_table_observed(rules, &index, &mut t, &teed),
                criterion::BatchSize::LargeInput,
            )
        },
    );

    group.bench_with_input(BenchmarkId::new("compiled_cold", "dup"), &(), |b, _| {
        let observer = MetricsObserver::new(b.metrics());
        b.iter_batched(
            || (table.clone(), PlanCache::unbounded()),
            |(mut t, cache)| {
                compiled_table_observed(
                    rules,
                    &program,
                    CompiledEngine::Linear,
                    Some(&cache),
                    &mut t,
                    &observer,
                )
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_with_input(BenchmarkId::new("compiled_warm", "dup"), &(), |b, _| {
        let observer = MetricsObserver::new(b.metrics());
        let cache = PlanCache::unbounded();
        // Pre-warm: one full pass memoizes a plan per distinct signature.
        let mut warmup = table.clone();
        compiled_table_observed(
            rules,
            &program,
            CompiledEngine::Linear,
            Some(&cache),
            &mut warmup,
            &obs::NoopObserver,
        );
        b.iter_batched(
            || table.clone(),
            |mut t| {
                compiled_table_observed(
                    rules,
                    &program,
                    CompiledEngine::Linear,
                    Some(&cache),
                    &mut t,
                    &observer,
                )
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_with_input(
        BenchmarkId::new("compiled_warm_attributed", "dup"),
        &(),
        |b, _| {
            let observer = MetricsObserver::new(b.metrics());
            let attribution = AttributionObserver::new(b.metrics(), rule_labels(rules));
            let teed = Tee(&observer, &attribution);
            let cache = PlanCache::unbounded();
            let mut warmup = table.clone();
            compiled_table_observed(
                rules,
                &program,
                CompiledEngine::Linear,
                Some(&cache),
                &mut warmup,
                &obs::NoopObserver,
            );
            b.iter_batched(
                || table.clone(),
                |mut t| {
                    compiled_table_observed(
                        rules,
                        &program,
                        CompiledEngine::Linear,
                        Some(&cache),
                        &mut t,
                        &teed,
                    )
                },
                criterion::BatchSize::LargeInput,
            )
        },
    );

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compiled_repair
}
criterion_main!(benches);
