//! `bench quality` — sketch + window overhead of the repair-quality
//! observatory on the 20k duplicated-tuple stream workload.
//!
//! Configurations, all one-pass `stream_repair_csv_observed` over the
//! same in-memory CSV:
//!
//! * `unmonitored` — [`obs::NoopObserver`]: the `wants_rows` gate keeps
//!   the driver from even copying the pre-repair row, so this is the
//!   true zero-cost baseline;
//! * `monitored/256` / `monitored/1024` — a fresh [`QualityMonitor`]
//!   per iteration feeding per-attribute count–min, distinct, and
//!   reservoir sketches in tumbling windows of 256 / 1024 rows.
//!
//! The acceptance target is monitored ≤ 1.10× unmonitored wall-clock at
//! the default 256-row window. Each monitored benchmark embeds its
//! metrics snapshot, so the pinned `BENCH_quality.json` also records
//! `quality.windows` and per-attribute `quality.drift` gauges next to
//! the wall clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fixrules::repair::{stream_repair_csv_observed, LRepairIndex};
use obs::{NoopObserver, QualityConfig, QualityMonitor};
use relation::{csv_io, Table};

/// Distinct source rows cycled into the benched stream.
const DISTINCT_ROWS: usize = 400;
/// Total rows streamed per iteration (each distinct row appears ~50×).
const TOTAL_ROWS: usize = 20_000;
/// Consecutive repetitions per distinct row. The real hosp file clusters
/// ~20 rows per provider (one per measure), so duplicates arrive in
/// runs; short runs of 8 keep the stream realistic without being the
/// monitor's best case.
const RUN_LEN: usize = 8;

/// Tile the workload's dirty table up to `TOTAL_ROWS` — duplicates in
/// runs of [`RUN_LEN`] — and render it as the CSV byte stream every
/// configuration repairs.
fn stream_csv(workload: &bench::Workload) -> Vec<u8> {
    let mut tiled = Table::with_capacity(workload.dirty.schema().clone(), TOTAL_ROWS);
    for i in 0..TOTAL_ROWS {
        tiled
            .push_row(workload.dirty.row((i / RUN_LEN) % DISTINCT_ROWS))
            .unwrap();
    }
    let mut out = Vec::new();
    csv_io::write_csv(&mut out, &tiled, &workload.dataset.symbols).unwrap();
    out
}

fn bench_quality(c: &mut Criterion) {
    let workload = bench::hosp_workload(DISTINCT_ROWS, 200);
    let rules = &workload.rules;
    let index = LRepairIndex::build(rules);
    let csv = stream_csv(&workload);
    let attr_names: Vec<String> = workload
        .dirty
        .schema()
        .attr_names()
        .map(str::to_string)
        .collect();

    let mut group = c.benchmark_group("quality");
    group.throughput(Throughput::Elements(TOTAL_ROWS as u64));

    group.bench_with_input(BenchmarkId::new("unmonitored", "stream"), &(), |b, _| {
        b.iter_batched(
            || workload.dataset.symbols.clone(),
            |mut symbols| {
                stream_repair_csv_observed(
                    rules,
                    &index,
                    &mut symbols,
                    &csv[..],
                    std::io::sink(),
                    &NoopObserver,
                )
                .unwrap()
            },
            criterion::BatchSize::LargeInput,
        )
    });

    for window in [256usize, 1024] {
        group.bench_with_input(
            BenchmarkId::new("monitored", window),
            &window,
            |b, &window| {
                let registry = b.metrics().clone();
                b.iter_batched(
                    || {
                        let cfg = QualityConfig {
                            window_rows: window,
                            ..QualityConfig::default()
                        };
                        let monitor =
                            QualityMonitor::new(cfg, attr_names.clone()).with_registry(&registry);
                        (workload.dataset.symbols.clone(), monitor)
                    },
                    |(mut symbols, monitor)| {
                        let stats = stream_repair_csv_observed(
                            rules,
                            &index,
                            &mut symbols,
                            &csv[..],
                            std::io::sink(),
                            &monitor,
                        )
                        .unwrap();
                        monitor.flush();
                        assert!(monitor.windows_sealed() > 0);
                        stats
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
