//! `bench serve` — load-drive a live `fixd` daemon over loopback HTTP:
//! N concurrent clients hammer `POST /repair` with duplicate-heavy CSV
//! batches, pinning multi-client throughput (rows/sec) and the daemon's
//! own per-endpoint latency telemetry into `BENCH_serve_repair.json`.
//!
//! Configurations:
//!
//! * `shared_cache/1|4|8` — the production shape: every request repairs
//!   against one shared warm [`PlanCache`], so after the first batch
//!   almost every row replays a memoized plan;
//! * `no_cache/8` — the ablation: plan memoization off, every row pays
//!   full compiled-engine evaluation.
//!
//! Each benchmark passes its metrics registry into the daemon
//! ([`Daemon::start_with_registry`]), so the pinned JSON embeds the
//! served-side `http.requests{endpoint="repair",status="200"}` counters
//! and latency histograms next to the client-side wall clock. The
//! headline comparison is `serve.repair_stage_ns{cache="on"|"off"}`:
//! end-to-end wall clock is dominated by transport and (de)serialization,
//! but the repair stage itself replays memoized plans ~2× faster at the
//! median than re-running the compiled engine per row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fixd::{Daemon, DaemonConfig, RulesSource, SchemaSource};
use fixrules::io::format_rules;
use obs::http_post;
use relation::{csv_io, Table};

/// Distinct dirty rows cycled into every batch.
const DISTINCT_ROWS: usize = 100;
/// Rows per `POST /repair` batch (each distinct row appears ~10×).
const BATCH_ROWS: usize = 1_000;
/// Concurrent client counts for the shared-cache sweep.
const CLIENTS: [usize; 3] = [1, 4, 8];

/// Render a duplicate-heavy CSV batch from the workload's dirty table.
fn batch_csv(workload: &bench::Workload) -> Vec<u8> {
    let mut tiled = Table::with_capacity(workload.dirty.schema().clone(), BATCH_ROWS);
    for i in 0..BATCH_ROWS {
        tiled
            .push_row(workload.dirty.row(i % DISTINCT_ROWS))
            .unwrap();
    }
    let mut out = Vec::new();
    csv_io::write_csv(&mut out, &tiled, &workload.dataset.symbols).unwrap();
    out
}

fn daemon_config(workload: &bench::Workload, plan_cache: bool) -> DaemonConfig {
    DaemonConfig {
        rules: RulesSource::Inline(format_rules(&workload.rules, &workload.dataset.symbols)),
        // The full dataset schema, so the batch CSV header always maps.
        schema: SchemaSource::Names(
            workload
                .dirty
                .schema()
                .attr_names()
                .map(str::to_string)
                .collect(),
        ),
        threads: 8,
        plan_cache,
        ..DaemonConfig::default()
    }
}

/// One load round: `clients` threads each post the batch once and assert
/// a `200` with the expected row count echoed back.
fn drive(url: &str, body: &[u8], clients: usize) {
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let reply = http_post(url, "text/csv", body).expect("POST /repair");
                assert_eq!(reply.status, 200, "{}", reply.body);
            });
        }
    });
}

fn bench_serve_repair(c: &mut Criterion) {
    let workload = bench::hosp_workload(DISTINCT_ROWS, 100);
    let body = batch_csv(&workload);

    let mut group = c.benchmark_group("serve_repair");
    for clients in CLIENTS {
        group.throughput(Throughput::Elements((clients * BATCH_ROWS) as u64));
        group.bench_with_input(
            BenchmarkId::new("shared_cache", clients),
            &clients,
            |b, &clients| {
                let daemon = Daemon::start_with_registry(
                    daemon_config(&workload, true),
                    b.metrics().clone(),
                )
                .expect("start fixd");
                // CSV echo: the cheap response path, so the measurement
                // tracks repair throughput, not JSON tree rendering.
                let url = format!("http://{}/repair?format=csv", daemon.addr());
                // Warm round: memoize every distinct signature once, so
                // the timed rounds measure the shared-cache steady state.
                drive(&url, &body, 1);
                b.iter(|| drive(&url, &body, clients));
                daemon.shutdown();
            },
        );
    }

    // Ablation: same traffic, memoization off — the daemon re-runs the
    // compiled engine for every row of every request.
    let clients = *CLIENTS.last().unwrap();
    group.throughput(Throughput::Elements((clients * BATCH_ROWS) as u64));
    group.bench_with_input(
        BenchmarkId::new("no_cache", clients),
        &clients,
        |b, &clients| {
            let daemon =
                Daemon::start_with_registry(daemon_config(&workload, false), b.metrics().clone())
                    .expect("start fixd");
            let url = format!("http://{}/repair?format=csv", daemon.addr());
            drive(&url, &body, 1);
            b.iter(|| drive(&url, &body, clients));
            daemon.shutdown();
        },
    );
    group.finish();
}

criterion_group!(benches, bench_serve_repair);
criterion_main!(benches);
