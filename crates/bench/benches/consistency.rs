//! Fig 9 bench: consistency checking, `isConsist_r` vs `isConsist_t`,
//! worst case (all pairs) and real case (stop at first conflict).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fixrules::consistency::{is_consistent_characterize, is_consistent_enumerate};
use fixrules::FixingRule;

fn bench_consistency(c: &mut Criterion) {
    let workload = bench::hosp_workload(4_000, 400);
    let mut group = c.benchmark_group("fig9_consistency");
    for &n in &[100usize, 200, 400] {
        let mut subset = workload.rules.clone();
        subset.truncate(n);
        group.bench_with_input(BenchmarkId::new("isConsist_r_worst", n), &n, |b, _| {
            b.iter(|| is_consistent_characterize(&subset, usize::MAX))
        });
        group.bench_with_input(BenchmarkId::new("isConsist_t_worst", n), &n, |b, _| {
            b.iter(|| is_consistent_enumerate(&subset, usize::MAX))
        });
        // Real case: a cloned rule with a different fact conflicts with its
        // original; checking stops at the first hit.
        let mut dirty_set = subset.clone();
        let victim = dirty_set.rule(fixrules::RuleId(0)).clone();
        let evidence = victim
            .x()
            .iter()
            .copied()
            .zip(victim.tp().iter().copied())
            .collect();
        // A symbol no real value uses (SymbolTable ids are dense from 0).
        let fresh = relation::Symbol(u32::MAX - 1);
        dirty_set
            .push(FixingRule::new(evidence, victim.b(), victim.neg().to_vec(), fresh).unwrap());
        group.bench_with_input(BenchmarkId::new("isConsist_r_real", n), &n, |b, _| {
            b.iter(|| is_consistent_characterize(&dirty_set, 1))
        });
        group.bench_with_input(BenchmarkId::new("isConsist_t_real", n), &n, |b, _| {
            b.iter(|| is_consistent_enumerate(&dirty_set, 1))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_consistency
}
criterion_main!(benches);
