//! `fixcert` certification cost across rule-set sizes: the whole-set
//! chase certificate (interaction graph + termination + critical-pair
//! confluence) on §7.1-pipeline rule sets of 10, 100, and 1000 rules.
//! The interaction-graph and pair enumeration are O(n²), so the scaling
//! from 10 → 1000 shows whether certification stays viable as a boot and
//! hot-swap gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fixlint::{certify, CertOptions};
use fixrules::io::Span;

fn bench_certify(c: &mut Criterion) {
    let mut group = c.benchmark_group("certify");
    for &n in &[10usize, 100, 1000] {
        let workload = bench::hosp_workload(6_000, n);
        let rules = workload.rules;
        let spans = vec![Span::default(); rules.len()];
        let symbols = &workload.dataset.symbols;
        group.bench_with_input(BenchmarkId::new("certify", n), &n, |b, _| {
            b.iter(|| certify(&rules, &spans, symbols, &CertOptions::default()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_certify
}
criterion_main!(benches);
