//! Columnar group-by-plan bench: the row-at-a-time compiled engine vs the
//! columnar driver on duplicated-tuple tables at 20k and 200k rows.
//!
//! The columnar driver groups a batch by relevant-attribute signature and
//! runs the engine (or probes the plan cache) once per *group*, scattering
//! the plan to members — so its per-duplicate cost is a memcpy-scatter
//! instead of a signature allocation + cache probe + replay. Configurations
//! over the same table, per size:
//!
//! * `compiled_cold` / `compiled_warm` — the §12 row-at-a-time baseline
//!   with a fresh / pre-warmed plan cache;
//! * `columnar_cold` — group-by-plan with a fresh cache per iteration
//!   (each group's first row runs the engine);
//! * `columnar_warm` — group-by-plan with a pre-warmed cache (every group
//!   representative hits; this is the steady state and must beat
//!   `compiled_warm` by ≥2× at 200k rows — gated on
//!   `results/BENCH_columnar_repair.json`).
//!
//! Each benchmark embeds its metrics snapshot, so the report records the
//! `repair.batch.*` group-by shape and cache hit/miss counts alongside
//! wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fixrules::repair::{
    columnar_table_observed, compiled_table_observed, CompiledEngine, PlanCache, RuleProgram,
};
use obs::MetricsObserver;
use relation::{ColumnTable, Table};

/// Distinct source rows cycled into each benched table.
const DISTINCT_ROWS: usize = 400;
/// Benched table sizes (each distinct row appears total/400 times).
const SIZES: [(&str, usize); 2] = [("20k", 20_000), ("200k", 200_000)];

/// Tile the first `DISTINCT_ROWS` rows of the workload's dirty table up to
/// `total` rows — real dirty data is dominated by repeated records, which
/// is exactly what signature grouping exploits.
fn duplicated_table(src: &Table, total: usize) -> Table {
    let mut dup = Table::with_capacity(src.schema().clone(), total);
    for i in 0..total {
        dup.push_row(src.row(i % DISTINCT_ROWS)).unwrap();
    }
    dup
}

fn bench_columnar_repair(c: &mut Criterion) {
    let workload = bench::hosp_workload(DISTINCT_ROWS, 200);
    let rules = &workload.rules;
    let program = RuleProgram::compile(rules);

    let mut group = c.benchmark_group("columnar_repair");
    for (label, total) in SIZES {
        let table = duplicated_table(&workload.dirty, total);
        let columns = ColumnTable::from(&table);
        group.throughput(Throughput::Elements(total as u64));

        group.bench_with_input(BenchmarkId::new("compiled_cold", label), &(), |b, _| {
            let observer = MetricsObserver::new(b.metrics());
            b.iter_batched(
                || (table.clone(), PlanCache::unbounded()),
                |(mut t, cache)| {
                    compiled_table_observed(
                        rules,
                        &program,
                        CompiledEngine::Linear,
                        Some(&cache),
                        &mut t,
                        &observer,
                    )
                },
                criterion::BatchSize::LargeInput,
            )
        });

        group.bench_with_input(BenchmarkId::new("compiled_warm", label), &(), |b, _| {
            let observer = MetricsObserver::new(b.metrics());
            let cache = PlanCache::unbounded();
            let mut warmup = table.clone();
            compiled_table_observed(
                rules,
                &program,
                CompiledEngine::Linear,
                Some(&cache),
                &mut warmup,
                &obs::NoopObserver,
            );
            b.iter_batched(
                || table.clone(),
                |mut t| {
                    compiled_table_observed(
                        rules,
                        &program,
                        CompiledEngine::Linear,
                        Some(&cache),
                        &mut t,
                        &observer,
                    )
                },
                criterion::BatchSize::LargeInput,
            )
        });

        group.bench_with_input(BenchmarkId::new("columnar_cold", label), &(), |b, _| {
            let observer = MetricsObserver::new(b.metrics());
            b.iter_batched(
                || (columns.clone(), PlanCache::unbounded()),
                |(mut t, cache)| {
                    columnar_table_observed(
                        rules,
                        &program,
                        CompiledEngine::Linear,
                        Some(&cache),
                        &mut t,
                        &observer,
                    )
                },
                criterion::BatchSize::LargeInput,
            )
        });

        group.bench_with_input(BenchmarkId::new("columnar_warm", label), &(), |b, _| {
            let observer = MetricsObserver::new(b.metrics());
            let cache = PlanCache::unbounded();
            let mut warmup = columns.clone();
            columnar_table_observed(
                rules,
                &program,
                CompiledEngine::Linear,
                Some(&cache),
                &mut warmup,
                &obs::NoopObserver,
            );
            b.iter_batched(
                || columns.clone(),
                |mut t| {
                    columnar_table_observed(
                        rules,
                        &program,
                        CompiledEngine::Linear,
                        Some(&cache),
                        &mut t,
                        &observer,
                    )
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_columnar_repair
}
criterion_main!(benches);
