//! Fig 13 bench: `cRepair` vs `lRepair` (and the parallel extension) as
//! |Σ| grows, on a fixed dirty table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fixrules::repair::{crepair_table, lrepair_table, par_lrepair_table, LRepairIndex};

fn bench_repair(c: &mut Criterion) {
    let workload = bench::hosp_workload(10_000, 400);
    let mut group = c.benchmark_group("fig13_repair");
    group.throughput(Throughput::Elements(workload.dirty.len() as u64));
    for &n in &[50usize, 100, 200, 400] {
        let mut subset = workload.rules.clone();
        subset.truncate(n);
        group.bench_with_input(BenchmarkId::new("cRepair", n), &n, |b, _| {
            b.iter_batched(
                || workload.dirty.clone(),
                |mut table| crepair_table(&subset, &mut table),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("lRepair", n), &n, |b, _| {
            b.iter_batched(
                || workload.dirty.clone(),
                |mut table| {
                    let index = LRepairIndex::build(&subset);
                    lrepair_table(&subset, &index, &mut table)
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("lRepair_par", n), &n, |b, _| {
            let threads = std::thread::available_parallelism().map_or(4, |t| t.get());
            b.iter_batched(
                || workload.dirty.clone(),
                |mut table| {
                    let index = LRepairIndex::build(&subset);
                    par_lrepair_table(&subset, &index, &mut table, threads)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_repair
}
criterion_main!(benches);
