//! Ablations for the design choices called out in DESIGN.md §7:
//!
//! * `assured_bitset` — the `u128` [`relation::AttrSet`] assured set vs a
//!   `HashSet<AttrId>` model of the same chase;
//! * `pairwise_vs_chase` — Prop 3's pairwise consistency check vs deciding
//!   the same pair by the all-orders chase over enumerated tuples;
//! * `scratch_reuse` — lRepair's epoch-stamped counter reuse vs allocating
//!   fresh scratch per tuple.

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, Criterion};

use fixrules::consistency::characterize::check_pair;
use fixrules::consistency::enumerate::check_pair_enumerate;
use fixrules::repair::{lrepair_tuple, LRepairIndex, LRepairScratch};
use fixrules::semantics::matches;
use relation::{AttrId, AttrSet, Symbol};

/// A chase step with the production bitset assured set.
fn chase_bitset(rules: &fixrules::RuleSet, row: &mut [Symbol]) -> usize {
    let mut assured = AttrSet::EMPTY;
    let mut applied = 0;
    let mut progressed = true;
    while progressed {
        progressed = false;
        for rule in rules.rules() {
            if assured.contains(rule.b()) || !matches(rule, row) {
                continue;
            }
            row[rule.b().index()] = rule.fact();
            assured.union_with(rule.assured_delta());
            applied += 1;
            progressed = true;
        }
    }
    applied
}

/// The same chase with a `HashSet<AttrId>` assured set (the ablated
/// design).
fn chase_hashset(rules: &fixrules::RuleSet, row: &mut [Symbol]) -> usize {
    let mut assured: HashSet<AttrId> = HashSet::new();
    let mut applied = 0;
    let mut progressed = true;
    while progressed {
        progressed = false;
        for rule in rules.rules() {
            if assured.contains(&rule.b()) || !matches(rule, row) {
                continue;
            }
            row[rule.b().index()] = rule.fact();
            assured.extend(rule.x().iter().copied());
            assured.insert(rule.b());
            applied += 1;
            progressed = true;
        }
    }
    applied
}

fn bench_ablations(c: &mut Criterion) {
    let w = bench::hosp_workload(4_000, 200);
    let rows: Vec<Vec<Symbol>> = (0..w.dirty.len().min(2_000))
        .map(|i| w.dirty.row(i).to_vec())
        .collect();

    // 1. Assured-set representation.
    let mut group = c.benchmark_group("ablation_assured_set");
    group.bench_function("bitset", |b| {
        b.iter(|| {
            let mut total = 0;
            for r in &rows {
                let mut row = r.clone();
                total += chase_bitset(&w.rules, &mut row);
            }
            total
        })
    });
    group.bench_function("hashset", |b| {
        b.iter(|| {
            let mut total = 0;
            for r in &rows {
                let mut row = r.clone();
                total += chase_hashset(&w.rules, &mut row);
            }
            total
        })
    });
    group.finish();

    // 2. Pairwise characterization (Fig 4) vs tuple-enumeration chase for
    // deciding the same pairs.
    let mut group = c.benchmark_group("ablation_pair_decision");
    let pairs: Vec<(usize, usize)> = (0..w.rules.len().min(60))
        .flat_map(|i| ((i + 1)..w.rules.len().min(60)).map(move |j| (i, j)))
        .collect();
    let arity = w.dataset.schema.arity();
    group.bench_function("characterize", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(i, j)| {
                    check_pair(
                        w.rules.rule(fixrules::RuleId(i as u32)),
                        w.rules.rule(fixrules::RuleId(j as u32)),
                    )
                    .is_some()
                })
                .count()
        })
    });
    group.bench_function("enumerate", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(i, j)| {
                    check_pair_enumerate(
                        w.rules.rule(fixrules::RuleId(i as u32)),
                        w.rules.rule(fixrules::RuleId(j as u32)),
                        arity,
                    )
                    .is_some()
                })
                .count()
        })
    });
    group.finish();

    // 3. lRepair scratch reuse.
    let index = LRepairIndex::build(&w.rules);
    let mut group = c.benchmark_group("ablation_scratch_reuse");
    group.bench_function("reused_epoch_scratch", |b| {
        b.iter(|| {
            let mut scratch = LRepairScratch::new(w.rules.len());
            let mut total = 0;
            for r in &rows {
                let mut row = r.clone();
                total += lrepair_tuple(&w.rules, &index, &mut scratch, &mut row).len();
            }
            total
        })
    });
    group.bench_function("fresh_scratch_per_tuple", |b| {
        b.iter(|| {
            let mut total = 0;
            for r in &rows {
                let mut scratch = LRepairScratch::new(w.rules.len());
                let mut row = r.clone();
                total += lrepair_tuple(&w.rules, &index, &mut scratch, &mut row).len();
            }
            total
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
