//! Property-based test of the `fixcert` confluence certificate: any rule
//! set the certifier passes really is order-independent in practice.
//!
//! For every randomly generated rule set that certifies green, every
//! engine (chase, linear, compiled chase/linear, parallel compiled) under
//! every tested rule-order permutation must produce the *same* repaired
//! table and the same normalized provenance ledger. A single divergence
//! here means the certificate lied — the critical-pair analysis missed an
//! interaction the engines can reach.
//!
//! Normalization: rule attribution and round stamps legitimately differ
//! across engines and rule orders (the same semantic fix may be found by
//! a different permuted rule id, in a different round). What confluence
//! pins is the *semantic* repair: each attribute is written at most once
//! per tuple (it becomes assured), so the multiset of
//! `(row, attr, old, new)` cell changes — and the end table — must match
//! exactly.

use proptest::prelude::*;

use fixlint::{certify, CertOptions};
use fixrules::io::Span;
use fixrules::provenance::{ProvenanceLedger, ProvenanceObserver, ProvenanceRecord};
use fixrules::repair::{
    compiled_table_observed, crepair_table_observed, lrepair_table_observed,
    par_compiled_table_observed, CompiledEngine, LRepairIndex, PlanCache, RuleProgram,
};
use fixrules::{FixingRule, RuleSet};
use relation::{AttrId, Schema, Symbol, SymbolTable, Table};

const ARITY: usize = 5;
const VOCAB: u32 = 6;

fn schema() -> Schema {
    Schema::new("R", ["a0", "a1", "a2", "a3", "a4"]).unwrap()
}

/// A symbol table covering the whole generated vocabulary, so the
/// certifier can render witness tuples in its diagnostics.
fn symbols() -> SymbolTable {
    let mut table = SymbolTable::new();
    for v in 0..VOCAB {
        table.intern(&format!("v{v}"));
    }
    table
}

#[derive(Debug, Clone)]
struct RawRule {
    evidence: Vec<(u16, u32)>,
    b: u16,
    neg: Vec<u32>,
    fact: u32,
}

fn raw_rule() -> impl Strategy<Value = RawRule> {
    (
        proptest::collection::vec((0u16..ARITY as u16, 0u32..VOCAB), 1..3),
        0u16..ARITY as u16,
        proptest::collection::vec(0u32..VOCAB, 1..4),
        0u32..VOCAB,
    )
        .prop_map(|(evidence, b, neg, fact)| RawRule {
            evidence,
            b,
            neg,
            fact,
        })
}

fn build_ruleset(raws: &[RawRule]) -> RuleSet {
    let mut rs = RuleSet::new(schema());
    for raw in raws {
        let evidence: Vec<(AttrId, Symbol)> = raw
            .evidence
            .iter()
            .map(|&(a, v)| (AttrId(a), Symbol(v)))
            .collect();
        let neg: Vec<Symbol> = raw.neg.iter().map(|&v| Symbol(v)).collect();
        if let Ok(rule) = FixingRule::new(evidence, AttrId(raw.b), neg, Symbol(raw.fact)) {
            rs.push(rule);
        }
    }
    rs
}

fn rulesets() -> impl Strategy<Value = RuleSet> {
    proptest::collection::vec(raw_rule(), 0..8).prop_map(|raws| build_ruleset(&raws))
}

fn tuples() -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec(0u32..VOCAB, ARITY..=ARITY)
        .prop_map(|vs| vs.into_iter().map(Symbol).collect())
}

/// Rebuild the set with its rules rotated by `rot` (and optionally
/// reversed) — a deterministic family of shuffled rule orders.
fn permuted(rs: &RuleSet, rot: usize, rev: bool) -> RuleSet {
    let n = rs.len();
    let mut order: Vec<usize> = (0..n).collect();
    if n > 0 {
        order.rotate_left(rot % n);
    }
    if rev {
        order.reverse();
    }
    let mut out = RuleSet::new(rs.schema().clone());
    for &i in &order {
        out.push(rs.rules()[i].clone());
    }
    out
}

/// The order- and engine-independent core of a ledger: sorted
/// `(row, attr, old, new)` with attribution and rounds dropped.
fn normalized(records: &[ProvenanceRecord]) -> Vec<(usize, u16, u32, u32)> {
    let mut out: Vec<(usize, u16, u32, u32)> = records
        .iter()
        .map(|r| (r.row, r.attr.0, r.old.0, r.new.0))
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    /// A green `fixcert` certificate implies confluence in practice: all
    /// engines agree on the repaired table and the normalized ledger
    /// under every tested rule-order permutation.
    #[test]
    fn certified_sets_are_confluent_across_engines_and_orders(
        rs in rulesets(),
        rows in proptest::collection::vec(tuples(), 1..16),
        rot in 0usize..8,
    ) {
        let spans = vec![Span::default(); rs.len()];
        let cert = certify(&rs, &spans, &symbols(), &CertOptions::default());
        if !cert.is_certified() {
            // Red sets promise nothing; the certifier's *soundness* on
            // green sets is the property under test.
            return Ok(());
        }
        let mut table0 = Table::new(rs.schema().clone());
        for r in &rows {
            table0.push_row(r).unwrap();
        }

        // Reference: the textbook chase on the original order.
        let mut ref_table = table0.clone();
        let ref_ledger = ProvenanceLedger::new();
        crepair_table_observed(&rs, &mut ref_table, &ProvenanceObserver::new(&rs, &ref_ledger));
        let reference = normalized(&ref_ledger.records());

        for rev in [false, true] {
            let prs = permuted(&rs, rot, rev);
            let program = RuleProgram::compile(&prs);
            let index = LRepairIndex::build(&prs);

            let mut runs: Vec<(&str, Table, Vec<ProvenanceRecord>)> = Vec::new();
            {
                let mut t = table0.clone();
                let ledger = ProvenanceLedger::new();
                crepair_table_observed(&prs, &mut t, &ProvenanceObserver::new(&prs, &ledger));
                runs.push(("chase", t, ledger.records()));
            }
            {
                let mut t = table0.clone();
                let ledger = ProvenanceLedger::new();
                lrepair_table_observed(
                    &prs, &index, &mut t, &ProvenanceObserver::new(&prs, &ledger));
                runs.push(("linear", t, ledger.records()));
            }
            for engine in [CompiledEngine::Chase, CompiledEngine::Linear] {
                let cache = PlanCache::unbounded();
                let mut t = table0.clone();
                let ledger = ProvenanceLedger::new();
                compiled_table_observed(
                    &prs, &program, engine, Some(&cache), &mut t,
                    &ProvenanceObserver::new(&prs, &ledger));
                runs.push(("compiled", t, ledger.records()));
            }
            {
                let cache = PlanCache::sharded(4);
                let mut t = table0.clone();
                let ledger = ProvenanceLedger::new();
                par_compiled_table_observed(
                    &prs, &program, CompiledEngine::Chase, Some(&cache), &mut t, 4,
                    &ProvenanceObserver::new(&prs, &ledger));
                runs.push(("parallel", t, ledger.records()));
            }

            for (name, t, records) in &runs {
                prop_assert_eq!(
                    ref_table.diff_cells(t).unwrap(), 0,
                    "{} diverged from the reference table under rot={} rev={}",
                    name, rot, rev);
                prop_assert_eq!(
                    &normalized(records), &reference,
                    "{} ledger diverged under rot={} rev={}", name, rot, rev);
            }
        }
    }
}
