//! Byte-equality pin of the golden SARIF file: the SARIF serializer is
//! deterministic, so `fixctl lint --format sarif` over the conflicting
//! example must reproduce `examples/lint/conflicting.sarif` exactly.
//! Regenerate after an intentional format change with:
//! `fixctl lint examples/lint/conflicting.frl --format sarif > examples/lint/conflicting.sarif`

use fixlint::{lint_source, render_sarif, LintOptions};
use relation::SymbolTable;

const RULES_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../examples/lint/conflicting.frl"
);
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../examples/lint/conflicting.sarif"
);

#[test]
fn sarif_output_matches_the_golden_file_byte_for_byte() {
    let text = std::fs::read_to_string(RULES_PATH).unwrap();
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap();
    // Mirror `fixctl lint` with no --schema/--data: infer from the rules.
    let schema = fixrules::io::infer_schema(&text, "R").unwrap();
    let mut symbols = SymbolTable::new();
    let report = lint_source(&text, &schema, &mut symbols, &LintOptions::default());
    assert!(!report.is_clean(), "the fixture must report findings");
    // The CLI prints the log with a trailing newline.
    let sarif = format!(
        "{}\n",
        render_sarif(&report, "examples/lint/conflicting.frl")
    );
    assert_eq!(
        sarif, golden,
        "SARIF output drifted from examples/lint/conflicting.sarif; \
         regenerate the golden file if the change is intentional"
    );
}
