//! Lint-vs-runtime coverage: join a static [`LintReport`] against a
//! per-rule attribution profile (`fixctl coverage --lint`).
//!
//! The static passes reason about what *can* happen; the attribution
//! profiler records what *did*. The join reports the two disagreement
//! cases:
//!
//! * **FR007** — a statically live rule never fired on the profiled run.
//!   Not a defect by itself, but the same rule-set-drift smell the
//!   rule-discovery literature mines for: either the data no longer
//!   contains the error pattern, or the rule never matched anything.
//! * **FR008** — a rule the shadowing pass flagged dead (FR002) *did*
//!   fire. A shadowed rule cannot fire under the paper's semantics, so
//!   this means the profile was taken with a different rule file (or
//!   engine) than the one linted — the join's consistency check.
//!
//! Both diagnostics anchor at the rule's span in the lint source, so
//! `fixlint`'s rustc-style renderer shows the offending rule line.

use fixrules::io::Span;

use crate::diagnostic::{Code, Diagnostic};
use crate::LintReport;

/// Per-rule runtime totals the join consumes, in rule-id order. The CLI
/// fills this from an `AttributionObserver` profile; tests fill it by
/// hand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleActivity {
    /// Applications (live evaluations plus plan replays).
    pub applied: u64,
    /// Evaluations that probed the rule's evidence and missed.
    pub rejected: u64,
}

/// Join the static report for a rule set against the runtime activity of
/// its rules. `spans[i]` locates rule `i` in the linted source (missing
/// spans render without a location); `activity[i]` is rule `i`'s runtime
/// totals. Returns a report holding only the FR007/FR008 findings.
pub fn coverage_join(lint: &LintReport, spans: &[Span], activity: &[RuleActivity]) -> LintReport {
    let dead_spans: Vec<Span> = lint
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::DeadRule)
        .map(|d| d.span)
        .collect();
    let mut diags = Vec::new();
    for (i, act) in activity.iter().enumerate() {
        let span = spans.get(i).copied().unwrap_or(Span::point(0, 0));
        let dead = spans.get(i).is_some() && dead_spans.contains(&span);
        if act.applied == 0 && !dead {
            let mut diag = Diagnostic::new(
                Code::UnfiredRule,
                span,
                format!("rule r{i} never fired during the profiled repair"),
            );
            diag = if act.rejected > 0 {
                diag.with_note(format!(
                    "evaluated and rejected {} time(s): the evidence pattern partially \
                     matched but never held in full",
                    act.rejected
                ))
            } else {
                diag.with_note(
                    "zero applications, zero plan replays, zero evaluations: the data may \
                     have drifted away from this rule's error pattern",
                )
            };
            diags.push(diag);
        } else if act.applied > 0 && dead {
            diags.push(
                Diagnostic::new(
                    Code::DeadRuleFired,
                    span,
                    format!(
                        "rule r{i} is flagged dead by the shadowing analysis (FR002) but \
                         fired {} time(s) at runtime",
                        act.applied
                    ),
                )
                .with_note(
                    "a fully shadowed rule cannot fire; the profile was likely taken with \
                     a different rule file or data path than the one linted",
                ),
            );
        }
    }
    LintReport::new(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint, LintOptions};
    use fixrules::io::parse_rules_spanned;
    use relation::{Schema, SymbolTable};

    fn setup(text: &str) -> (LintReport, Vec<Span>) {
        let schema = Schema::new("Travel", ["country", "capital", "city", "conf"]).unwrap();
        let mut symbols = SymbolTable::new();
        let parsed = parse_rules_spanned(text, &schema, &mut symbols).unwrap();
        let report = lint(
            &parsed.rules,
            &parsed.spans,
            &symbols,
            &LintOptions::default(),
        );
        (report, parsed.spans)
    }

    const DEAD_PAIR: &str = r#"
IF country = "China" AND capital IN {"Shanghai", "Nanjing"} THEN capital := "Beijing"
IF country = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing"
"#;

    #[test]
    fn live_rule_that_never_fired_is_fr007() {
        let (lint_report, spans) = setup(DEAD_PAIR);
        assert!(lint_report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::DeadRule));
        // r0 (live) never fired; r1 (dead) silent as the analysis predicts.
        let activity = vec![RuleActivity::default(), RuleActivity::default()];
        let cov = coverage_join(&lint_report, &spans, &activity);
        let codes: Vec<&str> = cov.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, ["FR007"]);
        assert_eq!(cov.diagnostics[0].span, spans[0]);
        assert_eq!(cov.notes(), 1, "FR007 is a note, not a warning");
    }

    #[test]
    fn dead_rule_that_fired_is_fr008() {
        let (lint_report, spans) = setup(DEAD_PAIR);
        let activity = vec![
            RuleActivity {
                applied: 3,
                rejected: 0,
            },
            RuleActivity {
                applied: 1,
                rejected: 0,
            },
        ];
        let cov = coverage_join(&lint_report, &spans, &activity);
        let codes: Vec<&str> = cov.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, ["FR008"]);
        assert_eq!(cov.diagnostics[0].span, spans[1]);
        assert_eq!(cov.warnings(), 1, "FR008 is a warning");
    }

    #[test]
    fn fired_live_rules_and_silent_dead_rules_are_clean() {
        let (lint_report, spans) = setup(DEAD_PAIR);
        let activity = vec![
            RuleActivity {
                applied: 5,
                rejected: 2,
            },
            RuleActivity::default(),
        ];
        let cov = coverage_join(&lint_report, &spans, &activity);
        assert!(cov.is_clean(), "{:?}", cov.diagnostics);
    }

    #[test]
    fn rejected_but_never_applied_notes_the_near_misses() {
        let (lint_report, spans) = setup(DEAD_PAIR);
        let activity = vec![
            RuleActivity {
                applied: 0,
                rejected: 7,
            },
            RuleActivity::default(),
        ];
        let cov = coverage_join(&lint_report, &spans, &activity);
        assert_eq!(cov.diagnostics[0].code, Code::UnfiredRule);
        assert!(cov.diagnostics[0].notes[0].contains("rejected 7 time(s)"));
    }
}
