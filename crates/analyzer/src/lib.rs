//! # fixlint — static analysis for fixing-rule sets
//!
//! The paper's dependability story is that rule sets can be certified
//! *before* any data is touched: consistency is PTIME (Fig 4) and
//! implication is decidable for a fixed schema (§4.3). This crate turns
//! those checks — plus cheaper structural ones — into a multi-pass
//! analyzer with stable diagnostic codes, rustc-style rendering and
//! deterministic JSON output, surfaced on the command line as
//! `fixctl lint`.
//!
//! | Code  | Severity | Finding |
//! |-------|----------|---------|
//! | FR000 | error    | rule file does not parse |
//! | FR001 | error    | conflicting rule pair (with witness valuation) |
//! | FR002 | warning  | dead rule, fully shadowed by an earlier rule |
//! | FR003 | warning  | redundant rule, implied by the rest of the set |
//! | FR004 | warning  | negative patterns duplicated across rules |
//! | FR005 | warning  | fact→evidence dependency cycle |
//! | FR006 | note     | redundancy check exhausted its budget |
//! | FR007 | note     | statically live rule never fired on a profiled run |
//! | FR008 | warning  | statically dead rule (FR002) fired on a profiled run |
//! | FR009 | error    | confluence violation: two rule orders repair a witness tuple differently |
//! | FR010 | error    | termination uncertifiable: fix→evidence interaction cycle |
//! | FR011 | note     | rule-set delta can invalidate certified properties |
//!
//! FR007/FR008 come from the [`coverage`] join of a static report against
//! a runtime attribution profile, not from the static passes; FR009–FR011
//! come from the whole-set certifier ([`fixcert`], surfaced as
//! `fixctl certify`), which judges the set as a rewrite system rather
//! than rule by rule.
//!
//! # Example
//!
//! ```
//! use relation::{Schema, SymbolTable};
//! use fixlint::{lint_source, LintOptions};
//!
//! let schema = Schema::new("T", ["country", "capital", "conf"]).unwrap();
//! let mut symbols = SymbolTable::new();
//! let text = r#"
//! IF country = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing"
//! IF conf = "ICDE" AND capital IN {"Shanghai"} THEN capital := "Nanjing"
//! "#;
//! let report = lint_source(text, &schema, &mut symbols, &LintOptions::default());
//! assert_eq!(report.errors(), 1); // FR001: the pair conflicts on Shanghai
//! assert!(!report.is_clean());
//! ```

#![warn(missing_docs)]

pub mod coverage;
pub mod diagnostic;
pub mod fixcert;
pub mod passes;
pub mod render;

pub use coverage::{coverage_join, RuleActivity};
pub use diagnostic::{Code, Diagnostic, Related, Severity};
pub use fixcert::{certify, certify_observed, CertOptions, Certificate};
pub use fixrules::io::Span;
pub use render::{render, render_block, render_report, render_sarif, Excerpt};

use fixrules::io::{parse_rules_spanned, RuleParseError};
use fixrules::RuleSet;
use obs::Json;
use relation::{Schema, SymbolTable};

/// Budgets for the expensive passes.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Max candidate tuples per implication check (FR003); larger models
    /// come back as FR006 notes.
    pub implication_budget: usize,
    /// Max candidate tuples to enumerate when materializing an FR001
    /// witness; larger pairs report without one.
    pub witness_budget: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            implication_budget: 1 << 20,
            witness_budget: 1 << 16,
        }
    }
}

/// Which findings are fatal for the CLI exit status: errors always, plus
/// all warnings (`--deny warnings`) and/or specific codes (`--deny
/// FR002,FR006`).
#[derive(Debug, Clone, Default)]
pub struct DenyList {
    deny_warnings: bool,
    codes: Vec<Code>,
}

impl DenyList {
    /// Nothing denied beyond errors.
    pub fn none() -> DenyList {
        DenyList::default()
    }

    /// Parse a `--deny` argument: a comma-separated list of `warnings`
    /// and/or code strings. Duplicate targets and contradictory spellings
    /// (`errors` — errors are always fatal, denying them is a no-op that
    /// usually means a typo'd severity) are rejected rather than silently
    /// accepted, so a CI config drift surfaces immediately.
    pub fn parse(spec: &str) -> Result<DenyList, String> {
        let mut deny = DenyList::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if part == "warnings" {
                if deny.deny_warnings {
                    return Err("duplicate deny target `warnings`".to_string());
                }
                deny.deny_warnings = true;
            } else if part == "errors" || part == "notes" {
                return Err(format!(
                    "unsupported deny severity `{part}` (errors are always fatal; \
                     deny notes by code, e.g. FR006)"
                ));
            } else if let Some(code) = Code::parse(part) {
                if deny.codes.contains(&code) {
                    return Err(format!("duplicate deny target `{part}`"));
                }
                deny.codes.push(code);
            } else {
                return Err(format!(
                    "unknown deny target `{part}` (expected `warnings` or a code like FR002)"
                ));
            }
        }
        Ok(deny)
    }

    /// Is this finding fatal under the list?
    pub fn is_fatal(&self, diag: &Diagnostic) -> bool {
        diag.severity == Severity::Error
            || (self.deny_warnings && diag.severity == Severity::Warning)
            || self.codes.contains(&diag.code)
    }
}

/// The analyzer's output: findings sorted by source position, then code,
/// then message — a total, deterministic order.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// The findings, in report order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Build a report, establishing the canonical order.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> LintReport {
        diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        LintReport { diagnostics }
    }

    /// Number of findings at a severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of errors.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warnings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of notes.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings fatal under `deny`.
    pub fn fatal(&self, deny: &DenyList) -> usize {
        self.diagnostics.iter().filter(|d| deny.is_fatal(d)).count()
    }

    /// Feed one `lint_finding` per diagnostic into an observer (the CLI
    /// wires this to the `lint.findings*` metrics).
    pub fn observe<O: obs::RepairObserver>(&self, observer: &O) {
        for diag in &self.diagnostics {
            observer.lint_finding(diag.code.as_str(), diag.severity.as_str());
        }
    }

    /// The report as a JSON document: `{file, findings, summary}` with
    /// byte-deterministic serialization (sorted findings, sorted object
    /// members).
    pub fn to_json(&self, file: &str) -> Json {
        let mut summary = Json::Null;
        summary.set("errors", self.errors());
        summary.set("warnings", self.warnings());
        summary.set("notes", self.notes());
        let mut obj = Json::Null;
        obj.set("file", file);
        obj.set(
            "findings",
            Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
        );
        obj.set("summary", summary);
        obj
    }
}

/// Analyze a parsed rule set. `spans` aligns with rule ids (from
/// [`fixrules::io::parse_rules_spanned`]); pass an empty slice when spans
/// are unknown and findings will render without source locations.
pub fn lint(
    rules: &RuleSet,
    spans: &[Span],
    symbols: &SymbolTable,
    opts: &LintOptions,
) -> LintReport {
    let ctx = passes::Ctx {
        rules,
        spans,
        symbols,
        opts,
    };
    let mut diags = Vec::new();
    let (consistency, mut conflict_diags) = passes::conflicts::run(&ctx);
    diags.append(&mut conflict_diags);
    let (dead, mut shadow_diags) = passes::shadow::run(&ctx);
    diags.append(&mut shadow_diags);
    diags.append(&mut passes::unreachable::run(&ctx, &dead));
    diags.append(&mut passes::redundant::run(
        &ctx,
        consistency.is_consistent(),
        &dead,
    ));
    diags.append(&mut passes::cycles::run(&ctx));
    LintReport::new(diags)
}

/// Parse `text` against `schema` and analyze it; a parse failure becomes a
/// single-FR000 report instead of an error, so callers get diagnostics
/// either way.
pub fn lint_source(
    text: &str,
    schema: &Schema,
    symbols: &mut SymbolTable,
    opts: &LintOptions,
) -> LintReport {
    match parse_rules_spanned(text, schema, symbols) {
        Ok(parsed) => lint(&parsed.rules, &parsed.spans, symbols, opts),
        Err(error) => parse_error_report(&error),
    }
}

/// A report holding the single FR000 diagnostic for a parse failure.
pub fn parse_error_report(error: &RuleParseError) -> LintReport {
    LintReport::new(vec![Diagnostic::new(
        Code::ParseError,
        error.span(),
        error.message(),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn travel_schema() -> Schema {
        Schema::new("Travel", ["country", "capital", "city", "conf"]).unwrap()
    }

    fn codes(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_ruleset_has_no_findings() {
        let mut symbols = SymbolTable::new();
        let text = r#"
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
IF country = "Canada" AND capital IN {"Toronto"} THEN capital := "Ottawa"
IF capital = "Tokyo" AND city = "Tokyo" AND conf = "ICDE" AND country IN {"China"} THEN country := "Japan"
"#;
        let report = lint_source(
            text,
            &travel_schema(),
            &mut symbols,
            &LintOptions::default(),
        );
        assert!(report.is_clean(), "{:?}", codes(&report));
    }

    #[test]
    fn conflict_reports_fr001_with_witness() {
        let mut symbols = SymbolTable::new();
        let text = r#"
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
IF conf = "ICDE" AND capital IN {"Shanghai"} THEN capital := "Nanjing"
"#;
        let report = lint_source(
            text,
            &travel_schema(),
            &mut symbols,
            &LintOptions::default(),
        );
        assert_eq!(codes(&report), vec!["FR001"]);
        let diag = &report.diagnostics[0];
        assert_eq!(diag.severity, Severity::Error);
        // Anchored at the later rule (line 3), pointing back at line 2.
        assert_eq!(diag.span.line, 3);
        assert_eq!(diag.related[0].span.line, 2);
        // The witness names the disagreeing facts.
        let notes = diag.notes.join("\n");
        assert!(notes.contains("witness tuple"), "{notes}");
        assert!(
            notes.contains("\"Beijing\"") && notes.contains("\"Nanjing\""),
            "{notes}"
        );
    }

    #[test]
    fn dead_and_redundant_rules_reported() {
        let mut symbols = SymbolTable::new();
        let text = r#"
IF country = "China" AND capital IN {"Shanghai", "Nanjing"} THEN capital := "Beijing"
IF country = "China" AND capital IN {"Hongkong", "Macau"} THEN capital := "Beijing"
IF country = "China" AND conf = "ICDE" AND capital IN {"Shanghai"} THEN capital := "Beijing"
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
"#;
        let report = lint_source(
            text,
            &travel_schema(),
            &mut symbols,
            &LintOptions::default(),
        );
        // Line 4 is dead (shadowed by line 2); line 5 is redundant (implied
        // jointly by lines 2 and 3) with its negatives split across both.
        let got: Vec<(usize, &'static str)> = report
            .diagnostics
            .iter()
            .map(|d| (d.span.line, d.code.as_str()))
            .collect();
        assert_eq!(
            got,
            vec![(4, "FR002"), (5, "FR003"), (5, "FR004"), (5, "FR004")]
        );
    }

    #[test]
    fn budget_exhaustion_is_a_note_not_a_warning() {
        let mut symbols = SymbolTable::new();
        let text = r#"
IF country = "China" AND capital IN {"Shanghai", "Nanjing"} THEN capital := "Beijing"
IF country = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing"
"#;
        let opts = LintOptions {
            implication_budget: 1,
            ..LintOptions::default()
        };
        let report = lint_source(text, &travel_schema(), &mut symbols, &opts);
        // Line 3 is dead (FR002, budget-independent); line 2's redundancy
        // check exhausts the budget and must come back FR006, not FR003.
        assert_eq!(codes(&report), vec!["FR006", "FR002"]);
        assert_eq!(report.warnings(), 1);
        assert_eq!(report.notes(), 1);
        assert!(!DenyList::parse("warnings")
            .unwrap()
            .is_fatal(&report.diagnostics[0]));
    }

    #[test]
    fn cycle_reported_once_at_first_member() {
        let mut symbols = SymbolTable::new();
        // capital's fact enables the city rule's evidence and vice versa —
        // a consistent 2-cycle.
        let text = r#"
IF city = "Pudong" AND capital IN {"Nanjing"} THEN capital := "Beijing"
IF capital = "Beijing" AND city IN {"Hangzhou"} THEN city := "Pudong"
"#;
        let report = lint_source(
            text,
            &travel_schema(),
            &mut symbols,
            &LintOptions::default(),
        );
        assert_eq!(codes(&report), vec!["FR005"]);
        let diag = &report.diagnostics[0];
        assert_eq!(diag.span.line, 2);
        assert_eq!(diag.related.len(), 1);
        assert_eq!(diag.related[0].span.line, 3);
    }

    #[test]
    fn parse_error_becomes_fr000() {
        let mut symbols = SymbolTable::new();
        let report = lint_source(
            "IF country = \"China\" THEN capital := \"Beijing\"",
            &travel_schema(),
            &mut symbols,
            &LintOptions::default(),
        );
        assert_eq!(codes(&report), vec!["FR000"]);
        assert_eq!(report.errors(), 1);
    }

    #[test]
    fn deny_list_parses_and_applies() {
        let deny = DenyList::parse("FR002, FR006").unwrap();
        let warn = Diagnostic::new(Code::DeadRule, Span::point(1, 1), "w");
        let note = Diagnostic::new(Code::ImplicationUnknown, Span::point(1, 1), "n");
        let other = Diagnostic::new(Code::RedundantRule, Span::point(1, 1), "r");
        assert!(deny.is_fatal(&warn));
        assert!(deny.is_fatal(&note));
        assert!(!deny.is_fatal(&other));
        assert!(DenyList::parse("bogus").is_err());
        // Errors are always fatal, even with nothing denied.
        let err = Diagnostic::new(Code::ConflictingRules, Span::point(1, 1), "e");
        assert!(DenyList::none().is_fatal(&err));
    }

    #[test]
    fn deny_list_rejects_duplicates_and_contradictions() {
        // Duplicate codes and duplicate `warnings` are config drift.
        let err = DenyList::parse("FR002,FR002").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = DenyList::parse("FR002, FR006, FR002").unwrap_err();
        assert!(err.contains("duplicate deny target `FR002`"), "{err}");
        let err = DenyList::parse("warnings,warnings").unwrap_err();
        assert!(err.contains("duplicate deny target `warnings`"), "{err}");
        // Severities other than `warnings` are contradictions, not codes.
        let err = DenyList::parse("errors").unwrap_err();
        assert!(err.contains("always fatal"), "{err}");
        assert!(DenyList::parse("notes").is_err());
        // Boundary cases that must still parse: empty spec, stray commas
        // and whitespace, every shipped code at once.
        assert!(DenyList::parse("").is_ok());
        assert!(DenyList::parse(" , ,").is_ok());
        let all = Code::ALL
            .iter()
            .map(|c| c.as_str())
            .collect::<Vec<_>>()
            .join(",");
        assert!(DenyList::parse(&all).is_ok());
    }

    #[test]
    fn json_report_is_deterministic_and_round_trips() {
        let mut symbols = SymbolTable::new();
        let text = r#"
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
IF conf = "ICDE" AND capital IN {"Shanghai"} THEN capital := "Nanjing"
"#;
        let report = lint_source(
            text,
            &travel_schema(),
            &mut symbols,
            &LintOptions::default(),
        );
        let a = report.to_json("rules.frl").to_string_pretty();
        let b = report.to_json("rules.frl").to_string_pretty();
        assert_eq!(a, b);
        let parsed = obs::json::parse(&a).unwrap();
        assert_eq!(parsed.to_string_pretty(), a);
        assert_eq!(
            parsed
                .get("summary")
                .and_then(|s| s.get("errors"))
                .and_then(Json::as_i64),
            Some(1)
        );
    }
}
