//! Human-readable (rustc-style) rendering of diagnostics.
//!
//! ```text
//! error[FR001]: conflicting rules: cannot agree with the rule at line 2 (...)
//!   --> examples/lint/conflicting.frl:3:1
//!    |
//!  2 | IF country = "China" AND capital IN {...} THEN capital := "Beijing"
//!    | ------------------------------------------------------------------ the other rule of the conflicting pair
//!  3 | IF conf = "ICDE" AND capital IN {"Shanghai"} THEN capital := "Nanjing"
//!    | ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^
//!    = note: witness tuple: ...
//! ```

use std::fmt::Write as _;

use fixrules::io::Span;

use crate::diagnostic::Diagnostic;
use crate::LintReport;

/// One source excerpt of a rendered block: the span to show, the
/// underline marker (`^` primary, `-` related), and an optional label
/// after the underline.
#[derive(Debug, Clone)]
pub struct Excerpt {
    /// Location in the source text.
    pub span: Span,
    /// Underline character (`^` for primary, `-` for related).
    pub marker: char,
    /// Trailing label after the underline; empty for none.
    pub label: String,
}

/// Render one rustc-style block from raw parts: a `header` line, a
/// `location` (shown after `-->`), source `excerpts` underlined in source
/// order, and trailing `= note:` lines. [`render`] delegates here;
/// `fixctl explain` reuses it for provenance chains, where the "source"
/// is the rule listing rather than a lint file.
pub fn render_block(
    header: &str,
    location: &str,
    excerpts: &[Excerpt],
    notes: &[String],
    source: &str,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "  --> {location}");
    let mut excerpts: Vec<&Excerpt> = excerpts.iter().collect();
    excerpts.sort_by_key(|e| e.span);
    excerpts.retain(|e| e.span.line > 0);
    let gutter = excerpts
        .iter()
        .map(|e| e.span.line.to_string().len())
        .max()
        .unwrap_or(1);
    if !excerpts.is_empty() {
        let _ = writeln!(out, "{:gutter$} |", "");
    }
    for e in excerpts {
        let text = source.lines().nth(e.span.line - 1).unwrap_or("");
        let _ = writeln!(out, "{:>gutter$} | {}", e.span.line, text);
        let pad = " ".repeat(e.span.col.saturating_sub(1));
        let underline = e.marker.to_string().repeat(e.span.len.max(1));
        let label = if e.label.is_empty() {
            String::new()
        } else {
            format!(" {}", e.label)
        };
        let _ = writeln!(out, "{:gutter$} | {pad}{underline}{label}", "");
    }
    for note in notes {
        let _ = writeln!(out, "{:gutter$} = note: {note}", "");
    }
    out
}

/// Render one diagnostic with source excerpts from `source` (the rule-file
/// text) and `file` as the displayed path.
pub fn render(diag: &Diagnostic, file: &str, source: &str) -> String {
    let mut excerpts = vec![Excerpt {
        span: diag.span,
        marker: '^',
        label: String::new(),
    }];
    for related in &diag.related {
        excerpts.push(Excerpt {
            span: related.span,
            marker: '-',
            label: related.message.clone(),
        });
    }
    let header = format!(
        "{}[{}]: {}",
        diag.severity.as_str(),
        diag.code.as_str(),
        diag.message
    );
    let location = format!("{file}:{}:{}", diag.span.line, diag.span.col);
    render_block(&header, &location, &excerpts, &diag.notes, source)
}

/// Render a whole report followed by a one-line summary.
pub fn render_report(report: &LintReport, file: &str, source: &str) -> String {
    let mut out = String::new();
    for diag in &report.diagnostics {
        out.push_str(&render(diag, file, source));
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "{file}: {} error(s), {} warning(s), {} note(s)",
        report.errors(),
        report.warnings(),
        report.notes()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::{Code, Diagnostic};

    #[test]
    fn renders_snippet_with_caret_underline() {
        let source = "# header\nIF a = \"1\" AND b IN {\"x\"} THEN b := \"y\"\n";
        let diag = Diagnostic::new(
            Code::DeadRule,
            Span::new(2, 1, 40),
            "rule can never contribute",
        )
        .with_note("sample note");
        let text = render(&diag, "rules.frl", source);
        assert!(
            text.contains("warning[FR002]: rule can never contribute"),
            "{text}"
        );
        assert!(text.contains("--> rules.frl:2:1"), "{text}");
        assert!(text.contains("2 | IF a = \"1\""), "{text}");
        assert!(text.contains("^^^^^"), "{text}");
        assert!(text.contains("= note: sample note"), "{text}");
    }

    #[test]
    fn related_spans_use_dashes_and_labels() {
        let source = "IF a = \"1\" AND b IN {\"x\"} THEN b := \"y\"\nIF a = \"1\" AND b IN {\"x\"} THEN b := \"z\"\n";
        let diag = Diagnostic::new(Code::ConflictingRules, Span::new(2, 1, 40), "conflict")
            .with_related(Span::new(1, 1, 40), "the other rule");
        let text = render(&diag, "r.frl", source);
        // Related line appears before the primary (source order) with dashes.
        let dash_pos = text.find("----").expect("dash underline");
        let caret_pos = text.find("^^^^").expect("caret underline");
        assert!(dash_pos < caret_pos, "{text}");
        assert!(
            text.contains("---- the other rule") || text.contains("- the other rule"),
            "{text}"
        );
    }
}
