//! Human-readable (rustc-style) rendering of diagnostics.
//!
//! ```text
//! error[FR001]: conflicting rules: cannot agree with the rule at line 2 (...)
//!   --> examples/lint/conflicting.frl:3:1
//!    |
//!  2 | IF country = "China" AND capital IN {...} THEN capital := "Beijing"
//!    | ------------------------------------------------------------------ the other rule of the conflicting pair
//!  3 | IF conf = "ICDE" AND capital IN {"Shanghai"} THEN capital := "Nanjing"
//!    | ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^
//!    = note: witness tuple: ...
//! ```

use std::fmt::Write as _;

use fixrules::io::Span;

use crate::diagnostic::Diagnostic;
use crate::LintReport;

/// Render one diagnostic with source excerpts from `source` (the rule-file
/// text) and `file` as the displayed path.
pub fn render(diag: &Diagnostic, file: &str, source: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}[{}]: {}",
        diag.severity.as_str(),
        diag.code.as_str(),
        diag.message
    );
    let _ = writeln!(out, "  --> {file}:{}:{}", diag.span.line, diag.span.col);

    // Snippet lines: the primary span (underlined with ^) plus every
    // related span (underlined with -), in source order.
    let mut excerpts: Vec<(Span, char, &str)> = vec![(diag.span, '^', "")];
    for related in &diag.related {
        excerpts.push((related.span, '-', &related.message));
    }
    excerpts.sort_by_key(|&(span, ..)| span);
    excerpts.retain(|&(span, ..)| span.line > 0);
    let gutter = excerpts
        .iter()
        .map(|&(span, ..)| span.line.to_string().len())
        .max()
        .unwrap_or(1);
    if !excerpts.is_empty() {
        let _ = writeln!(out, "{:gutter$} |", "");
    }
    for (span, marker, label) in excerpts {
        let text = source.lines().nth(span.line - 1).unwrap_or("");
        let _ = writeln!(out, "{:>gutter$} | {}", span.line, text);
        let pad = " ".repeat(span.col.saturating_sub(1));
        let underline = marker.to_string().repeat(span.len.max(1));
        let label = if label.is_empty() {
            String::new()
        } else {
            format!(" {label}")
        };
        let _ = writeln!(out, "{:gutter$} | {pad}{underline}{label}", "");
    }
    for note in &diag.notes {
        let _ = writeln!(out, "{:gutter$} = note: {note}", "");
    }
    out
}

/// Render a whole report followed by a one-line summary.
pub fn render_report(report: &LintReport, file: &str, source: &str) -> String {
    let mut out = String::new();
    for diag in &report.diagnostics {
        out.push_str(&render(diag, file, source));
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "{file}: {} error(s), {} warning(s), {} note(s)",
        report.errors(),
        report.warnings(),
        report.notes()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::{Code, Diagnostic};

    #[test]
    fn renders_snippet_with_caret_underline() {
        let source = "# header\nIF a = \"1\" AND b IN {\"x\"} THEN b := \"y\"\n";
        let diag = Diagnostic::new(
            Code::DeadRule,
            Span::new(2, 1, 40),
            "rule can never contribute",
        )
        .with_note("sample note");
        let text = render(&diag, "rules.frl", source);
        assert!(
            text.contains("warning[FR002]: rule can never contribute"),
            "{text}"
        );
        assert!(text.contains("--> rules.frl:2:1"), "{text}");
        assert!(text.contains("2 | IF a = \"1\""), "{text}");
        assert!(text.contains("^^^^^"), "{text}");
        assert!(text.contains("= note: sample note"), "{text}");
    }

    #[test]
    fn related_spans_use_dashes_and_labels() {
        let source = "IF a = \"1\" AND b IN {\"x\"} THEN b := \"y\"\nIF a = \"1\" AND b IN {\"x\"} THEN b := \"z\"\n";
        let diag = Diagnostic::new(Code::ConflictingRules, Span::new(2, 1, 40), "conflict")
            .with_related(Span::new(1, 1, 40), "the other rule");
        let text = render(&diag, "r.frl", source);
        // Related line appears before the primary (source order) with dashes.
        let dash_pos = text.find("----").expect("dash underline");
        let caret_pos = text.find("^^^^").expect("caret underline");
        assert!(dash_pos < caret_pos, "{text}");
        assert!(
            text.contains("---- the other rule") || text.contains("- the other rule"),
            "{text}"
        );
    }
}
