//! Human-readable (rustc-style) rendering of diagnostics.
//!
//! ```text
//! error[FR001]: conflicting rules: cannot agree with the rule at line 2 (...)
//!   --> examples/lint/conflicting.frl:3:1
//!    |
//!  2 | IF country = "China" AND capital IN {...} THEN capital := "Beijing"
//!    | ------------------------------------------------------------------ the other rule of the conflicting pair
//!  3 | IF conf = "ICDE" AND capital IN {"Shanghai"} THEN capital := "Nanjing"
//!    | ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^
//!    = note: witness tuple: ...
//! ```

use std::fmt::Write as _;

use fixrules::io::Span;
use obs::Json;

use crate::diagnostic::{Code, Diagnostic, Severity};
use crate::LintReport;

/// One source excerpt of a rendered block: the span to show, the
/// underline marker (`^` primary, `-` related), and an optional label
/// after the underline.
#[derive(Debug, Clone)]
pub struct Excerpt {
    /// Location in the source text.
    pub span: Span,
    /// Underline character (`^` for primary, `-` for related).
    pub marker: char,
    /// Trailing label after the underline; empty for none.
    pub label: String,
}

/// Render one rustc-style block from raw parts: a `header` line, a
/// `location` (shown after `-->`), source `excerpts` underlined in source
/// order, and trailing `= note:` lines. [`render`] delegates here;
/// `fixctl explain` reuses it for provenance chains, where the "source"
/// is the rule listing rather than a lint file.
pub fn render_block(
    header: &str,
    location: &str,
    excerpts: &[Excerpt],
    notes: &[String],
    source: &str,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "  --> {location}");
    let mut excerpts: Vec<&Excerpt> = excerpts.iter().collect();
    excerpts.sort_by_key(|e| e.span);
    excerpts.retain(|e| e.span.line > 0);
    let gutter = excerpts
        .iter()
        .map(|e| e.span.line.to_string().len())
        .max()
        .unwrap_or(1);
    if !excerpts.is_empty() {
        let _ = writeln!(out, "{:gutter$} |", "");
    }
    for e in excerpts {
        let text = source.lines().nth(e.span.line - 1).unwrap_or("");
        let _ = writeln!(out, "{:>gutter$} | {}", e.span.line, text);
        let pad = " ".repeat(e.span.col.saturating_sub(1));
        let underline = e.marker.to_string().repeat(e.span.len.max(1));
        let label = if e.label.is_empty() {
            String::new()
        } else {
            format!(" {}", e.label)
        };
        let _ = writeln!(out, "{:gutter$} | {pad}{underline}{label}", "");
    }
    for note in notes {
        let _ = writeln!(out, "{:gutter$} = note: {note}", "");
    }
    out
}

/// Render one diagnostic with source excerpts from `source` (the rule-file
/// text) and `file` as the displayed path.
pub fn render(diag: &Diagnostic, file: &str, source: &str) -> String {
    let mut excerpts = vec![Excerpt {
        span: diag.span,
        marker: '^',
        label: String::new(),
    }];
    for related in &diag.related {
        excerpts.push(Excerpt {
            span: related.span,
            marker: '-',
            label: related.message.clone(),
        });
    }
    let header = format!(
        "{}[{}]: {}",
        diag.severity.as_str(),
        diag.code.as_str(),
        diag.message
    );
    let location = format!("{file}:{}:{}", diag.span.line, diag.span.col);
    render_block(&header, &location, &excerpts, &diag.notes, source)
}

/// Render a whole report followed by a one-line summary.
pub fn render_report(report: &LintReport, file: &str, source: &str) -> String {
    let mut out = String::new();
    for diag in &report.diagnostics {
        out.push_str(&render(diag, file, source));
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "{file}: {} error(s), {} warning(s), {} note(s)",
        report.errors(),
        report.warnings(),
        report.notes()
    );
    out
}

/// Serialize a report as a SARIF 2.1.0 log (one run, the `fixlint`
/// driver), so findings flow into code-scanning UIs. Std-only: built on
/// the deterministic [`Json`] encoder, so identical reports are
/// byte-identical SARIF — pinned by the golden file under
/// `examples/lint/`.
///
/// Shape per the spec: `runs[0].tool.driver.rules` carries every stable
/// code (index-linked from each result via `ruleIndex`), and each finding
/// becomes a `result` with `level`, `message.text`, one physical location,
/// related locations, and the notes folded into the message (SARIF has no
/// first-class notes field).
pub fn render_sarif(report: &LintReport, file: &str) -> String {
    let rules: Vec<Json> = Code::ALL
        .iter()
        .map(|code| {
            let mut desc = Json::Null;
            desc.set("text", code.summary());
            let mut rule = Json::Null;
            rule.set("id", code.as_str());
            rule.set("shortDescription", desc);
            rule
        })
        .collect();

    let results: Vec<Json> = report
        .diagnostics
        .iter()
        .map(|diag| {
            let mut message = Json::Null;
            let text = if diag.notes.is_empty() {
                diag.message.clone()
            } else {
                format!("{}\n{}", diag.message, diag.notes.join("\n"))
            };
            message.set("text", text);

            let mut result = Json::Null;
            result.set("ruleId", diag.code.as_str());
            result.set(
                "ruleIndex",
                Code::ALL.iter().position(|c| *c == diag.code).unwrap_or(0),
            );
            result.set("level", sarif_level(diag.severity));
            result.set("message", message);
            result.set(
                "locations",
                Json::Arr(vec![sarif_location(file, diag.span)]),
            );
            if !diag.related.is_empty() {
                result.set(
                    "relatedLocations",
                    Json::Arr(
                        diag.related
                            .iter()
                            .map(|r| {
                                let mut loc = sarif_location(file, r.span);
                                let mut msg = Json::Null;
                                msg.set("text", r.message.as_str());
                                loc.set("message", msg);
                                loc
                            })
                            .collect(),
                    ),
                );
            }
            result
        })
        .collect();

    let mut driver = Json::Null;
    driver.set("name", "fixlint");
    driver.set(
        "informationUri",
        "https://dl.acm.org/doi/10.1145/2588555.2610494",
    );
    driver.set("rules", Json::Arr(rules));
    let mut tool = Json::Null;
    tool.set("driver", driver);
    let mut run = Json::Null;
    run.set("tool", tool);
    run.set("results", Json::Arr(results));
    let mut log = Json::Null;
    log.set("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
    log.set("version", "2.1.0");
    log.set("runs", Json::Arr(vec![run]));
    log.to_string_pretty()
}

/// SARIF `level` for a severity (`note` maps to SARIF's `note`).
fn sarif_level(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Note => "note",
    }
}

/// A SARIF physical location: artifact URI plus a region. Spans cover one
/// line, so `endColumn` is start + len (SARIF end columns are exclusive).
fn sarif_location(file: &str, span: Span) -> Json {
    let mut artifact = Json::Null;
    artifact.set("uri", file);
    let mut region = Json::Null;
    region.set("startLine", span.line.max(1));
    region.set("startColumn", span.col.max(1));
    region.set("endColumn", span.col.max(1) + span.len);
    let mut physical = Json::Null;
    physical.set("artifactLocation", artifact);
    physical.set("region", region);
    let mut loc = Json::Null;
    loc.set("physicalLocation", physical);
    loc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::{Code, Diagnostic};

    #[test]
    fn renders_snippet_with_caret_underline() {
        let source = "# header\nIF a = \"1\" AND b IN {\"x\"} THEN b := \"y\"\n";
        let diag = Diagnostic::new(
            Code::DeadRule,
            Span::new(2, 1, 40),
            "rule can never contribute",
        )
        .with_note("sample note");
        let text = render(&diag, "rules.frl", source);
        assert!(
            text.contains("warning[FR002]: rule can never contribute"),
            "{text}"
        );
        assert!(text.contains("--> rules.frl:2:1"), "{text}");
        assert!(text.contains("2 | IF a = \"1\""), "{text}");
        assert!(text.contains("^^^^^"), "{text}");
        assert!(text.contains("= note: sample note"), "{text}");
    }

    #[test]
    fn sarif_log_is_valid_deterministic_json() {
        let diag = Diagnostic::new(Code::ConflictingRules, Span::new(3, 1, 70), "conflict")
            .with_related(Span::new(2, 1, 80), "the other rule")
            .with_note("witness tuple: capital = \"Shanghai\"");
        let report = LintReport::new(vec![diag]);
        let a = render_sarif(&report, "examples/lint/conflicting.frl");
        let b = render_sarif(&report, "examples/lint/conflicting.frl");
        assert_eq!(a, b);
        let log = obs::json::parse(&a).unwrap();
        assert_eq!(log.get("version").and_then(Json::as_str), Some("2.1.0"));
        let runs = log.get("runs").and_then(Json::as_arr).unwrap();
        let results = runs[0].get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].get("ruleId").and_then(Json::as_str),
            Some("FR001")
        );
        assert_eq!(
            results[0].get("level").and_then(Json::as_str),
            Some("error")
        );
        let region = results[0]
            .get("locations")
            .and_then(Json::as_arr)
            .and_then(|l| l[0].get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .unwrap();
        assert_eq!(region.get("startLine").and_then(Json::as_i64), Some(3));
        assert_eq!(region.get("endColumn").and_then(Json::as_i64), Some(71));
        // Every shipped code appears in the driver's rule table, and each
        // result's ruleIndex points back at its code.
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(rules.len(), Code::ALL.len());
        let idx = results[0].get("ruleIndex").and_then(Json::as_i64).unwrap();
        assert_eq!(
            rules[idx as usize].get("id").and_then(Json::as_str),
            Some("FR001")
        );
        // Notes fold into the message text.
        let text = results[0]
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(text.contains("witness tuple"), "{text}");
    }

    #[test]
    fn related_spans_use_dashes_and_labels() {
        let source = "IF a = \"1\" AND b IN {\"x\"} THEN b := \"y\"\nIF a = \"1\" AND b IN {\"x\"} THEN b := \"z\"\n";
        let diag = Diagnostic::new(Code::ConflictingRules, Span::new(2, 1, 40), "conflict")
            .with_related(Span::new(1, 1, 40), "the other rule");
        let text = render(&diag, "r.frl", source);
        // Related line appears before the primary (source order) with dashes.
        let dash_pos = text.find("----").expect("dash underline");
        let caret_pos = text.find("^^^^").expect("caret underline");
        assert!(dash_pos < caret_pos, "{text}");
        assert!(
            text.contains("---- the other rule") || text.contains("- the other rule"),
            "{text}"
        );
    }
}
