//! FR003 / FR006 — redundant rules, via the §4.3 implication check.
//!
//! A rule φ is redundant when `Σ \ {φ} |= φ`: removing it changes no
//! repair. The check is exact on the small-model candidate space, so a
//! positive is never a false positive; when the space exceeds the budget
//! the outcome is [`ImplicationOutcome::Unknown`] and the pass emits an
//! FR006 *note* instead — explicitly undecided, never promoted to a
//! warning.
//!
//! The pass is skipped entirely for inconsistent sets (implication is only
//! defined over a consistent Σ) and for rules the shadow pass already
//! proved dead (shadowing is a stronger, cheaper form of redundancy).

use fixrules::implication::{implies, model_size, ImplicationOutcome};
use fixrules::RuleSet;

use crate::diagnostic::{Code, Diagnostic};
use crate::passes::Ctx;

/// Run the pass. `consistent` comes from the conflicts pass; `dead` from
/// the shadow pass.
pub fn run(ctx: &Ctx<'_>, consistent: bool, dead: &[bool]) -> Vec<Diagnostic> {
    if !consistent {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for (id, rule) in ctx.rules.iter() {
        if dead[id.index()] {
            continue;
        }
        let mut rest = RuleSet::new(ctx.rules.schema().clone());
        for (other_id, other) in ctx.rules.iter() {
            if other_id != id {
                rest.push(other.clone());
            }
        }
        match implies(&rest, rule, ctx.opts.implication_budget) {
            ImplicationOutcome::Implied => diags.push(Diagnostic::new(
                Code::RedundantRule,
                ctx.span(id),
                format!(
                    "rule is redundant: the other {} rule(s) imply it, so removing \
                         it changes no repair",
                    rest.len()
                ),
            )),
            ImplicationOutcome::Unknown { candidates } => diags.push(
                Diagnostic::new(
                    Code::ImplicationUnknown,
                    ctx.span(id),
                    format!(
                        "redundancy undecided: the implication check needs {candidates} \
                         candidate tuples but the budget is {}",
                        ctx.opts.implication_budget
                    ),
                )
                .with_note(format!(
                    "re-run with a budget of at least {} to decide this rule",
                    model_size(&rest, rule)
                )),
            ),
            // NotImplied: the rule pulls its weight. ExtensionInconsistent
            // cannot happen — Σ itself is consistent, so Σ \ {φ} ∪ {φ} = Σ
            // is too.
            ImplicationOutcome::NotImplied { .. } | ImplicationOutcome::ExtensionInconsistent => {}
        }
    }
    diags
}
