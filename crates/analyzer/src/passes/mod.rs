//! The analyzer passes, each one source file:
//!
//! 1. [`conflicts`] — FR001, pairwise inconsistency with a materialized
//!    witness valuation;
//! 2. [`shadow`] — FR002, rules an earlier rule fully shadows;
//! 3. [`mod@unreachable`] — FR004, negative patterns duplicated across rules
//!    with the same evidence and fact;
//! 4. [`redundant`] — FR003/FR006, rules implied by the rest of the set
//!    (via the §4.3 small-model implication check);
//! 5. [`cycles`] — FR005, strongly connected components of the
//!    fact→evidence dependency graph.
//!
//! Passes are pure functions from a [`Ctx`] to diagnostics; ordering
//! dependencies (redundancy must skip dead rules, everything skips an
//! inconsistent set where noted) are threaded explicitly by the driver in
//! [`crate::lint`].

pub mod conflicts;
pub mod cycles;
pub mod redundant;
pub mod shadow;
pub mod unreachable;

use fixrules::io::Span;
use fixrules::rule::FixingRule;
use fixrules::{RuleId, RuleSet};
use relation::SymbolTable;

use crate::LintOptions;

/// Everything a pass can see: the rules, where each was written, the
/// interner (for rendering values in messages), and the budgets.
pub struct Ctx<'a> {
    /// The rule set under analysis.
    pub rules: &'a RuleSet,
    /// Per-rule source spans, aligned with rule ids (missing entries fall
    /// back to an unknown span).
    pub spans: &'a [Span],
    /// The symbol table the rules were interned into.
    pub symbols: &'a SymbolTable,
    /// Analysis budgets.
    pub opts: &'a LintOptions,
}

impl Ctx<'_> {
    /// Source span of a rule (unknown spans render without a snippet).
    pub fn span(&self, id: RuleId) -> Span {
        self.spans.get(id.index()).copied().unwrap_or_default()
    }

    /// `"line N"` for messages referring to another rule.
    pub fn line_ref(&self, id: RuleId) -> String {
        format!("line {}", self.span(id).line)
    }

    /// Render a value for a message: the quoted string behind a symbol.
    pub fn value(&self, symbol: relation::Symbol) -> String {
        format!("\"{}\"", self.symbols.resolve(symbol))
    }

    /// Render an attribute name.
    pub fn attr(&self, attr: relation::AttrId) -> &str {
        self.rules.schema().attr_name(attr)
    }
}

/// True when every evidence cell of `weaker` appears identically in
/// `stronger` — i.e. `weaker`'s evidence pattern matches a superset of the
/// tuples `stronger`'s does.
pub(crate) fn evidence_subsumes(weaker: &FixingRule, stronger: &FixingRule) -> bool {
    weaker
        .x()
        .iter()
        .zip(weaker.tp())
        .all(|(&attr, &val)| stronger.evidence_value(attr) == Some(val))
}

/// True when every negative pattern of `inner` appears in `outer`.
pub(crate) fn negatives_subset(inner: &FixingRule, outer: &FixingRule) -> bool {
    inner.neg().iter().all(|v| outer.neg_contains(*v))
}
