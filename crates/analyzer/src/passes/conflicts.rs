//! FR001 — conflicting rule pairs.
//!
//! Runs the Fig 4 characterization (`isConsist_r`) over the whole set and
//! upgrades each conflicting pair into a diagnostic with a *minimal
//! witness*: a concrete evidence valuation plus the two disagreeing fixes,
//! materialized by the enumeration checker
//! ([`fixrules::consistency::conflict_witness`]). The witness enumeration
//! is skipped (the diagnostic still fires, without the notes) when the
//! pair's candidate space exceeds the witness budget.

use fixrules::consistency::enumerate::WILDCARD;
use fixrules::consistency::{
    conflict_witness, is_consistent_characterize, ConflictCase, ConsistencyReport,
};
use relation::Symbol;

use crate::diagnostic::{Code, Diagnostic};
use crate::passes::Ctx;

/// Run the pass. Returns the consistency report (later passes gate on it)
/// alongside the FR001 diagnostics.
pub fn run(ctx: &Ctx<'_>) -> (ConsistencyReport, Vec<Diagnostic>) {
    let report = is_consistent_characterize(ctx.rules, usize::MAX);
    let mut diags = Vec::with_capacity(report.conflicts.len());
    for conflict in &report.conflicts {
        let mut diag = Diagnostic::new(
            Code::ConflictingRules,
            ctx.span(conflict.second),
            format!(
                "conflicting rules: cannot agree with the rule at {} ({})",
                ctx.line_ref(conflict.first),
                case_text(conflict.case)
            ),
        )
        .with_related(
            ctx.span(conflict.first),
            "the other rule of the conflicting pair",
        );
        if let Some(witness) = conflict_witness(ctx.rules, conflict, ctx.opts.witness_budget) {
            diag = diag
                .with_note(format!("witness tuple: {}", valuation(ctx, &witness.tuple)))
                .with_note(disagreement(ctx, &witness.fixes));
        }
        diags.push(diag);
    }
    (report, diags)
}

fn case_text(case: ConflictCase) -> &'static str {
    match case {
        ConflictCase::SameBDifferentFacts => {
            "both repair the same attribute with different facts on overlapping negative patterns"
        }
        ConflictCase::BiInXj | ConflictCase::BjInXi => {
            "one rule rewrites an attribute the other reads as evidence"
        }
        ConflictCase::Mutual => "each rule rewrites an attribute the other reads as evidence",
    }
}

/// `country = "China", capital = "Shanghai"` — wildcard cells omitted.
fn valuation(ctx: &Ctx<'_>, tuple: &[Symbol]) -> String {
    let parts: Vec<String> = ctx
        .rules
        .schema()
        .attr_ids()
        .filter(|a| tuple[a.index()] != WILDCARD)
        .map(|a| format!("{} = {}", ctx.attr(a), ctx.value(tuple[a.index()])))
        .collect();
    parts.join(", ")
}

/// `the two fixes disagree on capital: "Beijing" vs "Nanjing"`.
fn disagreement(ctx: &Ctx<'_>, fixes: &[Vec<Symbol>; 2]) -> String {
    let parts: Vec<String> = ctx
        .rules
        .schema()
        .attr_ids()
        .filter(|a| fixes[0][a.index()] != fixes[1][a.index()])
        .map(|a| {
            format!(
                "{}: {} vs {}",
                ctx.attr(a),
                ctx.value(fixes[0][a.index()]),
                ctx.value(fixes[1][a.index()])
            )
        })
        .collect();
    format!("the two fixes disagree on {}", parts.join(", "))
}
