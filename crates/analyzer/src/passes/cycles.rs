//! FR005 — fact→evidence dependency cycles.
//!
//! Edge `i → j` when rule `i`'s fact lands exactly on a cell rule `j`
//! reads as evidence (`B_i ∈ X_j` and `tp_j[B_i] = fact_i`): firing `i`
//! can newly enable `j`. A strongly connected component of two or more
//! rules means the chase can enable the members in a loop, so which rule
//! fires first depends on chase order — harmless for a consistent set
//! (the fix is unique regardless) but fragile under rule edits, hence a
//! warning. Self-loops are impossible (`B ∉ X` by construction).

use crate::diagnostic::{Code, Diagnostic};
use crate::passes::Ctx;

/// Run the pass: Tarjan SCC over the dependency graph, one diagnostic per
/// component of size ≥ 2, anchored at the member written first.
pub fn run(ctx: &Ctx<'_>) -> Vec<Diagnostic> {
    let rules: Vec<_> = ctx.rules.iter().collect();
    let n = rules.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &(_, from)) in rules.iter().enumerate() {
        for (j, &(_, to)) in rules.iter().enumerate() {
            if i != j && to.evidence_value(from.b()) == Some(from.fact()) {
                edges[i].push(j);
            }
        }
    }

    let mut diags = Vec::new();
    for component in tarjan_sccs(&edges) {
        if component.len() < 2 {
            continue;
        }
        // Anchor at the member that appears first in the file.
        let mut members: Vec<usize> = component;
        members.sort_by_key(|&k| ctx.span(rules[k].0));
        let (anchor_id, _) = rules[members[0]];
        let lines: Vec<String> = members
            .iter()
            .map(|&k| ctx.span(rules[k].0).line.to_string())
            .collect();
        let mut diag = Diagnostic::new(
            Code::RuleCycle,
            ctx.span(anchor_id),
            format!(
                "{} rules form a fact-to-evidence dependency cycle (lines {}): \
                 each one's fact can enable another's evidence, so firing order \
                 depends on chase order",
                members.len(),
                lines.join(", ")
            ),
        );
        for &k in &members[1..] {
            diag = diag.with_related(ctx.span(rules[k].0), "cycle member");
        }
        diags.push(diag);
    }
    diags
}

/// Iterative Tarjan strongly-connected components. Components are returned
/// in a deterministic order (a function of the deterministic edge lists).
/// Shared with `fixcert`, whose interaction graph uses the same edges.
pub(crate) fn tarjan_sccs(edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        frames.push((start, 0));
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = edges[v].get(*child) {
                *child += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(component);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::tarjan_sccs;

    #[test]
    fn finds_nontrivial_components() {
        // 0 -> 1 -> 2 -> 0 (a 3-cycle), 3 -> 0 (a tail), 4 isolated.
        let edges = vec![vec![1], vec![2], vec![0], vec![0], vec![]];
        let mut nontrivial: Vec<Vec<usize>> = tarjan_sccs(&edges)
            .into_iter()
            .filter(|c| c.len() > 1)
            .map(|mut c| {
                c.sort();
                c
            })
            .collect();
        nontrivial.sort();
        assert_eq!(nontrivial, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn two_independent_cycles() {
        let edges = vec![vec![1], vec![0], vec![3], vec![2]];
        let mut nontrivial: Vec<Vec<usize>> = tarjan_sccs(&edges)
            .into_iter()
            .map(|mut c| {
                c.sort();
                c
            })
            .collect();
        nontrivial.sort();
        assert_eq!(nontrivial, vec![vec![0, 1], vec![2, 3]]);
    }
}
