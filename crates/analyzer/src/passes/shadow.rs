//! FR002 — dead (shadowed) rules.
//!
//! A rule is *dead* when an earlier rule matches every tuple it matches
//! (weaker-or-equal evidence, superset negative patterns) and applies the
//! same fix to the same attribute: the later rule can never be the first
//! to fire, and firing it changes nothing the earlier rule would not
//! already have done. Cross-fact shadowing is deliberately excluded — a
//! pattern-subsumed pair with *different* facts is a conflict and is
//! reported as FR001 by the conflicts pass instead.

use crate::diagnostic::{Code, Diagnostic};
use crate::passes::{evidence_subsumes, negatives_subset, Ctx};

/// Run the pass. Returns one dead flag per rule (in rule-id order) plus
/// the FR002 diagnostics; later passes use the flags to avoid re-reporting
/// dead rules as redundant.
pub fn run(ctx: &Ctx<'_>) -> (Vec<bool>, Vec<Diagnostic>) {
    let rules: Vec<_> = ctx.rules.iter().collect();
    let mut dead = vec![false; rules.len()];
    let mut diags = Vec::new();
    for (j, &(jid, rule)) in rules.iter().enumerate() {
        let shadowing = rules[..j].iter().find(|&&(iid, earlier)| {
            !dead[iid.index()]
                && earlier.b() == rule.b()
                && earlier.fact() == rule.fact()
                && evidence_subsumes(earlier, rule)
                && negatives_subset(rule, earlier)
        });
        if let Some(&(iid, _)) = shadowing {
            dead[jid.index()] = true;
            diags.push(
                Diagnostic::new(
                    Code::DeadRule,
                    ctx.span(jid),
                    format!(
                        "rule can never contribute: the rule at {} matches every tuple \
                         this rule matches and applies the same fix",
                        ctx.line_ref(iid)
                    ),
                )
                .with_related(ctx.span(iid), "the shadowing rule"),
            );
        }
    }
    (dead, diags)
}
