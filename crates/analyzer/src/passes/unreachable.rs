//! FR004 — negative patterns duplicated across rules.
//!
//! When two live rules repair the same attribute to the same fact and one
//! rule's evidence subsumes the other's, any negative pattern they share
//! is handled twice: a tuple carrying the shared value is already repaired
//! identically by the broader rule, so the overlap on the more specific
//! rule buys nothing and is a likely copy-paste residue. (A *full* overlap
//! with weaker evidence is a dead rule — FR002 — and is not re-reported
//! here.)

use relation::Symbol;

use crate::diagnostic::{Code, Diagnostic};
use crate::passes::{evidence_subsumes, Ctx};

/// Run the pass over live rules only (`dead` comes from the shadow pass).
pub fn run(ctx: &Ctx<'_>, dead: &[bool]) -> Vec<Diagnostic> {
    let rules: Vec<_> = ctx.rules.iter().collect();
    let mut diags = Vec::new();
    for (j, &(jid, rule)) in rules.iter().enumerate() {
        if dead[jid.index()] {
            continue;
        }
        for &(iid, other) in rules.iter().take(j) {
            if dead[iid.index()] || other.b() != rule.b() || other.fact() != rule.fact() {
                continue;
            }
            // Anchor the warning at the rule with the more specific
            // evidence; on equal evidence, at the later rule (`rule`).
            let (anchor, anchor_rule, broader, broader_rule) = if evidence_subsumes(other, rule) {
                (jid, rule, iid, other)
            } else if evidence_subsumes(rule, other) {
                (iid, other, jid, rule)
            } else {
                continue;
            };
            let overlap: Vec<Symbol> = anchor_rule
                .neg()
                .iter()
                .copied()
                .filter(|&v| broader_rule.neg_contains(v))
                .collect();
            if overlap.is_empty() {
                continue;
            }
            let values: Vec<String> = overlap.iter().map(|&v| ctx.value(v)).collect();
            diags.push(
                Diagnostic::new(
                    Code::UnreachableNegative,
                    ctx.span(anchor),
                    format!(
                        "negative pattern{} {} duplicated: the rule at {} already repairs \
                         {} identically on this evidence",
                        if values.len() > 1 { "s" } else { "" },
                        values.join(", "),
                        ctx.line_ref(broader),
                        if values.len() > 1 { "them" } else { "it" },
                    ),
                )
                .with_related(ctx.span(broader), "the overlapping rule"),
            );
        }
    }
    diags
}
