//! The diagnostic model: stable codes, severities, spans, and the
//! deterministic JSON encoding.
//!
//! Codes are append-only — once shipped, an `FRxxx` code keeps its meaning
//! forever so CI configurations (`--deny FR002`) stay valid across
//! releases.

use fixrules::io::Span;
use obs::Json;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The rule set is unusable as written (e.g. inconsistent).
    Error,
    /// The rule set works but contains a defect worth fixing.
    Warning,
    /// Informational: something the analyzer could not decide.
    Note,
}

impl Severity {
    /// Lowercase display name (`error`/`warning`/`note`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// Stable diagnostic codes emitted by the analyzer passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// FR000: the rule file does not parse.
    ParseError,
    /// FR001: two rules can drive some tuple to two different fixes.
    ConflictingRules,
    /// FR002: a rule is shadowed by an earlier rule (same fix on a
    /// superset of the tuples) and can never contribute.
    DeadRule,
    /// FR003: a rule is implied by the rest of the set — removing it
    /// changes no repair.
    RedundantRule,
    /// FR004: negative patterns overlap another rule with the same
    /// evidence and fact, so the overlap is repaired twice.
    UnreachableNegative,
    /// FR005: rules form a fact→evidence dependency cycle.
    RuleCycle,
    /// FR006: the redundancy check ran out of budget — undecided.
    ImplicationUnknown,
    /// FR007: a statically live rule never fired on the profiled run —
    /// possible rule-set drift from the data.
    UnfiredRule,
    /// FR008: a rule flagged statically dead (FR002) *did* fire at
    /// runtime — the shadowing analysis and the data disagree.
    DeadRuleFired,
    /// FR009: two rule orders drive a synthesized witness tuple to
    /// different end states — the chase is not confluent.
    ConfluenceViolation,
    /// FR010: the rule interaction graph has a fix→evidence cycle, so no
    /// well-founded round bound certifies termination order-independently.
    UncertifiedTermination,
    /// FR011: a rule-set delta (added/removed rule) can invalidate one or
    /// more previously certified properties — re-certification needed.
    CertInvalidatedByDiff,
}

impl Code {
    /// Every code, in numeric order (the order of the DESIGN.md table).
    pub const ALL: &'static [Code] = &[
        Code::ParseError,
        Code::ConflictingRules,
        Code::DeadRule,
        Code::RedundantRule,
        Code::UnreachableNegative,
        Code::RuleCycle,
        Code::ImplicationUnknown,
        Code::UnfiredRule,
        Code::DeadRuleFired,
        Code::ConfluenceViolation,
        Code::UncertifiedTermination,
        Code::CertInvalidatedByDiff,
    ];

    /// The stable code string (`FR000`...).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::ParseError => "FR000",
            Code::ConflictingRules => "FR001",
            Code::DeadRule => "FR002",
            Code::RedundantRule => "FR003",
            Code::UnreachableNegative => "FR004",
            Code::RuleCycle => "FR005",
            Code::ImplicationUnknown => "FR006",
            Code::UnfiredRule => "FR007",
            Code::DeadRuleFired => "FR008",
            Code::ConfluenceViolation => "FR009",
            Code::UncertifiedTermination => "FR010",
            Code::CertInvalidatedByDiff => "FR011",
        }
    }

    /// Parse a code string (`"FR001"`).
    pub fn parse(text: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.as_str() == text)
    }

    /// The severity this code is reported at.
    pub fn severity(self) -> Severity {
        match self {
            Code::ParseError | Code::ConflictingRules => Severity::Error,
            Code::DeadRule | Code::RedundantRule | Code::UnreachableNegative | Code::RuleCycle => {
                Severity::Warning
            }
            Code::ImplicationUnknown | Code::UnfiredRule => Severity::Note,
            Code::DeadRuleFired => Severity::Warning,
            Code::ConfluenceViolation | Code::UncertifiedTermination => Severity::Error,
            Code::CertInvalidatedByDiff => Severity::Note,
        }
    }

    /// One-line description for documentation and `--explain`-style output.
    pub fn summary(self) -> &'static str {
        match self {
            Code::ParseError => "the rule file does not parse",
            Code::ConflictingRules => "two rules can repair the same tuple differently",
            Code::DeadRule => "rule is shadowed by an earlier rule and can never contribute",
            Code::RedundantRule => "rule is implied by the rest of the set",
            Code::UnreachableNegative => {
                "negative patterns duplicate another rule with the same evidence and fact"
            }
            Code::RuleCycle => "rules form a fact-to-evidence dependency cycle",
            Code::ImplicationUnknown => "redundancy check exhausted its budget (undecided)",
            Code::UnfiredRule => "statically live rule never fired on the profiled run",
            Code::DeadRuleFired => "rule flagged dead by the shadowing analysis fired at runtime",
            Code::ConfluenceViolation => {
                "two rule orders repair a synthesized witness tuple differently"
            }
            Code::UncertifiedTermination => {
                "rule interaction cycle defeats the well-founded termination ordering"
            }
            Code::CertInvalidatedByDiff => {
                "rule-set delta can invalidate previously certified properties"
            }
        }
    }
}

/// A secondary source location attached to a finding (e.g. "the other rule
/// of the conflicting pair").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Related {
    /// Where the related rule lives.
    pub span: Span,
    /// What the related location is.
    pub message: String,
}

/// One finding: a coded, located, explained defect in a rule set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (defaults to [`Code::severity`]).
    pub severity: Severity,
    /// Primary source location.
    pub span: Span,
    /// The main message.
    pub message: String,
    /// Secondary locations.
    pub related: Vec<Related>,
    /// Free-form notes (witness valuations, budgets, ...).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A finding at `span` with the code's default severity.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            related: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Attach a secondary location.
    pub fn with_related(mut self, span: Span, message: impl Into<String>) -> Diagnostic {
        self.related.push(Related {
            span,
            message: message.into(),
        });
        self
    }

    /// Attach a note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Total order used for report output: source position first, then
    /// code, then message — fully deterministic for byte-stable JSON.
    pub fn sort_key(&self) -> (Span, &'static str, &str) {
        (self.span, self.code.as_str(), &self.message)
    }

    /// The finding as a JSON object (sorted members via [`Json::Obj`]).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::Null;
        obj.set("code", self.code.as_str());
        obj.set("severity", self.severity.as_str());
        obj.set("span", span_json(self.span));
        obj.set("message", self.message.as_str());
        obj.set(
            "related",
            Json::Arr(
                self.related
                    .iter()
                    .map(|r| {
                        let mut rel = Json::Null;
                        rel.set("span", span_json(r.span));
                        rel.set("message", r.message.as_str());
                        rel
                    })
                    .collect(),
            ),
        );
        obj.set("notes", self.notes.clone());
        obj
    }
}

fn span_json(span: Span) -> Json {
    let mut obj = Json::Null;
    obj.set("line", span.line);
    obj.set("col", span.col);
    obj.set("len", span.len);
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_parse_back() {
        for &code in Code::ALL {
            assert_eq!(Code::parse(code.as_str()), Some(code));
            assert!(!code.summary().is_empty());
        }
        assert_eq!(Code::parse("FR999"), None);
    }

    #[test]
    fn diagnostics_sort_by_position_then_code() {
        let a = Diagnostic::new(Code::DeadRule, Span::point(4, 1), "x");
        let b = Diagnostic::new(Code::RedundantRule, Span::point(4, 1), "x");
        let c = Diagnostic::new(Code::ConflictingRules, Span::point(2, 1), "x");
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort_by(|x, y| x.sort_key().cmp(&y.sort_key()));
        assert_eq!(v[0].code, Code::ConflictingRules);
        assert_eq!(v[1].code, Code::DeadRule);
        assert_eq!(v[2].code, Code::RedundantRule);
    }

    #[test]
    fn json_shape_is_complete() {
        let d = Diagnostic::new(Code::ConflictingRules, Span::new(3, 1, 70), "conflict")
            .with_related(Span::new(2, 1, 80), "the other rule")
            .with_note("witness: ...");
        let json = d.to_json();
        assert_eq!(json.get("code").and_then(Json::as_str), Some("FR001"));
        assert_eq!(json.get("severity").and_then(Json::as_str), Some("error"));
        let span = json.get("span").unwrap();
        assert_eq!(span.get("line").and_then(Json::as_i64), Some(3));
        assert_eq!(json.get("related").and_then(Json::as_arr).unwrap().len(), 1);
        assert_eq!(json.get("notes").and_then(Json::as_arr).unwrap().len(), 1);
    }
}
