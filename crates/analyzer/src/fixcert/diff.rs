//! Semantic rule-set diff (FR011).
//!
//! Given an old (certified) set and a new candidate set, classify every
//! rule as syntactically unchanged, semantically equivalent (implied by
//! the other side, via the §4.3 small-model implication check), added, or
//! removed — and report exactly which certified properties each
//! non-equivalent delta can invalidate, so re-certification effort is
//! proportional to the change:
//!
//! * an **added** rule introduces new pairs (consistency), new enabling
//!   edges (termination), and new critical pairs (confluence) — all three
//!   properties must be re-established;
//! * a **removed** rule cannot create a pair or an edge, so consistency
//!   and termination survive the delta; confluence can still break,
//!   because the removed rule may have been the one that pre-empted a
//!   diverging pair by assuring the contested cell first.
//!
//! Implication is only decidable against a *consistent* premise set, so a
//! side that fails the Fig 4 check downgrades its classifications to
//! plain added/removed (noted on the entry).

use fixrules::consistency::is_consistent_characterize;
use fixrules::implication::{implies, model_size, ImplicationOutcome};
use fixrules::{FixingRule, RuleSet};
use obs::Json;
use relation::{Schema, SymbolTable};

use crate::diagnostic::{Code, Diagnostic};
use crate::fixcert::CertOptions;
use crate::Span;

/// How one rule moved between the two sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleDelta {
    /// Present in both sets, byte-for-byte.
    Unchanged,
    /// Textually new but implied by the old set — repairs nothing the old
    /// set didn't already repair.
    EquivalentAdded,
    /// Textually gone but implied by the new set — no repair is lost.
    EquivalentRemoved,
    /// Genuinely new semantics.
    Added,
    /// Genuinely removed semantics.
    Removed,
}

impl RuleDelta {
    /// Lowercase display name.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleDelta::Unchanged => "unchanged",
            RuleDelta::EquivalentAdded => "equivalent-added",
            RuleDelta::EquivalentRemoved => "equivalent-removed",
            RuleDelta::Added => "added",
            RuleDelta::Removed => "removed",
        }
    }

    /// The certified properties this delta can invalidate.
    pub fn invalidates(self) -> &'static [&'static str] {
        match self {
            RuleDelta::Unchanged | RuleDelta::EquivalentAdded | RuleDelta::EquivalentRemoved => &[],
            RuleDelta::Added => &["consistency", "termination", "confluence"],
            RuleDelta::Removed => &["confluence"],
        }
    }
}

/// One classified rule.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// The rule, rendered in the `.frl` line format.
    pub rule: String,
    /// Index in the set it came from (new set for added/unchanged, old
    /// set for removed).
    pub index: usize,
    /// The classification.
    pub delta: RuleDelta,
    /// Why an implication check could not run or decide, when it
    /// couldn't (`None` when the classification is definitive).
    pub caveat: Option<String>,
}

/// The full semantic diff.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// One entry per rule of either set (unchanged rules appear once).
    pub entries: Vec<DiffEntry>,
    /// FR011 notes for the non-equivalent deltas, in report order.
    pub diagnostics: Vec<Diagnostic>,
}

impl DiffReport {
    /// True when the delta invalidates nothing — every rule is unchanged
    /// or semantically equivalent.
    pub fn preserves_certificate(&self) -> bool {
        self.entries
            .iter()
            .all(|e| e.delta.invalidates().is_empty())
    }

    /// Deduplicated union of the certified properties the delta can
    /// invalidate, in a fixed order.
    pub fn invalidated_properties(&self) -> Vec<&'static str> {
        ["consistency", "termination", "confluence"]
            .into_iter()
            .filter(|p| {
                self.entries
                    .iter()
                    .any(|e| e.delta.invalidates().contains(p))
            })
            .collect()
    }

    /// The diff as a JSON object (deterministic member and entry order).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::Null;
        obj.set(
            "entries",
            Json::Arr(
                self.entries
                    .iter()
                    .map(|e| {
                        let mut entry = Json::Null;
                        entry.set("rule", e.rule.as_str());
                        entry.set("index", e.index);
                        entry.set("delta", e.delta.as_str());
                        entry.set(
                            "invalidates",
                            e.delta
                                .invalidates()
                                .iter()
                                .map(|s| s.to_string())
                                .collect::<Vec<_>>(),
                        );
                        if let Some(caveat) = &e.caveat {
                            entry.set("caveat", caveat.as_str());
                        }
                        entry
                    })
                    .collect(),
            ),
        );
        obj.set("preserves_certificate", self.preserves_certificate());
        obj.set(
            "invalidates",
            self.invalidated_properties()
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        );
        obj
    }
}

/// Diff `new` against `old`. `new_spans` aligns with `new`'s rule ids and
/// anchors the FR011 notes (removed rules have no location in the new
/// file and anchor at the file head).
pub fn diff(
    old: &RuleSet,
    new: &RuleSet,
    new_spans: &[Span],
    symbols: &SymbolTable,
    opts: &CertOptions,
) -> DiffReport {
    let schema = new.schema();
    let old_consistent = is_consistent_characterize(old, 1).is_consistent();
    let new_consistent = is_consistent_characterize(new, 1).is_consistent();

    let mut entries = Vec::new();
    let mut diagnostics = Vec::new();

    for (idx, rule) in new.rules().iter().enumerate() {
        if old.rules().contains(rule) {
            entries.push(entry(
                schema,
                symbols,
                rule,
                idx,
                RuleDelta::Unchanged,
                None,
            ));
            continue;
        }
        let (delta, caveat) = classify(
            old,
            rule,
            old_consistent,
            opts,
            RuleDelta::EquivalentAdded,
            RuleDelta::Added,
        );
        if delta == RuleDelta::Added {
            let span = new_spans.get(idx).copied().unwrap_or_default();
            diagnostics.push(delta_diag(schema, symbols, rule, span, delta));
        }
        entries.push(entry(schema, symbols, rule, idx, delta, caveat));
    }

    for (idx, rule) in old.rules().iter().enumerate() {
        if new.rules().contains(rule) {
            continue;
        }
        let (delta, caveat) = classify(
            new,
            rule,
            new_consistent,
            opts,
            RuleDelta::EquivalentRemoved,
            RuleDelta::Removed,
        );
        if delta == RuleDelta::Removed {
            diagnostics.push(delta_diag(schema, symbols, rule, Span::default(), delta));
        }
        entries.push(entry(schema, symbols, rule, idx, delta, caveat));
    }

    DiffReport {
        entries,
        diagnostics,
    }
}

/// Does `premise` imply `rule`? Falls back to the non-equivalent
/// classification (with a caveat) when the premise is inconsistent or the
/// model exceeds the budget.
fn classify(
    premise: &RuleSet,
    rule: &FixingRule,
    premise_consistent: bool,
    opts: &CertOptions,
    equivalent: RuleDelta,
    changed: RuleDelta,
) -> (RuleDelta, Option<String>) {
    if !premise_consistent {
        return (
            changed,
            Some("implication undecidable against an inconsistent premise set".to_string()),
        );
    }
    if model_size(premise, rule) > opts.implication_budget {
        return (
            changed,
            Some(format!(
                "small-model space exceeds the implication budget ({})",
                opts.implication_budget
            )),
        );
    }
    match implies(premise, rule, opts.implication_budget) {
        ImplicationOutcome::Implied => (equivalent, None),
        ImplicationOutcome::Unknown { .. } => (
            changed,
            Some("implication check exhausted its budget".to_string()),
        ),
        ImplicationOutcome::ExtensionInconsistent | ImplicationOutcome::NotImplied { .. } => {
            (changed, None)
        }
    }
}

fn entry(
    schema: &Schema,
    symbols: &SymbolTable,
    rule: &FixingRule,
    index: usize,
    delta: RuleDelta,
    caveat: Option<String>,
) -> DiffEntry {
    DiffEntry {
        rule: rule.display(schema, symbols),
        index,
        delta,
        caveat,
    }
}

fn delta_diag(
    schema: &Schema,
    symbols: &SymbolTable,
    rule: &FixingRule,
    span: Span,
    delta: RuleDelta,
) -> Diagnostic {
    Diagnostic::new(
        Code::CertInvalidatedByDiff,
        span,
        format!(
            "{} rule changes the set's semantics: re-certify {}",
            delta.as_str(),
            delta.invalidates().join(", ")
        ),
    )
    .with_note(format!("rule: {}", rule.display(schema, symbols)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixrules::io::parse_rules_spanned;

    fn parse(text: &str, symbols: &mut SymbolTable) -> (RuleSet, Vec<Span>) {
        let schema = Schema::new("Travel", ["country", "capital", "city", "conf"]).unwrap();
        let parsed = parse_rules_spanned(text, &schema, symbols).unwrap();
        (parsed.rules, parsed.spans)
    }

    #[test]
    fn unchanged_sets_preserve_the_certificate() {
        let mut sy = SymbolTable::new();
        let text = r#"
IF country = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing"
"#;
        let (old, _) = parse(text, &mut sy);
        let (new, spans) = parse(text, &mut sy);
        let report = diff(&old, &new, &spans, &sy, &CertOptions::default());
        assert!(report.preserves_certificate());
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.entries[0].delta, RuleDelta::Unchanged);
    }

    #[test]
    fn implied_rule_is_equivalent_not_added() {
        let mut sy = SymbolTable::new();
        let (old, _) = parse(
            r#"
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
"#,
            &mut sy,
        );
        // The narrower rule is implied by the broader old one.
        let (new, spans) = parse(
            r#"
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
IF country = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing"
"#,
            &mut sy,
        );
        let report = diff(&old, &new, &spans, &sy, &CertOptions::default());
        assert!(report.preserves_certificate(), "{:?}", report.entries);
        let deltas: Vec<_> = report.entries.iter().map(|e| e.delta).collect();
        assert_eq!(
            deltas,
            vec![RuleDelta::Unchanged, RuleDelta::EquivalentAdded]
        );
    }

    #[test]
    fn genuine_add_and_remove_invalidate_properties() {
        let mut sy = SymbolTable::new();
        let (old, _) = parse(
            r#"
IF country = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing"
IF country = "Canada" AND capital IN {"Toronto"} THEN capital := "Ottawa"
"#,
            &mut sy,
        );
        let (new, spans) = parse(
            r#"
IF country = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing"
IF conf = "ICDE" AND city IN {"Tokio"} THEN city := "Tokyo"
"#,
            &mut sy,
        );
        let report = diff(&old, &new, &spans, &sy, &CertOptions::default());
        assert!(!report.preserves_certificate());
        assert_eq!(
            report.invalidated_properties(),
            vec!["consistency", "termination", "confluence"]
        );
        // One FR011 per non-equivalent delta: the add and the remove.
        assert_eq!(report.diagnostics.len(), 2);
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code == Code::CertInvalidatedByDiff));
        let json = report.to_json().to_string_pretty();
        assert!(json.contains("\"delta\": \"added\""), "{json}");
        assert!(json.contains("\"delta\": \"removed\""), "{json}");
    }
}
