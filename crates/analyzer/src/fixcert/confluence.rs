//! Critical-pair confluence analysis (FR009).
//!
//! For every rule pair that can interact — directly conflicting under the
//! Fig 4 characterization, or connected through the interaction graph's
//! enabling edges — synthesize a bounded set of witness tuples from the
//! pair's constant pools and run each through the **actual compiled chase
//! engine** ([`fixrules::repair::crepair_compiled_tuple`]) under the two
//! pair orders `(φᵢ, φⱼ, rest…)` and `(φⱼ, φᵢ, rest…)`. Divergent end
//! states are confluence violations: the diagnostic carries the concrete
//! tuple, both end states, and the two causal chains (which rule wrote
//! which cell, in which round), rendered rustc-style.
//!
//! # Incompleteness caveat
//!
//! This is a *critical-pair* analysis: only pairs seed witness synthesis,
//! and tuples are drawn from the pair's own constants (plus one wildcard
//! per free attribute). Divergence that needs three rules' constants on
//! one tuple, or a pair whose candidate space exceeds the witness budget
//! (counted in [`ConfluenceSummary::pairs_skipped`]), can escape. The
//! certificate is therefore sound in what it *rejects* (every FR009 ships
//! a replayable counterexample) and bounded-complete in what it accepts —
//! see DESIGN.md §15.

use std::collections::BTreeSet;

use fixrules::consistency::enumerate::{candidate_values, enumeration_size, WILDCARD};
use fixrules::consistency::{conflict_witness, is_consistent_characterize};
use fixrules::repair::{crepair_compiled_tuple, CellUpdate, CompiledScratch, RuleProgram};
use fixrules::RuleSet;
use obs::RepairObserver;
use relation::{Symbol, SymbolTable};

use crate::diagnostic::{Code, Diagnostic};
use crate::fixcert::graph::InteractionGraph;
use crate::fixcert::CertOptions;
use crate::Span;

/// What the confluence pass measured, for the certificate summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConfluenceSummary {
    /// Interacting pairs examined.
    pub pairs_checked: usize,
    /// Pairs whose candidate-tuple space exceeded the witness budget —
    /// the certificate's incompleteness surface.
    pub pairs_skipped: usize,
    /// Witness tuples executed through the compiled engine (both orders
    /// count as one run).
    pub witness_runs: usize,
    /// Pairs with a proven divergence (one FR009 each).
    pub violations: usize,
}

/// One rule order's chase of a witness tuple.
struct OrderRun {
    end: Vec<Symbol>,
    chain: Vec<CellUpdate>,
    /// Maps the permuted rule ids in `chain` back to original ids.
    perm: Vec<usize>,
}

/// Run the pass over every interacting pair.
pub(crate) fn run<O: RepairObserver>(
    rules: &RuleSet,
    spans: &[Span],
    symbols: &SymbolTable,
    graph: &InteractionGraph,
    opts: &CertOptions,
    observer: &O,
) -> (ConfluenceSummary, Vec<Diagnostic>) {
    let mut summary = ConfluenceSummary::default();
    let mut diags = Vec::new();
    let n = rules.len();

    // Directly conflicting pairs, with the characterization's case. These
    // are confluence violations by definition; `conflict_witness` finds
    // the tuple two distinct fixpoints are reachable from.
    let consistency = is_consistent_characterize(rules, usize::MAX);
    let mut conflicting: BTreeSet<(usize, usize)> = BTreeSet::new();
    for conflict in &consistency.conflicts {
        let (i, j) = (conflict.first.index(), conflict.second.index());
        if !conflicting.insert((i.min(j), i.max(j))) {
            continue;
        }
        summary.pairs_checked += 1;
        let Some(witness) = conflict_witness(rules, conflict, opts.witness_budget) else {
            summary.pairs_skipped += 1;
            diags.push(pair_diag(spans, i, j).with_note(format!(
                "candidate space exceeds the witness budget ({}); divergence proven \
                 by the Fig 4 characterization but no tuple was synthesized",
                opts.witness_budget
            )));
            summary.violations += 1;
            continue;
        };
        summary.witness_runs += 1;
        observer.cert_witness_run();
        let (run_a, run_b) = chase_both_orders(rules, i, j, &witness.tuple);
        // The pair conflicts, but the surrounding rules can mask the
        // divergence under these two particular orders; fall back to the
        // pair-local fixpoints from the witness machinery.
        let (end_a, end_b) = if run_a.end != run_b.end {
            (run_a.end.clone(), run_b.end.clone())
        } else {
            (witness.fixes[0].clone(), witness.fixes[1].clone())
        };
        diags.push(divergence_diag(
            rules,
            spans,
            symbols,
            i,
            j,
            &witness.tuple,
            &end_a,
            &end_b,
            &run_a,
            &run_b,
        ));
        summary.violations += 1;
    }

    // Pairs connected through the interaction graph: one rule's firing
    // can influence the other's applicability, so commute them explicitly.
    for i in 0..n {
        for j in (i + 1)..n {
            if conflicting.contains(&(i, j)) || !graph.connected(i, j) {
                continue;
            }
            summary.pairs_checked += 1;
            let a = &rules.rules()[i];
            let b = &rules.rules()[j];
            if enumeration_size(a, b) > opts.witness_budget {
                summary.pairs_skipped += 1;
                continue;
            }
            let mut violation = None;
            for tuple in candidate_tuples(rules, i, j) {
                summary.witness_runs += 1;
                observer.cert_witness_run();
                let (run_a, run_b) = chase_both_orders(rules, i, j, &tuple);
                if run_a.end != run_b.end {
                    violation = Some((tuple, run_a, run_b));
                    break;
                }
            }
            if let Some((tuple, run_a, run_b)) = violation {
                let (end_a, end_b) = (run_a.end.clone(), run_b.end.clone());
                diags.push(divergence_diag(
                    rules, spans, symbols, i, j, &tuple, &end_a, &end_b, &run_a, &run_b,
                ));
                summary.violations += 1;
            }
        }
    }

    observer.cert_pair_checked(summary.pairs_checked);
    (summary, diags)
}

/// Cross product of the pair's per-attribute candidate pools (evidence
/// constants, negative patterns, facts, plus one wildcard), in the same
/// deterministic order the enumeration checker uses.
fn candidate_tuples(rules: &RuleSet, i: usize, j: usize) -> Vec<Vec<Symbol>> {
    let a = &rules.rules()[i];
    let b = &rules.rules()[j];
    let pools = candidate_values(a, b);
    let arity = rules.schema().arity();
    let mut tuples = vec![vec![WILDCARD; arity]];
    for (attr, values) in &pools {
        let mut next = Vec::with_capacity(tuples.len() * values.len());
        for tuple in &tuples {
            for &v in values {
                let mut t = tuple.clone();
                t[attr.index()] = v;
                next.push(t);
            }
        }
        tuples = next;
    }
    tuples
}

/// Chase `tuple` under orders `(i, j, rest…)` and `(j, i, rest…)` with the
/// compiled engine, compiling each permuted set on the fly.
fn chase_both_orders(
    rules: &RuleSet,
    i: usize,
    j: usize,
    tuple: &[Symbol],
) -> (OrderRun, OrderRun) {
    (
        chase_order(rules, &pair_first_perm(rules.len(), i, j), tuple),
        chase_order(rules, &pair_first_perm(rules.len(), j, i), tuple),
    )
}

/// `[first, second, everything else in id order]`.
fn pair_first_perm(n: usize, first: usize, second: usize) -> Vec<usize> {
    let mut perm = Vec::with_capacity(n);
    perm.push(first);
    perm.push(second);
    perm.extend((0..n).filter(|&k| k != first && k != second));
    perm
}

fn chase_order(rules: &RuleSet, perm: &[usize], tuple: &[Symbol]) -> OrderRun {
    let mut permuted = RuleSet::new(rules.schema().clone());
    for &k in perm {
        permuted.push(rules.rules()[k].clone());
    }
    let program = RuleProgram::compile(&permuted);
    let mut scratch = CompiledScratch::new(permuted.len());
    let mut row = tuple.to_vec();
    let chain = crepair_compiled_tuple(&permuted, &program, &mut scratch, &mut row);
    OrderRun {
        end: row,
        chain,
        perm: perm.to_vec(),
    }
}

/// The FR009 skeleton: anchored at the later rule, pointing at the other.
fn pair_diag(spans: &[Span], i: usize, j: usize) -> Diagnostic {
    let span_of = |k: usize| spans.get(k).copied().unwrap_or_default();
    // Anchor at the rule written later, like FR001.
    let (anchor, other) = if span_of(j) >= span_of(i) {
        (j, i)
    } else {
        (i, j)
    };
    Diagnostic::new(
        Code::ConfluenceViolation,
        span_of(anchor),
        format!(
            "rules are not confluent: applying this rule before or after the rule \
             at line {} repairs a witness tuple differently",
            span_of(other).line
        ),
    )
    .with_related(span_of(other), "the other rule of the diverging pair")
}

/// The full FR009: tuple, both end states, both causal chains.
#[allow(clippy::too_many_arguments)]
fn divergence_diag(
    rules: &RuleSet,
    spans: &[Span],
    symbols: &SymbolTable,
    i: usize,
    j: usize,
    tuple: &[Symbol],
    end_a: &[Symbol],
    end_b: &[Symbol],
    run_a: &OrderRun,
    run_b: &OrderRun,
) -> Diagnostic {
    let mut diag = pair_diag(spans, i, j)
        .with_note(format!(
            "witness tuple: {}",
            valuation(rules, symbols, tuple)
        ))
        .with_note(format!(
            "end state under order (φ{i}, φ{j}): {}",
            valuation(rules, symbols, end_a)
        ))
        .with_note(format!(
            "end state under order (φ{j}, φ{i}): {}",
            valuation(rules, symbols, end_b)
        ));
    for (label_first, label_second, run) in [(i, j, run_a), (j, i, run_b)] {
        diag = diag.with_note(format!(
            "chase under (φ{label_first}, φ{label_second}): {}",
            render_chain(rules, symbols, run)
        ));
    }
    diag
}

/// `country = "China", capital = "Shanghai"` — wildcard cells omitted.
fn valuation(rules: &RuleSet, symbols: &SymbolTable, tuple: &[Symbol]) -> String {
    let schema = rules.schema();
    let parts: Vec<String> = schema
        .attr_ids()
        .filter(|a| tuple[a.index()] != WILDCARD)
        .map(|a| {
            format!(
                "{} = \"{}\"",
                schema.attr_name(a),
                symbols.resolve(tuple[a.index()])
            )
        })
        .collect();
    if parts.is_empty() {
        "(all wildcards)".to_string()
    } else {
        parts.join(", ")
    }
}

/// `φ0 set capital := "Beijing" [round 1]; φ2 set city := …` with rule
/// ids mapped back to the original (file) order.
fn render_chain(rules: &RuleSet, symbols: &SymbolTable, run: &OrderRun) -> String {
    if run.chain.is_empty() {
        return "no rule fired".to_string();
    }
    let schema = rules.schema();
    let steps: Vec<String> = run
        .chain
        .iter()
        .map(|u| {
            format!(
                "φ{} set {} := \"{}\" (was \"{}\") [round {}]",
                run.perm[u.rule.index()],
                schema.attr_name(u.attr),
                symbols.resolve(u.new),
                symbols.resolve(u.old),
                u.round
            )
        })
        .collect();
    steps.join("; ")
}
