//! # fixcert — whole-rule-set chase certification
//!
//! `fixlint`'s passes judge rules pairwise and in isolation; this module
//! certifies the **whole set** as a rewrite system:
//!
//! 1. **Termination** ([`graph`]): the fix→evidence interaction graph with
//!    a fixpoint rank pass. Acyclic ⇒ a well-founded ordering on
//!    assured-attribute sets bounds every firing sequence by an
//!    order-independent round count; a cycle ⇒ FR010 naming the members.
//! 2. **Confluence** ([`confluence`]): critical-pair analysis. Every
//!    interacting pair gets bounded witness tuples synthesized from its
//!    constant pools and chased through the *actual compiled engine* under
//!    both pair orders; divergent end states ⇒ FR009 with the tuple, both
//!    end states, and the causal chains.
//! 3. **Semantic diff** ([`diff()`]): classify a candidate set against a
//!    certified one (added/removed/semantically-equivalent via the §4.3
//!    implication check) and name the certified properties the delta can
//!    invalidate (FR011), so re-certification is proportional to change.
//!
//! A green [`Certificate`] is the promotion gate for `fixd`'s `POST
//! /rules` hot-swap and the substance behind `fixctl certify`.

pub mod confluence;
pub mod diff;
pub mod graph;

pub use confluence::ConfluenceSummary;
pub use diff::{diff, DiffEntry, DiffReport, RuleDelta};
pub use graph::InteractionGraph;

use fixrules::consistency::is_consistent_characterize;
use fixrules::RuleSet;
use obs::{Json, NoopObserver, RepairObserver};
use relation::SymbolTable;

use crate::diagnostic::{Code, Diagnostic};
use crate::{LintReport, Span};

/// Budgets for the certification passes.
#[derive(Debug, Clone)]
pub struct CertOptions {
    /// Max candidate tuples synthesized per interacting pair; larger
    /// pairs are skipped and counted in
    /// [`ConfluenceSummary::pairs_skipped`].
    pub witness_budget: usize,
    /// Max small-model size per implication check in [`diff()`].
    pub implication_budget: usize,
}

impl Default for CertOptions {
    fn default() -> Self {
        CertOptions {
            witness_budget: 1 << 16,
            implication_budget: 1 << 20,
        }
    }
}

/// What the termination pass certified.
#[derive(Debug, Clone, Default)]
pub struct TerminationSummary {
    /// True when the interaction graph is acyclic.
    pub certified: bool,
    /// The order-independent round bound (`max enabling chain + 1`);
    /// `None` when uncertified.
    pub round_bound: Option<usize>,
    /// Number of interaction cycles (FR010s reported).
    pub cycles: usize,
}

/// The certifier's verdict over one rule set: findings plus the measured
/// summaries of each certified property.
#[derive(Debug, Clone, Default)]
pub struct Certificate {
    /// FR009/FR010 findings, in canonical report order.
    pub report: LintReport,
    /// Rules examined.
    pub rules: usize,
    /// Pairwise consistency (Fig 4) — a prerequisite the confluence pass
    /// re-derives, surfaced here for the summary.
    pub consistent: bool,
    /// The termination certificate.
    pub termination: TerminationSummary,
    /// The confluence certificate.
    pub confluence: ConfluenceSummary,
}

impl Certificate {
    /// Green when no error-severity finding exists: the set is pairwise
    /// consistent, terminating with an order-independent bound, and no
    /// critical pair diverged within budget.
    pub fn is_certified(&self) -> bool {
        self.report.errors() == 0
    }

    /// Feed one `cert_finding` per diagnostic plus the final verdict into
    /// an observer (the CLI and `fixd` wire this to the `cert.*` metrics).
    pub fn observe<O: RepairObserver>(&self, observer: &O) {
        for diag in &self.report.diagnostics {
            observer.cert_finding(diag.code.as_str(), diag.severity.as_str());
        }
        observer.cert_completed(self.is_certified());
    }

    /// The certificate as a JSON document:
    /// `{file, certified, rules, consistent, termination, confluence,
    /// findings, summary}` with byte-deterministic serialization.
    pub fn to_json(&self, file: &str) -> Json {
        let mut termination = Json::Null;
        termination.set("certified", self.termination.certified);
        match self.termination.round_bound {
            Some(bound) => termination.set("round_bound", bound),
            None => termination.set("round_bound", Json::Null),
        }
        termination.set("cycles", self.termination.cycles);

        let mut confluence = Json::Null;
        confluence.set("pairs_checked", self.confluence.pairs_checked);
        confluence.set("pairs_skipped", self.confluence.pairs_skipped);
        confluence.set("witness_runs", self.confluence.witness_runs);
        confluence.set("violations", self.confluence.violations);

        let mut obj = self.report.to_json(file);
        obj.set("certified", self.is_certified());
        obj.set("rules", self.rules);
        obj.set("consistent", self.consistent);
        obj.set("termination", termination);
        obj.set("confluence", confluence);
        obj
    }
}

/// Certify a rule set. `spans` aligns with rule ids (pass an empty slice
/// when unknown and findings render without source locations).
pub fn certify(
    rules: &RuleSet,
    spans: &[Span],
    symbols: &SymbolTable,
    opts: &CertOptions,
) -> Certificate {
    certify_observed(rules, spans, symbols, opts, &NoopObserver)
}

/// [`certify`] with observer hooks (`cert_pair_checked`,
/// `cert_witness_run` — the per-finding and verdict hooks fire from
/// [`Certificate::observe`], which callers invoke once per report sink).
pub fn certify_observed<O: RepairObserver>(
    rules: &RuleSet,
    spans: &[Span],
    symbols: &SymbolTable,
    opts: &CertOptions,
    observer: &O,
) -> Certificate {
    let interaction = InteractionGraph::build(rules);
    let mut diags: Vec<Diagnostic> = Vec::new();

    let termination = TerminationSummary {
        certified: interaction.is_acyclic(),
        round_bound: interaction.round_bound(),
        cycles: interaction.cycles.len(),
    };
    for cycle in &interaction.cycles {
        diags.push(cycle_diag(spans, cycle));
    }

    let (confluence, mut confluence_diags) =
        confluence::run(rules, spans, symbols, &interaction, opts, observer);
    diags.append(&mut confluence_diags);

    Certificate {
        report: LintReport::new(diags),
        rules: rules.len(),
        consistent: is_consistent_characterize(rules, 1).is_consistent(),
        termination,
        confluence,
    }
}

/// FR010: anchored at the cycle member written first, like FR005 — but an
/// error, because the certificate cannot bound the chase order-independently.
fn cycle_diag(spans: &[Span], cycle: &[usize]) -> Diagnostic {
    let span_of = |k: usize| spans.get(k).copied().unwrap_or_default();
    let mut members: Vec<usize> = cycle.to_vec();
    members.sort_by_key(|&k| span_of(k));
    let lines: Vec<String> = members
        .iter()
        .map(|&k| span_of(k).line.to_string())
        .collect();
    let mut diag = Diagnostic::new(
        Code::UncertifiedTermination,
        span_of(members[0]),
        format!(
            "termination cannot be certified: {} rules form a fix-to-evidence \
             interaction cycle (lines {}), so no well-founded ordering bounds \
             the chase independently of firing order",
            members.len(),
            lines.join(", ")
        ),
    )
    .with_note(
        "every chase still halts within one application per rule (assured cells \
         are never rewritten), but the round bound depends on firing order"
            .to_string(),
    );
    for &k in &members[1..] {
        diag = diag.with_related(span_of(k), "cycle member");
    }
    diag
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::Schema;

    fn travel_schema() -> Schema {
        Schema::new("Travel", ["country", "capital", "city", "conf"]).unwrap()
    }

    fn certify_text(text: &str) -> (Certificate, SymbolTable) {
        let mut symbols = SymbolTable::new();
        let parsed =
            fixrules::io::parse_rules_spanned(text, &travel_schema(), &mut symbols).unwrap();
        let cert = certify(
            &parsed.rules,
            &parsed.spans,
            &symbols,
            &CertOptions::default(),
        );
        (cert, symbols)
    }

    fn codes(cert: &Certificate) -> Vec<&'static str> {
        cert.report
            .diagnostics
            .iter()
            .map(|d| d.code.as_str())
            .collect()
    }

    #[test]
    fn clean_set_certifies_green() {
        let (cert, _) = certify_text(
            r#"
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
IF country = "Canada" AND capital IN {"Toronto"} THEN capital := "Ottawa"
"#,
        );
        assert!(cert.is_certified(), "{:?}", codes(&cert));
        assert!(cert.consistent);
        assert!(cert.termination.certified);
        assert_eq!(cert.termination.round_bound, Some(1));
        assert_eq!(cert.confluence.violations, 0);
    }

    #[test]
    fn conflicting_pair_yields_fr009_with_witness_and_end_states() {
        let (cert, _) = certify_text(
            r#"
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
IF conf = "ICDE" AND capital IN {"Shanghai"} THEN capital := "Nanjing"
"#,
        );
        assert!(!cert.is_certified());
        assert_eq!(codes(&cert), vec!["FR009"]);
        assert!(!cert.consistent);
        assert_eq!(cert.confluence.violations, 1);
        let notes = cert.report.diagnostics[0].notes.join("\n");
        assert!(notes.contains("witness tuple"), "{notes}");
        assert!(
            notes.contains("\"Beijing\"") && notes.contains("\"Nanjing\""),
            "{notes}"
        );
        assert!(notes.contains("end state under order"), "{notes}");
        assert!(notes.contains("chase under"), "{notes}");
    }

    #[test]
    fn interaction_cycle_yields_fr010() {
        let (cert, _) = certify_text(
            r#"
IF city = "Pudong" AND capital IN {"Nanjing"} THEN capital := "Beijing"
IF capital = "Beijing" AND city IN {"Hangzhou"} THEN city := "Pudong"
"#,
        );
        assert!(!cert.is_certified());
        assert!(codes(&cert).contains(&"FR010"), "{:?}", codes(&cert));
        assert!(!cert.termination.certified);
        assert_eq!(cert.termination.round_bound, None);
        let fr010 = cert
            .report
            .diagnostics
            .iter()
            .find(|d| d.code == Code::UncertifiedTermination)
            .unwrap();
        assert_eq!(fr010.span.line, 2);
        assert_eq!(fr010.related.len(), 1);
    }

    #[test]
    fn enabling_chain_without_divergence_stays_green() {
        // r0 manufactures evidence for r1, but there is only one order in
        // which anything fires — end states agree.
        let (cert, _) = certify_text(
            r#"
IF country = "China" AND capital IN {"Nanjing"} THEN capital := "Beijing"
IF capital = "Beijing" AND city IN {"Hangzhou"} THEN city := "Pudong"
"#,
        );
        assert!(cert.is_certified(), "{:?}", codes(&cert));
        assert!(cert.termination.certified);
        assert_eq!(cert.termination.round_bound, Some(2));
        assert!(cert.confluence.pairs_checked >= 1);
        assert!(cert.confluence.witness_runs >= 1);
    }

    #[test]
    fn json_is_deterministic_and_carries_the_verdict() {
        let (cert, _) = certify_text(
            r#"
IF country = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing"
"#,
        );
        let a = cert.to_json("rules.frl").to_string_pretty();
        let b = cert.to_json("rules.frl").to_string_pretty();
        assert_eq!(a, b);
        let parsed = obs::json::parse(&a).unwrap();
        assert_eq!(parsed.get("certified").and_then(Json::as_bool), Some(true));
        assert!(parsed.get("termination").is_some());
        assert!(parsed.get("confluence").is_some());
    }

    #[test]
    fn observer_sees_findings_and_verdict() {
        let registry = obs::MetricsRegistry::new();
        let metrics = obs::MetricsObserver::new(&registry);
        let mut symbols = SymbolTable::new();
        let parsed = fixrules::io::parse_rules_spanned(
            r#"
IF country = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing"
IF conf = "ICDE" AND capital IN {"Shanghai"} THEN capital := "Nanjing"
"#,
            &travel_schema(),
            &mut symbols,
        )
        .unwrap();
        let cert = certify_observed(
            &parsed.rules,
            &parsed.spans,
            &symbols,
            &CertOptions::default(),
            &metrics,
        );
        cert.observe(&metrics);
        let snap = registry.snapshot();
        let counters = snap.get("counters").unwrap();
        let get = |name: &str| counters.get(name).and_then(Json::as_i64).unwrap_or(0);
        assert!(get("cert.pairs_checked") >= 1);
        assert!(get("cert.witness_runs") >= 1);
        assert_eq!(get("cert.findings.FR009"), 1);
        assert_eq!(get("cert.rejected"), 1);
    }
}
