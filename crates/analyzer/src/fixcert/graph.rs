//! The rule interaction graph and the termination certificate.
//!
//! Edge `i → j` when firing rule `i` can newly enable rule `j`: `i`'s fix
//! lands exactly on a cell `j` reads as evidence (`B_i ∈ X_j` and
//! `tp_j[B_i] = fact_i`) — the same edge the FR005 lint pass uses, but
//! here it feeds a *certificate* rather than a style warning.
//!
//! # The well-founded termination argument
//!
//! Per tuple, any chase terminates within `arity` applications regardless
//! of this graph: applying a rule assures `X ∪ {B}`
//! ([`fixrules::FixingRule::assured_delta`]), the assured set only grows,
//! and a rule whose `B` is assured is never properly applicable again. What
//! the certificate adds is a bound that is *independent of firing order*:
//! when the interaction graph is acyclic, ranking every rule by its longest
//! enabling chain gives a well-founded ordering — a rule of rank `r` can
//! only be enabled by strictly lower ranks, so every firing sequence
//! settles within `max_rank + 1` rounds and no rule's applicability can
//! oscillate with chase order. A strongly connected component of two or
//! more rules defeats that ordering (each member can re-enable the next),
//! so the set is reported FR010: it still terminates, but no
//! order-independent round bound can be certified.

use fixrules::RuleSet;

use crate::passes::cycles::tarjan_sccs;

/// The fix→evidence enabling graph over a rule set, with the derived
/// termination facts.
#[derive(Debug, Clone)]
pub struct InteractionGraph {
    /// Adjacency: `edges[i]` lists every `j` with an enabling edge
    /// `i → j`, in rule-id order.
    pub edges: Vec<Vec<usize>>,
    /// Strongly connected components of size ≥ 2, each sorted by rule id —
    /// the witnesses against a well-founded ordering.
    pub cycles: Vec<Vec<usize>>,
    /// Longest enabling chain ending at each rule (0 = no enabler).
    /// Only meaningful when [`InteractionGraph::is_acyclic`].
    pub rank: Vec<usize>,
    /// Reachability closure: `reach[i]` holds bit `j` when `j` is
    /// reachable from `i` through enabling edges (excluding `i` itself
    /// unless it sits on a cycle).
    reach: Vec<Vec<u64>>,
}

impl InteractionGraph {
    /// Build the graph and run the fixpoint rank pass.
    pub fn build(rules: &RuleSet) -> InteractionGraph {
        let all: Vec<_> = rules.rules().iter().collect();
        let n = all.len();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, from) in all.iter().enumerate() {
            for (j, to) in all.iter().enumerate() {
                if i != j && to.evidence_value(from.b()) == Some(from.fact()) {
                    edges[i].push(j);
                }
            }
        }

        let mut cycles: Vec<Vec<usize>> = tarjan_sccs(&edges)
            .into_iter()
            .filter(|c| c.len() >= 2)
            .map(|mut c| {
                c.sort_unstable();
                c
            })
            .collect();
        cycles.sort();

        // Fixpoint longest-path rank. On a cyclic graph the true longest
        // path is unbounded; capping the iteration count at n keeps the
        // pass total and the ranks are simply not used in that case.
        let mut rank = vec![0usize; n];
        for _ in 0..n {
            let mut changed = false;
            for i in 0..n {
                for &j in &edges[i] {
                    if rank[j] < rank[i] + 1 {
                        rank[j] = rank[i] + 1;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let words = n.div_ceil(64).max(1);
        let mut reach = vec![vec![0u64; words]; n];
        for i in 0..n {
            // Iterative DFS from i over the (small, deterministic) edges.
            let mut stack: Vec<usize> = edges[i].clone();
            while let Some(v) = stack.pop() {
                if reach[i][v / 64] & (1 << (v % 64)) != 0 {
                    continue;
                }
                reach[i][v / 64] |= 1 << (v % 64);
                stack.extend_from_slice(&edges[v]);
            }
        }

        InteractionGraph {
            edges,
            cycles,
            rank,
            reach,
        }
    }

    /// True when no component of size ≥ 2 exists (self-loops are
    /// impossible by rule construction: `B ∉ X`).
    pub fn is_acyclic(&self) -> bool {
        self.cycles.is_empty()
    }

    /// `j` reachable from `i` through enabling edges?
    pub fn reaches(&self, i: usize, j: usize) -> bool {
        self.reach[i][j / 64] & (1 << (j % 64)) != 0
    }

    /// Are `i` and `j` connected in either direction — i.e. can one rule's
    /// firing influence the other's applicability through a chain of
    /// enabling edges?
    pub fn connected(&self, i: usize, j: usize) -> bool {
        self.reaches(i, j) || self.reaches(j, i)
    }

    /// The certified order-independent round bound: `max_rank + 1` rounds
    /// settle every firing sequence. `None` when the graph is cyclic.
    pub fn round_bound(&self) -> Option<usize> {
        if self.is_acyclic() {
            Some(self.rank.iter().copied().max().unwrap_or(0) + 1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn schema() -> Schema {
        Schema::new("Travel", ["country", "capital", "city", "conf"]).unwrap()
    }

    #[test]
    fn chain_gets_ranked_and_bounded() {
        let mut sy = SymbolTable::new();
        let mut rules = RuleSet::new(schema());
        // r0 writes capital := Beijing; r1 reads capital = Beijing.
        rules
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Nanjing"],
                "Beijing",
            )
            .unwrap();
        rules
            .push_named(
                &mut sy,
                &[("capital", "Beijing")],
                "city",
                &["Hangzhou"],
                "Pudong",
            )
            .unwrap();
        let graph = InteractionGraph::build(&rules);
        assert_eq!(graph.edges[0], vec![1]);
        assert!(graph.is_acyclic());
        assert_eq!(graph.rank, vec![0, 1]);
        assert_eq!(graph.round_bound(), Some(2));
        assert!(graph.reaches(0, 1));
        assert!(!graph.reaches(1, 0));
        assert!(graph.connected(1, 0));
    }

    #[test]
    fn two_cycle_defeats_the_bound() {
        let mut sy = SymbolTable::new();
        let mut rules = RuleSet::new(schema());
        rules
            .push_named(
                &mut sy,
                &[("city", "Pudong")],
                "capital",
                &["Nanjing"],
                "Beijing",
            )
            .unwrap();
        rules
            .push_named(
                &mut sy,
                &[("capital", "Beijing")],
                "city",
                &["Hangzhou"],
                "Pudong",
            )
            .unwrap();
        let graph = InteractionGraph::build(&rules);
        assert_eq!(graph.cycles, vec![vec![0, 1]]);
        assert_eq!(graph.round_bound(), None);
        assert!(graph.reaches(0, 0), "cycle members reach themselves");
    }

    #[test]
    fn independent_rules_share_no_edges() {
        let mut sy = SymbolTable::new();
        let mut rules = RuleSet::new(schema());
        rules
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Nanjing"],
                "Beijing",
            )
            .unwrap();
        rules
            .push_named(
                &mut sy,
                &[("country", "Canada")],
                "capital",
                &["Toronto"],
                "Ottawa",
            )
            .unwrap();
        let graph = InteractionGraph::build(&rules);
        assert!(graph.edges.iter().all(Vec::is_empty));
        assert_eq!(graph.round_bound(), Some(1));
        assert!(!graph.connected(0, 1));
    }
}
