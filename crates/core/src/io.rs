//! Textual rule files.
//!
//! A line-oriented, human-editable serialization of fixing rules, so rule
//! sets can be authored in a file, versioned, and shared between the CLI
//! and the library:
//!
//! ```text
//! # φ1 of the paper
//! IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
//! ```
//!
//! Grammar (one rule per line, `#` comments, blank lines ignored):
//!
//! ```text
//! rule  := "IF" cond ("AND" cond)* "THEN" attr ":=" value
//! cond  := attr "=" value                       (evidence cell)
//!        | attr "IN" "{" value ("," value)* "}" (negative patterns of B)
//! value := '"' escaped-string '"'
//! ```
//!
//! Exactly one `IN` condition is required and its attribute must match the
//! `THEN` attribute. Values are double-quoted with `\"` and `\\` escapes,
//! so arbitrary cell content round-trips.

use std::fmt::Write as _;

use obs::Json;
use relation::{Schema, SymbolTable};

use crate::rule::FixingRule;
use crate::ruleset::RuleSet;

/// A source location inside a rule file: 1-based line and column plus the
/// length of the region, all measured in characters. Spans order by
/// position, so sorting diagnostics by span yields file order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in characters) of the first character.
    pub col: usize,
    /// Length of the region in characters (at least 1 for point spans).
    pub len: usize,
}

impl Span {
    /// A span covering `len` characters starting at `line:col`.
    pub fn new(line: usize, col: usize, len: usize) -> Span {
        Span { line, col, len }
    }

    /// A single-character span at `line:col`.
    pub fn point(line: usize, col: usize) -> Span {
        Span { line, col, len: 1 }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors raised while parsing a rule file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleParseError {
    /// Line did not match the grammar.
    Syntax {
        /// Where the parse failed.
        span: Span,
        /// What went wrong.
        message: String,
    },
    /// The parsed rule failed validation (e.g. fact among negatives).
    Invalid {
        /// The offending rule line.
        span: Span,
        /// The validation failure.
        source: crate::rule::FixRuleError,
    },
}

impl RuleParseError {
    /// Where the error occurred.
    pub fn span(&self) -> Span {
        match self {
            RuleParseError::Syntax { span, .. } | RuleParseError::Invalid { span, .. } => *span,
        }
    }

    /// 1-based line of the error.
    pub fn line(&self) -> usize {
        self.span().line
    }

    /// The error text without the location prefix.
    pub fn message(&self) -> String {
        match self {
            RuleParseError::Syntax { message, .. } => message.clone(),
            RuleParseError::Invalid { source, .. } => format!("invalid rule: {source}"),
        }
    }
}

impl std::fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let span = self.span();
        write!(f, "line {}:{}: {}", span.line, span.col, self.message())
    }
}

impl std::error::Error for RuleParseError {}

/// Serialize one rule as a rule-file line.
pub fn format_rule(rule: &FixingRule, schema: &Schema, symbols: &SymbolTable) -> String {
    let mut out = String::from("IF ");
    for (i, (&attr, &val)) in rule.x().iter().zip(rule.tp().iter()).enumerate() {
        if i > 0 {
            out.push_str(" AND ");
        }
        let _ = write!(
            out,
            "{} = {}",
            schema.attr_name(attr),
            quote(symbols.resolve(val))
        );
    }
    let _ = write!(out, " AND {} IN {{", schema.attr_name(rule.b()));
    for (i, &neg) in rule.neg().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&quote(symbols.resolve(neg)));
    }
    let _ = write!(
        out,
        "}} THEN {} := {}",
        schema.attr_name(rule.b()),
        quote(symbols.resolve(rule.fact()))
    );
    out
}

/// Serialize a whole rule set (with a header comment).
pub fn format_rules(rules: &RuleSet, symbols: &SymbolTable) -> String {
    let mut out = format!(
        "# {} fixing rules over schema {}\n",
        rules.len(),
        rules.schema()
    );
    for (_, rule) in rules.iter() {
        out.push_str(&format_rule(rule, rules.schema(), symbols));
        out.push('\n');
    }
    out
}

/// Parse a rule file into a [`RuleSet`] over `schema`, interning values
/// into `symbols`.
///
/// ```
/// use relation::{Schema, SymbolTable};
/// let schema = Schema::new("T", ["country", "capital"]).unwrap();
/// let mut sy = SymbolTable::new();
/// let rules = fixrules::io::parse_rules(
///     r#"IF country = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing""#,
///     &schema,
///     &mut sy,
/// ).unwrap();
/// assert_eq!(rules.len(), 1);
/// assert!(rules.check_consistency().is_consistent());
/// ```
pub fn parse_rules(
    text: &str,
    schema: &Schema,
    symbols: &mut SymbolTable,
) -> Result<RuleSet, RuleParseError> {
    parse_rules_spanned(text, schema, symbols).map(|spanned| spanned.rules)
}

/// A parsed rule set together with the source span of each rule, aligned
/// with [`crate::ruleset::RuleId`] order: `spans[id.index()]` is where the
/// rule with that id was written. Produced by [`parse_rules_spanned`] so
/// tooling (the `fixlint` analyzer, error reporters) can point back at the
/// offending line of the rule file.
#[derive(Debug, Clone)]
pub struct SpannedRuleSet {
    /// The parsed rules.
    pub rules: RuleSet,
    /// One span per rule, in rule-id order.
    pub spans: Vec<Span>,
}

/// [`parse_rules`], additionally reporting where in the file each rule was
/// written (the span covers the whole rule text on its line).
pub fn parse_rules_spanned(
    text: &str,
    schema: &Schema,
    symbols: &mut SymbolTable,
) -> Result<SpannedRuleSet, RuleParseError> {
    let mut rules = RuleSet::new(schema.clone());
    let mut spans = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        if is_skippable(raw) {
            continue;
        }
        let span = line_span(raw, line_no);
        let parsed = parse_raw(raw, line_no)?;
        rules.push(resolve_raw(&parsed, span, schema, symbols)?);
        spans.push(span);
    }
    Ok(SpannedRuleSet { rules, spans })
}

/// Infer a schema from the attribute names a rule file mentions, in order
/// of first appearance. This lets tools operate on a rule file alone (no
/// CSV header to borrow a schema from): the rules themselves name every
/// attribute they constrain, which is exactly the projection the rule
/// semantics can observe.
pub fn infer_schema(text: &str, relation: impl Into<String>) -> Result<Schema, RuleParseError> {
    let mut names: Vec<&str> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        if is_skippable(raw) {
            continue;
        }
        let parsed = parse_raw(raw, i + 1)?;
        let mentioned = parsed
            .evidence
            .iter()
            .map(|(attr, _)| attr.text)
            .chain([parsed.neg_attr.text, parsed.then_attr.text]);
        for name in mentioned {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    Schema::new(relation, names).map_err(|e| RuleParseError::Syntax {
        span: Span::point(1, 1),
        message: format!("cannot infer schema: {e}"),
    })
}

/// Parse a single rule line.
pub fn parse_rule_line(
    line: &str,
    line_no: usize,
    schema: &Schema,
    symbols: &mut SymbolTable,
) -> Result<FixingRule, RuleParseError> {
    let parsed = parse_raw(line, line_no)?;
    resolve_raw(&parsed, line_span(line, line_no), schema, symbols)
}

fn is_skippable(raw: &str) -> bool {
    let line = raw.trim();
    line.is_empty() || line.starts_with('#')
}

/// Span of the rule text on `raw` (leading/trailing whitespace excluded).
fn line_span(raw: &str, line_no: usize) -> Span {
    let leading = raw.len() - raw.trim_start().len();
    Span {
        line: line_no,
        col: raw[..leading].chars().count() + 1,
        len: raw.trim().chars().count().max(1),
    }
}

/// An attribute-name token with its source column.
struct RawToken<'a> {
    text: &'a str,
    col: usize,
}

impl RawToken<'_> {
    fn span(&self, line: usize) -> Span {
        Span::new(line, self.col, self.text.chars().count().max(1))
    }
}

/// One rule line in purely syntactic form: attribute *names* (with their
/// columns, for diagnostics) and unresolved string values. Produced by
/// [`parse_raw`], turned into a [`FixingRule`] by [`resolve_raw`] —
/// splitting the two lets [`infer_schema`] read attribute names before any
/// schema exists.
struct RawRule<'a> {
    line: usize,
    evidence: Vec<(RawToken<'a>, String)>,
    neg_attr: RawToken<'a>,
    negatives: Vec<String>,
    then_attr: RawToken<'a>,
    fact: String,
}

fn parse_raw(line: &str, line_no: usize) -> Result<RawRule<'_>, RuleParseError> {
    let syntax = |e: LexError| RuleParseError::Syntax {
        span: Span::point(line_no, e.col),
        message: e.message,
    };
    let at = |col: usize, message: String| RuleParseError::Syntax {
        span: Span::point(line_no, col),
        message,
    };
    let mut lex = Lexer::new(line);
    lex.expect_word("IF").map_err(syntax)?;

    let mut evidence: Vec<(RawToken<'_>, String)> = Vec::new();
    let mut neg_clause: Option<(RawToken<'_>, Vec<String>)> = None;
    loop {
        let attr = lex.ident().map_err(syntax)?;
        if lex.try_word("=") {
            let value = lex.quoted().map_err(syntax)?;
            evidence.push((attr, value));
        } else if lex.try_word("IN") {
            if neg_clause.is_some() {
                return Err(at(attr.col, "more than one IN clause".into()));
            }
            lex.expect_word("{").map_err(syntax)?;
            let mut values = Vec::new();
            loop {
                values.push(lex.quoted().map_err(syntax)?);
                if lex.try_word(",") {
                    continue;
                }
                lex.expect_word("}").map_err(syntax)?;
                break;
            }
            neg_clause = Some((attr, values));
        } else {
            let col = lex.next_col();
            return Err(at(
                col,
                format!("expected `=` or `IN` after `{}`", attr.text),
            ));
        }
        if lex.try_word("AND") {
            continue;
        }
        lex.expect_word("THEN").map_err(syntax)?;
        break;
    }
    let then_attr = lex.ident().map_err(syntax)?;
    lex.expect_word(":=").map_err(syntax)?;
    let fact = lex.quoted().map_err(syntax)?;
    lex.expect_end().map_err(syntax)?;

    let Some((neg_attr, negatives)) = neg_clause else {
        let span = line_span(line, line_no);
        return Err(at(span.col, "missing IN clause (negative patterns)".into()));
    };
    if neg_attr.text != then_attr.text {
        return Err(at(
            then_attr.col,
            format!(
                "IN attribute `{}` does not match THEN attribute `{}`",
                neg_attr.text, then_attr.text
            ),
        ));
    }
    Ok(RawRule {
        line: line_no,
        evidence,
        neg_attr,
        negatives,
        then_attr,
        fact,
    })
}

fn resolve_raw(
    raw: &RawRule<'_>,
    span: Span,
    schema: &Schema,
    symbols: &mut SymbolTable,
) -> Result<FixingRule, RuleParseError> {
    let resolve = |token: &RawToken<'_>| {
        schema
            .attr(token.text)
            .ok_or_else(|| RuleParseError::Syntax {
                span: token.span(raw.line),
                message: format!("attribute `{}` is not in schema {schema}", token.text),
            })
    };
    let mut ev = Vec::with_capacity(raw.evidence.len());
    for (attr, value) in &raw.evidence {
        ev.push((resolve(attr)?, symbols.intern(value)));
    }
    let b = resolve(&raw.then_attr)?;
    let neg = raw.negatives.iter().map(|v| symbols.intern(v)).collect();
    let fact = symbols.intern(&raw.fact);
    FixingRule::new(ev, b, neg, fact).map_err(|source| RuleParseError::Invalid { span, source })
}

/// A fixing rule in schema-independent, serializable form (attribute names
/// and string values). The bridge between the in-memory interned
/// representation and JSON documents ([`PortableRuleSet::to_json`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortableRule {
    /// Evidence cells: `(attribute, value)` pairs.
    pub evidence: Vec<(String, String)>,
    /// The repaired attribute `B`.
    pub b: String,
    /// Negative patterns of `B`.
    pub negatives: Vec<String>,
    /// The fact written on a match.
    pub fact: String,
}

/// A serializable rule-set document: the schema it applies to plus the
/// rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortableRuleSet {
    /// Relation name.
    pub relation: String,
    /// Attribute names in schema order.
    pub attributes: Vec<String>,
    /// The rules.
    pub rules: Vec<PortableRule>,
}

impl PortableRule {
    fn to_json(&self) -> Json {
        let mut obj = Json::Null;
        obj.set(
            "evidence",
            Json::Arr(
                self.evidence
                    .iter()
                    .map(|(a, v)| Json::Arr(vec![Json::from(a.as_str()), Json::from(v.as_str())]))
                    .collect(),
            ),
        );
        obj.set("b", self.b.as_str());
        obj.set("negatives", self.negatives.clone());
        obj.set("fact", self.fact.as_str());
        obj
    }

    fn from_json(value: &Json) -> Result<PortableRule, String> {
        let evidence = value
            .get("evidence")
            .and_then(Json::as_arr)
            .ok_or("rule is missing `evidence` array")?
            .iter()
            .map(|pair| match pair.as_arr() {
                Some([a, v]) => match (a.as_str(), v.as_str()) {
                    (Some(a), Some(v)) => Ok((a.to_string(), v.to_string())),
                    _ => Err("evidence pair must hold two strings".to_string()),
                },
                _ => Err("evidence entry must be an `[attr, value]` pair".to_string()),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PortableRule {
            evidence,
            b: json_str(value, "b")?,
            negatives: json_str_arr(value, "negatives")?,
            fact: json_str(value, "fact")?,
        })
    }
}

impl PortableRuleSet {
    /// The document as a JSON value (stable member order).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::Null;
        obj.set("relation", self.relation.as_str());
        obj.set("attributes", self.attributes.clone());
        obj.set(
            "rules",
            Json::Arr(self.rules.iter().map(PortableRule::to_json).collect()),
        );
        obj
    }

    /// Pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parse a JSON document produced by [`PortableRuleSet::to_json`].
    pub fn from_json_str(text: &str) -> Result<PortableRuleSet, String> {
        let doc = obs::json::parse(text).map_err(|e| e.to_string())?;
        let rules = doc
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or("document is missing `rules` array")?
            .iter()
            .enumerate()
            .map(|(i, r)| PortableRule::from_json(r).map_err(|e| format!("rule #{i}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PortableRuleSet {
            relation: json_str(&doc, "relation")?,
            attributes: json_str_arr(&doc, "attributes")?,
            rules,
        })
    }
}

fn json_str(value: &Json, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string member `{key}`"))
}

fn json_str_arr(value: &Json, key: &str) -> Result<Vec<String>, String> {
    value
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array member `{key}`"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("`{key}` entries must be strings"))
        })
        .collect()
}

/// Export a rule set to portable form.
pub fn to_portable(rules: &RuleSet, symbols: &SymbolTable) -> PortableRuleSet {
    let schema = rules.schema();
    PortableRuleSet {
        relation: schema.name().to_string(),
        attributes: schema.attr_names().map(str::to_string).collect(),
        rules: rules
            .rules()
            .iter()
            .map(|r| PortableRule {
                evidence: r
                    .x()
                    .iter()
                    .zip(r.tp().iter())
                    .map(|(&a, &v)| {
                        (
                            schema.attr_name(a).to_string(),
                            symbols.resolve(v).to_string(),
                        )
                    })
                    .collect(),
                b: schema.attr_name(r.b()).to_string(),
                negatives: r
                    .neg()
                    .iter()
                    .map(|&v| symbols.resolve(v).to_string())
                    .collect(),
                fact: symbols.resolve(r.fact()).to_string(),
            })
            .collect(),
    }
}

/// Errors importing a portable document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortableError {
    /// The document's schema could not be rebuilt.
    BadSchema(String),
    /// A rule referenced an unknown attribute or failed validation.
    BadRule {
        /// Index of the offending rule in the document.
        index: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for PortableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortableError::BadSchema(m) => write!(f, "bad schema: {m}"),
            PortableError::BadRule { index, message } => {
                write!(f, "rule #{index}: {message}")
            }
        }
    }
}

impl std::error::Error for PortableError {}

/// Import a portable document, rebuilding the schema it declares.
pub fn from_portable(
    doc: &PortableRuleSet,
    symbols: &mut SymbolTable,
) -> Result<RuleSet, PortableError> {
    let schema = Schema::new(doc.relation.clone(), doc.attributes.iter().cloned())
        .map_err(|e| PortableError::BadSchema(e.to_string()))?;
    let mut rules = RuleSet::new(schema.clone());
    for (index, pr) in doc.rules.iter().enumerate() {
        let evidence: Vec<(&str, &str)> = pr
            .evidence
            .iter()
            .map(|(a, v)| (a.as_str(), v.as_str()))
            .collect();
        let negatives: Vec<&str> = pr.negatives.iter().map(String::as_str).collect();
        let rule = FixingRule::from_named(&schema, symbols, &evidence, &pr.b, &negatives, &pr.fact)
            .map_err(|e| PortableError::BadRule {
                index,
                message: e.to_string(),
            })?;
        rules.push(rule);
    }
    Ok(rules)
}

fn quote(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A lexing failure: 1-based column of the offending character plus the
/// message. Converted to [`RuleParseError::Syntax`] by the caller, which
/// knows the line number.
struct LexError {
    col: usize,
    message: String,
}

/// Minimal hand-rolled tokenizer over one line, tracking the column of the
/// next unconsumed character so errors can point into the source.
struct Lexer<'a> {
    full: &'a str,
    rest: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(line: &'a str) -> Self {
        Lexer {
            full: line,
            rest: line.trim_start(),
        }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    /// 1-based column (in characters) of the next unconsumed character.
    fn next_col(&self) -> usize {
        let consumed = self.full.len() - self.rest.len();
        self.full[..consumed].chars().count() + 1
    }

    fn err<T>(&self, message: String) -> Result<T, LexError> {
        Err(LexError {
            col: self.next_col(),
            message,
        })
    }

    fn expect_word(&mut self, word: &str) -> Result<(), LexError> {
        self.skip_ws();
        if let Some(stripped) = self.rest.strip_prefix(word) {
            self.rest = stripped;
            Ok(())
        } else {
            self.err(format!(
                "expected `{word}`, found `{}`",
                self.rest.chars().take(12).collect::<String>()
            ))
        }
    }

    fn try_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        if let Some(stripped) = self.rest.strip_prefix(word) {
            self.rest = stripped;
            true
        } else {
            false
        }
    }

    /// Attribute identifier: up to whitespace or a reserved delimiter.
    fn ident(&mut self) -> Result<RawToken<'a>, LexError> {
        self.skip_ws();
        let col = self.next_col();
        let end = self
            .rest
            .find(|c: char| c.is_whitespace() || "={},".contains(c))
            .unwrap_or(self.rest.len());
        if end == 0 {
            return self.err(format!(
                "expected attribute name, found `{}`",
                self.rest.chars().take(12).collect::<String>()
            ));
        }
        let (ident, rest) = self.rest.split_at(end);
        self.rest = rest;
        Ok(RawToken { text: ident, col })
    }

    /// Double-quoted string with `\"`/`\\` escapes.
    fn quoted(&mut self) -> Result<String, LexError> {
        self.skip_ws();
        let start_col = self.next_col();
        let mut chars = self.rest.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => {
                return self.err(format!(
                    "expected quoted value, found `{}`",
                    self.rest.chars().take(12).collect::<String>()
                ))
            }
        }
        let mut out = String::new();
        let mut escaped = false;
        for (i, ch) in chars {
            if escaped {
                match ch {
                    '"' | '\\' => out.push(ch),
                    other => {
                        return Err(LexError {
                            col: start_col,
                            message: format!("bad escape `\\{other}`"),
                        })
                    }
                }
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                self.rest = &self.rest[i + 1..];
                return Ok(out);
            } else {
                out.push(ch);
            }
        }
        Err(LexError {
            col: start_col,
            message: "unterminated quoted value".into(),
        })
    }

    fn expect_end(&mut self) -> Result<(), LexError> {
        self.skip_ws();
        if self.rest.is_empty() {
            Ok(())
        } else {
            self.err(format!("trailing input `{}`", self.rest))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    #[test]
    fn round_trips_phi1() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let rule = FixingRule::from_named(
            &schema,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        let line = format_rule(&rule, &schema, &sy);
        assert!(
            line.starts_with("IF country = \"China\" AND capital IN {"),
            "{line}"
        );
        let parsed = parse_rule_line(&line, 1, &schema, &mut sy).unwrap();
        assert_eq!(parsed, rule);
    }

    #[test]
    fn round_trips_multi_evidence() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let rule = FixingRule::from_named(
            &schema,
            &mut sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();
        let line = format_rule(&rule, &schema, &sy);
        let parsed = parse_rule_line(&line, 1, &schema, &mut sy).unwrap();
        assert_eq!(parsed, rule);
    }

    #[test]
    fn round_trips_tricky_values() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let rule = FixingRule::from_named(
            &schema,
            &mut sy,
            &[("country", "He said \"hi\", twice")],
            "capital",
            &["back\\slash", "brace } and , comma"],
            "plain",
        )
        .unwrap();
        let line = format_rule(&rule, &schema, &sy);
        let parsed = parse_rule_line(&line, 1, &schema, &mut sy).unwrap();
        assert_eq!(parsed, rule);
    }

    #[test]
    fn parses_file_with_comments_and_blanks() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let text = r#"
# φ1 and φ2
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"

IF country = "Canada" AND capital IN {"Toronto"} THEN capital := "Ottawa"
"#;
        let rules = parse_rules(text, &schema, &mut sy).unwrap();
        assert_eq!(rules.len(), 2);
        assert!(rules.check_consistency().is_consistent());
    }

    #[test]
    fn format_rules_round_trips_a_set() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let mut rules = RuleSet::new(schema.clone());
        rules
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Shanghai", "Hongkong"],
                "Beijing",
            )
            .unwrap();
        rules
            .push_named(
                &mut sy,
                &[("country", "Canada")],
                "capital",
                &["Toronto"],
                "Ottawa",
            )
            .unwrap();
        let text = format_rules(&rules, &sy);
        let parsed = parse_rules(&text, &schema, &mut sy).unwrap();
        assert_eq!(parsed.len(), 2);
        for ((_, a), (_, b)) in rules.iter().zip(parsed.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn error_reports_line_numbers() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let text = "# ok\nIF country = \"China\" THEN capital := \"Beijing\"\n";
        let err = parse_rules(text, &schema, &mut sy).unwrap_err();
        match err {
            RuleParseError::Syntax { span, message } => {
                assert_eq!(span.line, 2);
                assert!(message.contains("IN"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_columns() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        // `nation` starts at column 4 of the line.
        let line = r#"IF nation = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing""#;
        let err = parse_rule_line(line, 7, &schema, &mut sy).unwrap_err();
        let span = err.span();
        assert_eq!((span.line, span.col, span.len), (7, 4, 6));
        assert!(err.to_string().starts_with("line 7:4: "), "{err}");
    }

    #[test]
    fn parse_rules_spanned_reports_rule_spans() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let text = "# header\n\n  IF country = \"China\" AND capital IN {\"Shanghai\"} THEN capital := \"Beijing\"\nIF country = \"Canada\" AND capital IN {\"Toronto\"} THEN capital := \"Ottawa\"\n";
        let spanned = parse_rules_spanned(text, &schema, &mut sy).unwrap();
        assert_eq!(spanned.rules.len(), 2);
        assert_eq!(spanned.spans.len(), 2);
        // First rule is indented by two spaces on line 3.
        assert_eq!(spanned.spans[0].line, 3);
        assert_eq!(spanned.spans[0].col, 3);
        assert_eq!(spanned.spans[1].line, 4);
        assert_eq!(spanned.spans[1].col, 1);
        // The span covers the trimmed rule text.
        assert_eq!(
            spanned.spans[1].len,
            text.lines().nth(3).unwrap().chars().count()
        );
    }

    #[test]
    fn infer_schema_collects_attributes_in_order() {
        let text = r#"
# rules over an undeclared schema
IF country = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing"
IF capital = "Tokyo" AND conf = "ICDE" AND country IN {"China"} THEN country := "Japan"
"#;
        let schema = infer_schema(text, "Inferred").unwrap();
        let names: Vec<&str> = schema.attr_names().collect();
        assert_eq!(names, vec!["country", "capital", "conf"]);
        // The inferred schema parses the same file.
        let mut sy = SymbolTable::new();
        let rules = parse_rules(text, &schema, &mut sy).unwrap();
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn mismatched_then_attribute_rejected() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let line = r#"IF country = "China" AND capital IN {"Shanghai"} THEN city := "Beijing""#;
        let err = parse_rule_line(line, 1, &schema, &mut sy).unwrap_err();
        assert!(matches!(err, RuleParseError::Syntax { .. }));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let line = r#"IF nation = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing""#;
        let err = parse_rule_line(line, 1, &schema, &mut sy).unwrap_err();
        assert!(err.to_string().contains("nation"));
    }

    #[test]
    fn invalid_rule_surfaces_validation_error() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        // Fact among the negatives.
        let line = r#"IF country = "China" AND capital IN {"Beijing"} THEN capital := "Beijing""#;
        let err = parse_rule_line(line, 1, &schema, &mut sy).unwrap_err();
        assert!(matches!(err, RuleParseError::Invalid { .. }));
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn portable_round_trip() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let mut rules = RuleSet::new(schema.clone());
        rules
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Shanghai", "Hongkong"],
                "Beijing",
            )
            .unwrap();
        rules
            .push_named(
                &mut sy,
                &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
                "country",
                &["China"],
                "Japan",
            )
            .unwrap();
        let doc = to_portable(&rules, &sy);
        let json = doc.to_json_string();
        let parsed = PortableRuleSet::from_json_str(&json).unwrap();
        assert_eq!(parsed, doc);
        let mut sy2 = SymbolTable::new();
        let rebuilt = from_portable(&parsed, &mut sy2).unwrap();
        assert_eq!(rebuilt.len(), 2);
        // Semantically identical: same display under the fresh interner.
        for ((_, a), (_, b)) in rules.iter().zip(rebuilt.iter()) {
            assert_eq!(a.display(&schema, &sy), b.display(rebuilt.schema(), &sy2));
        }
    }

    #[test]
    fn portable_rejects_bad_rules() {
        let doc = PortableRuleSet {
            relation: "R".into(),
            attributes: vec!["a".into(), "b".into()],
            rules: vec![PortableRule {
                evidence: vec![("a".into(), "1".into())],
                b: "b".into(),
                negatives: vec!["x".into()],
                fact: "x".into(), // fact ∈ negatives
            }],
        };
        let mut sy = SymbolTable::new();
        let err = from_portable(&doc, &mut sy).unwrap_err();
        assert!(matches!(err, PortableError::BadRule { index: 0, .. }));
    }

    #[test]
    fn portable_rejects_bad_schema() {
        let doc = PortableRuleSet {
            relation: "R".into(),
            attributes: vec!["a".into(), "a".into()],
            rules: vec![],
        };
        let mut sy = SymbolTable::new();
        assert!(matches!(
            from_portable(&doc, &mut sy),
            Err(PortableError::BadSchema(_))
        ));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let line = r#"IF country = "China AND capital IN {"x"} THEN capital := "y""#;
        assert!(parse_rule_line(line, 3, &schema, &mut sy).is_err());
    }
}
