//! Textual rule files.
//!
//! A line-oriented, human-editable serialization of fixing rules, so rule
//! sets can be authored in a file, versioned, and shared between the CLI
//! and the library:
//!
//! ```text
//! # φ1 of the paper
//! IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"
//! ```
//!
//! Grammar (one rule per line, `#` comments, blank lines ignored):
//!
//! ```text
//! rule  := "IF" cond ("AND" cond)* "THEN" attr ":=" value
//! cond  := attr "=" value                       (evidence cell)
//!        | attr "IN" "{" value ("," value)* "}" (negative patterns of B)
//! value := '"' escaped-string '"'
//! ```
//!
//! Exactly one `IN` condition is required and its attribute must match the
//! `THEN` attribute. Values are double-quoted with `\"` and `\\` escapes,
//! so arbitrary cell content round-trips.

use std::fmt::Write as _;

use obs::Json;
use relation::{Schema, SymbolTable};

use crate::rule::FixingRule;
use crate::ruleset::RuleSet;

/// Errors raised while parsing a rule file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleParseError {
    /// Line did not match the grammar.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed rule failed validation (e.g. fact among negatives).
    Invalid {
        /// 1-based line number.
        line: usize,
        /// The validation failure.
        source: crate::rule::FixRuleError,
    },
}

impl std::fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleParseError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            RuleParseError::Invalid { line, source } => {
                write!(f, "line {line}: invalid rule: {source}")
            }
        }
    }
}

impl std::error::Error for RuleParseError {}

/// Serialize one rule as a rule-file line.
pub fn format_rule(rule: &FixingRule, schema: &Schema, symbols: &SymbolTable) -> String {
    let mut out = String::from("IF ");
    for (i, (&attr, &val)) in rule.x().iter().zip(rule.tp().iter()).enumerate() {
        if i > 0 {
            out.push_str(" AND ");
        }
        let _ = write!(
            out,
            "{} = {}",
            schema.attr_name(attr),
            quote(symbols.resolve(val))
        );
    }
    let _ = write!(out, " AND {} IN {{", schema.attr_name(rule.b()));
    for (i, &neg) in rule.neg().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&quote(symbols.resolve(neg)));
    }
    let _ = write!(
        out,
        "}} THEN {} := {}",
        schema.attr_name(rule.b()),
        quote(symbols.resolve(rule.fact()))
    );
    out
}

/// Serialize a whole rule set (with a header comment).
pub fn format_rules(rules: &RuleSet, symbols: &SymbolTable) -> String {
    let mut out = format!(
        "# {} fixing rules over schema {}\n",
        rules.len(),
        rules.schema()
    );
    for (_, rule) in rules.iter() {
        out.push_str(&format_rule(rule, rules.schema(), symbols));
        out.push('\n');
    }
    out
}

/// Parse a rule file into a [`RuleSet`] over `schema`, interning values
/// into `symbols`.
///
/// ```
/// use relation::{Schema, SymbolTable};
/// let schema = Schema::new("T", ["country", "capital"]).unwrap();
/// let mut sy = SymbolTable::new();
/// let rules = fixrules::io::parse_rules(
///     r#"IF country = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing""#,
///     &schema,
///     &mut sy,
/// ).unwrap();
/// assert_eq!(rules.len(), 1);
/// assert!(rules.check_consistency().is_consistent());
/// ```
pub fn parse_rules(
    text: &str,
    schema: &Schema,
    symbols: &mut SymbolTable,
) -> Result<RuleSet, RuleParseError> {
    let mut rules = RuleSet::new(schema.clone());
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = parse_rule_line(line, line_no, schema, symbols)?;
        rules.push(rule);
    }
    Ok(rules)
}

/// Parse a single rule line.
pub fn parse_rule_line(
    line: &str,
    line_no: usize,
    schema: &Schema,
    symbols: &mut SymbolTable,
) -> Result<FixingRule, RuleParseError> {
    let syntax = |message: String| RuleParseError::Syntax {
        line: line_no,
        message,
    };
    let mut lex = Lexer::new(line);
    lex.expect_word("IF").map_err(&syntax)?;

    let mut evidence: Vec<(&str, String)> = Vec::new();
    let mut neg_clause: Option<(&str, Vec<String>)> = None;
    loop {
        let attr = lex.ident().map_err(&syntax)?;
        if lex.try_word("=") {
            let value = lex.quoted().map_err(&syntax)?;
            evidence.push((attr, value));
        } else if lex.try_word("IN") {
            if neg_clause.is_some() {
                return Err(syntax("more than one IN clause".into()));
            }
            lex.expect_word("{").map_err(&syntax)?;
            let mut values = Vec::new();
            loop {
                values.push(lex.quoted().map_err(&syntax)?);
                if lex.try_word(",") {
                    continue;
                }
                lex.expect_word("}").map_err(&syntax)?;
                break;
            }
            neg_clause = Some((attr, values));
        } else {
            return Err(syntax(format!("expected `=` or `IN` after `{attr}`")));
        }
        if lex.try_word("AND") {
            continue;
        }
        lex.expect_word("THEN").map_err(&syntax)?;
        break;
    }
    let then_attr = lex.ident().map_err(&syntax)?;
    lex.expect_word(":=").map_err(&syntax)?;
    let fact = lex.quoted().map_err(&syntax)?;
    lex.expect_end().map_err(&syntax)?;

    let Some((neg_attr, neg_values)) = neg_clause else {
        return Err(syntax("missing IN clause (negative patterns)".into()));
    };
    if neg_attr != then_attr {
        return Err(syntax(format!(
            "IN attribute `{neg_attr}` does not match THEN attribute `{then_attr}`"
        )));
    }

    let resolve = |name: &str| {
        schema
            .attr(name)
            .ok_or_else(|| syntax(format!("attribute `{name}` is not in schema {schema}")))
    };
    let mut ev = Vec::with_capacity(evidence.len());
    for (attr, value) in evidence {
        ev.push((resolve(attr)?, symbols.intern(&value)));
    }
    let b = resolve(then_attr)?;
    let neg = neg_values.iter().map(|v| symbols.intern(v)).collect();
    let fact = symbols.intern(&fact);
    FixingRule::new(ev, b, neg, fact).map_err(|source| RuleParseError::Invalid {
        line: line_no,
        source,
    })
}

/// A fixing rule in schema-independent, serializable form (attribute names
/// and string values). The bridge between the in-memory interned
/// representation and JSON documents ([`PortableRuleSet::to_json`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortableRule {
    /// Evidence cells: `(attribute, value)` pairs.
    pub evidence: Vec<(String, String)>,
    /// The repaired attribute `B`.
    pub b: String,
    /// Negative patterns of `B`.
    pub negatives: Vec<String>,
    /// The fact written on a match.
    pub fact: String,
}

/// A serializable rule-set document: the schema it applies to plus the
/// rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortableRuleSet {
    /// Relation name.
    pub relation: String,
    /// Attribute names in schema order.
    pub attributes: Vec<String>,
    /// The rules.
    pub rules: Vec<PortableRule>,
}

impl PortableRule {
    fn to_json(&self) -> Json {
        let mut obj = Json::Null;
        obj.set(
            "evidence",
            Json::Arr(
                self.evidence
                    .iter()
                    .map(|(a, v)| Json::Arr(vec![Json::from(a.as_str()), Json::from(v.as_str())]))
                    .collect(),
            ),
        );
        obj.set("b", self.b.as_str());
        obj.set("negatives", self.negatives.clone());
        obj.set("fact", self.fact.as_str());
        obj
    }

    fn from_json(value: &Json) -> Result<PortableRule, String> {
        let evidence = value
            .get("evidence")
            .and_then(Json::as_arr)
            .ok_or("rule is missing `evidence` array")?
            .iter()
            .map(|pair| match pair.as_arr() {
                Some([a, v]) => match (a.as_str(), v.as_str()) {
                    (Some(a), Some(v)) => Ok((a.to_string(), v.to_string())),
                    _ => Err("evidence pair must hold two strings".to_string()),
                },
                _ => Err("evidence entry must be an `[attr, value]` pair".to_string()),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PortableRule {
            evidence,
            b: json_str(value, "b")?,
            negatives: json_str_arr(value, "negatives")?,
            fact: json_str(value, "fact")?,
        })
    }
}

impl PortableRuleSet {
    /// The document as a JSON value (stable member order).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::Null;
        obj.set("relation", self.relation.as_str());
        obj.set("attributes", self.attributes.clone());
        obj.set(
            "rules",
            Json::Arr(self.rules.iter().map(PortableRule::to_json).collect()),
        );
        obj
    }

    /// Pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parse a JSON document produced by [`PortableRuleSet::to_json`].
    pub fn from_json_str(text: &str) -> Result<PortableRuleSet, String> {
        let doc = obs::json::parse(text).map_err(|e| e.to_string())?;
        let rules = doc
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or("document is missing `rules` array")?
            .iter()
            .enumerate()
            .map(|(i, r)| PortableRule::from_json(r).map_err(|e| format!("rule #{i}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PortableRuleSet {
            relation: json_str(&doc, "relation")?,
            attributes: json_str_arr(&doc, "attributes")?,
            rules,
        })
    }
}

fn json_str(value: &Json, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string member `{key}`"))
}

fn json_str_arr(value: &Json, key: &str) -> Result<Vec<String>, String> {
    value
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array member `{key}`"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("`{key}` entries must be strings"))
        })
        .collect()
}

/// Export a rule set to portable form.
pub fn to_portable(rules: &RuleSet, symbols: &SymbolTable) -> PortableRuleSet {
    let schema = rules.schema();
    PortableRuleSet {
        relation: schema.name().to_string(),
        attributes: schema.attr_names().map(str::to_string).collect(),
        rules: rules
            .rules()
            .iter()
            .map(|r| PortableRule {
                evidence: r
                    .x()
                    .iter()
                    .zip(r.tp().iter())
                    .map(|(&a, &v)| {
                        (
                            schema.attr_name(a).to_string(),
                            symbols.resolve(v).to_string(),
                        )
                    })
                    .collect(),
                b: schema.attr_name(r.b()).to_string(),
                negatives: r
                    .neg()
                    .iter()
                    .map(|&v| symbols.resolve(v).to_string())
                    .collect(),
                fact: symbols.resolve(r.fact()).to_string(),
            })
            .collect(),
    }
}

/// Errors importing a portable document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortableError {
    /// The document's schema could not be rebuilt.
    BadSchema(String),
    /// A rule referenced an unknown attribute or failed validation.
    BadRule {
        /// Index of the offending rule in the document.
        index: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for PortableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortableError::BadSchema(m) => write!(f, "bad schema: {m}"),
            PortableError::BadRule { index, message } => {
                write!(f, "rule #{index}: {message}")
            }
        }
    }
}

impl std::error::Error for PortableError {}

/// Import a portable document, rebuilding the schema it declares.
pub fn from_portable(
    doc: &PortableRuleSet,
    symbols: &mut SymbolTable,
) -> Result<RuleSet, PortableError> {
    let schema = Schema::new(doc.relation.clone(), doc.attributes.iter().cloned())
        .map_err(|e| PortableError::BadSchema(e.to_string()))?;
    let mut rules = RuleSet::new(schema.clone());
    for (index, pr) in doc.rules.iter().enumerate() {
        let evidence: Vec<(&str, &str)> = pr
            .evidence
            .iter()
            .map(|(a, v)| (a.as_str(), v.as_str()))
            .collect();
        let negatives: Vec<&str> = pr.negatives.iter().map(String::as_str).collect();
        let rule = FixingRule::from_named(&schema, symbols, &evidence, &pr.b, &negatives, &pr.fact)
            .map_err(|e| PortableError::BadRule {
                index,
                message: e.to_string(),
            })?;
        rules.push(rule);
    }
    Ok(rules)
}

fn quote(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal hand-rolled tokenizer over one line.
struct Lexer<'a> {
    rest: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(line: &'a str) -> Self {
        Lexer {
            rest: line.trim_start(),
        }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn expect_word(&mut self, word: &str) -> Result<(), String> {
        self.skip_ws();
        if let Some(stripped) = self.rest.strip_prefix(word) {
            self.rest = stripped;
            Ok(())
        } else {
            Err(format!(
                "expected `{word}`, found `{}`",
                self.rest.chars().take(12).collect::<String>()
            ))
        }
    }

    fn try_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        if let Some(stripped) = self.rest.strip_prefix(word) {
            self.rest = stripped;
            true
        } else {
            false
        }
    }

    /// Attribute identifier: up to whitespace or a reserved delimiter.
    fn ident(&mut self) -> Result<&'a str, String> {
        self.skip_ws();
        let end = self
            .rest
            .find(|c: char| c.is_whitespace() || "={},".contains(c))
            .unwrap_or(self.rest.len());
        if end == 0 {
            return Err(format!(
                "expected attribute name, found `{}`",
                self.rest.chars().take(12).collect::<String>()
            ));
        }
        let (ident, rest) = self.rest.split_at(end);
        self.rest = rest;
        Ok(ident)
    }

    /// Double-quoted string with `\"`/`\\` escapes.
    fn quoted(&mut self) -> Result<String, String> {
        self.skip_ws();
        let mut chars = self.rest.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => {
                return Err(format!(
                    "expected quoted value, found `{}`",
                    self.rest.chars().take(12).collect::<String>()
                ))
            }
        }
        let mut out = String::new();
        let mut escaped = false;
        for (i, ch) in chars {
            if escaped {
                match ch {
                    '"' | '\\' => out.push(ch),
                    other => return Err(format!("bad escape `\\{other}`")),
                }
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                self.rest = &self.rest[i + 1..];
                return Ok(out);
            } else {
                out.push(ch);
            }
        }
        Err("unterminated quoted value".into())
    }

    fn expect_end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("trailing input `{}`", self.rest))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    #[test]
    fn round_trips_phi1() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let rule = FixingRule::from_named(
            &schema,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        let line = format_rule(&rule, &schema, &sy);
        assert!(
            line.starts_with("IF country = \"China\" AND capital IN {"),
            "{line}"
        );
        let parsed = parse_rule_line(&line, 1, &schema, &mut sy).unwrap();
        assert_eq!(parsed, rule);
    }

    #[test]
    fn round_trips_multi_evidence() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let rule = FixingRule::from_named(
            &schema,
            &mut sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();
        let line = format_rule(&rule, &schema, &sy);
        let parsed = parse_rule_line(&line, 1, &schema, &mut sy).unwrap();
        assert_eq!(parsed, rule);
    }

    #[test]
    fn round_trips_tricky_values() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let rule = FixingRule::from_named(
            &schema,
            &mut sy,
            &[("country", "He said \"hi\", twice")],
            "capital",
            &["back\\slash", "brace } and , comma"],
            "plain",
        )
        .unwrap();
        let line = format_rule(&rule, &schema, &sy);
        let parsed = parse_rule_line(&line, 1, &schema, &mut sy).unwrap();
        assert_eq!(parsed, rule);
    }

    #[test]
    fn parses_file_with_comments_and_blanks() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let text = r#"
# φ1 and φ2
IF country = "China" AND capital IN {"Shanghai", "Hongkong"} THEN capital := "Beijing"

IF country = "Canada" AND capital IN {"Toronto"} THEN capital := "Ottawa"
"#;
        let rules = parse_rules(text, &schema, &mut sy).unwrap();
        assert_eq!(rules.len(), 2);
        assert!(rules.check_consistency().is_consistent());
    }

    #[test]
    fn format_rules_round_trips_a_set() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let mut rules = RuleSet::new(schema.clone());
        rules
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Shanghai", "Hongkong"],
                "Beijing",
            )
            .unwrap();
        rules
            .push_named(
                &mut sy,
                &[("country", "Canada")],
                "capital",
                &["Toronto"],
                "Ottawa",
            )
            .unwrap();
        let text = format_rules(&rules, &sy);
        let parsed = parse_rules(&text, &schema, &mut sy).unwrap();
        assert_eq!(parsed.len(), 2);
        for ((_, a), (_, b)) in rules.iter().zip(parsed.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn error_reports_line_numbers() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let text = "# ok\nIF country = \"China\" THEN capital := \"Beijing\"\n";
        let err = parse_rules(text, &schema, &mut sy).unwrap_err();
        match err {
            RuleParseError::Syntax { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("IN"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mismatched_then_attribute_rejected() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let line = r#"IF country = "China" AND capital IN {"Shanghai"} THEN city := "Beijing""#;
        let err = parse_rule_line(line, 1, &schema, &mut sy).unwrap_err();
        assert!(matches!(err, RuleParseError::Syntax { .. }));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let line = r#"IF nation = "China" AND capital IN {"Shanghai"} THEN capital := "Beijing""#;
        let err = parse_rule_line(line, 1, &schema, &mut sy).unwrap_err();
        assert!(err.to_string().contains("nation"));
    }

    #[test]
    fn invalid_rule_surfaces_validation_error() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        // Fact among the negatives.
        let line = r#"IF country = "China" AND capital IN {"Beijing"} THEN capital := "Beijing""#;
        let err = parse_rule_line(line, 1, &schema, &mut sy).unwrap_err();
        assert!(matches!(err, RuleParseError::Invalid { line: 1, .. }));
    }

    #[test]
    fn portable_round_trip() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let mut rules = RuleSet::new(schema.clone());
        rules
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Shanghai", "Hongkong"],
                "Beijing",
            )
            .unwrap();
        rules
            .push_named(
                &mut sy,
                &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
                "country",
                &["China"],
                "Japan",
            )
            .unwrap();
        let doc = to_portable(&rules, &sy);
        let json = doc.to_json_string();
        let parsed = PortableRuleSet::from_json_str(&json).unwrap();
        assert_eq!(parsed, doc);
        let mut sy2 = SymbolTable::new();
        let rebuilt = from_portable(&parsed, &mut sy2).unwrap();
        assert_eq!(rebuilt.len(), 2);
        // Semantically identical: same display under the fresh interner.
        for ((_, a), (_, b)) in rules.iter().zip(rebuilt.iter()) {
            assert_eq!(a.display(&schema, &sy), b.display(rebuilt.schema(), &sy2));
        }
    }

    #[test]
    fn portable_rejects_bad_rules() {
        let doc = PortableRuleSet {
            relation: "R".into(),
            attributes: vec!["a".into(), "b".into()],
            rules: vec![PortableRule {
                evidence: vec![("a".into(), "1".into())],
                b: "b".into(),
                negatives: vec!["x".into()],
                fact: "x".into(), // fact ∈ negatives
            }],
        };
        let mut sy = SymbolTable::new();
        let err = from_portable(&doc, &mut sy).unwrap_err();
        assert!(matches!(err, PortableError::BadRule { index: 0, .. }));
    }

    #[test]
    fn portable_rejects_bad_schema() {
        let doc = PortableRuleSet {
            relation: "R".into(),
            attributes: vec!["a".into(), "a".into()],
            rules: vec![],
        };
        let mut sy = SymbolTable::new();
        assert!(matches!(
            from_portable(&doc, &mut sy),
            Err(PortableError::BadSchema(_))
        ));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let line = r#"IF country = "China AND capital IN {"x"} THEN capital := "y""#;
        assert!(parse_rule_line(line, 3, &schema, &mut sy).is_err());
    }
}
