//! The implication problem (§4.3).
//!
//! `Σ |= φ` iff (i) `Σ ∪ {φ}` is consistent and (ii) every tuple reaches the
//! same fix under `Σ` and under `Σ ∪ {φ}` — i.e. `φ` is redundant.
//!
//! The problem is coNP-complete in general (Theorem 2) but PTIME for a
//! *fixed* schema: by the small-model property it suffices to check tuples
//! whose cells are drawn, per attribute, from the constants mentioned in
//! `Σ ∪ {φ}` plus one fresh value outside every pattern. This module
//! implements that fixed-schema checker with an explicit budget on the
//! number of candidate tuples (the space is `Π_A (|V(A)|+1)`, polynomial for
//! fixed `|R|` but still potentially large).

use std::collections::BTreeMap;

use relation::{AttrId, Symbol};

use crate::consistency::enumerate::WILDCARD;
use crate::consistency::is_consistent_characterize;
use crate::repair::chase::crepair_tuple;
use crate::rule::FixingRule;
use crate::ruleset::RuleSet;

/// Why `Σ |= φ` failed, or that the check could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImplicationOutcome {
    /// `φ` is implied: adding it changes no fix.
    Implied,
    /// `Σ ∪ {φ}` is inconsistent (condition (i) fails).
    ExtensionInconsistent,
    /// A tuple whose fixes differ was found (condition (ii) fails).
    NotImplied {
        /// The differing tuple.
        witness: Vec<Symbol>,
    },
    /// The candidate space exceeded the supplied budget, so the check ran
    /// out before deciding: `φ` was neither proved implied nor refuted.
    /// Callers must treat this as "don't know", never as a refutation.
    Unknown {
        /// Size of the space that was refused.
        candidates: usize,
    },
}

/// Build the per-attribute small-model value pools for `Σ ∪ {φ}`: every
/// constant mentioned for the attribute anywhere in the extended set
/// (evidence, negative patterns, facts), plus the wildcard. Facts are
/// included because a fact of one rule can be the evidence of another on
/// the *initial* tuple.
fn small_model_domains(extended: &RuleSet) -> BTreeMap<AttrId, Vec<Symbol>> {
    let mut values: BTreeMap<AttrId, Vec<Symbol>> = BTreeMap::new();
    for attr in extended.schema().attr_ids() {
        values.insert(attr, vec![WILDCARD]);
    }
    for rule in extended.rules() {
        for (&attr, &val) in rule.x().iter().zip(rule.tp().iter()) {
            values.get_mut(&attr).expect("schema attr").push(val);
        }
        let b = values.get_mut(&rule.b()).expect("schema attr");
        b.extend_from_slice(rule.neg());
        b.push(rule.fact());
    }
    for vals in values.values_mut() {
        vals.sort();
        vals.dedup();
    }
    values
}

/// Number of candidate tuples [`implies`] inspects for `Σ |= φ` — the
/// product `Π_A (|V(A)|)` over the small-model pools. Callers can pre-size
/// budgets with this: `implies(rules, phi, model_size(rules, phi))` always
/// decides.
pub fn model_size(rules: &RuleSet, phi: &FixingRule) -> usize {
    let mut extended = rules.clone();
    extended.push(phi.clone());
    small_model_domains(&extended)
        .values()
        .fold(1usize, |acc, vals| acc.saturating_mul(vals.len()))
}

/// Check whether a consistent `Σ` implies `φ`.
///
/// ```
/// use relation::{Schema, SymbolTable};
/// use fixrules::{FixingRule, RuleSet};
/// use fixrules::implication::{implies, ImplicationOutcome};
///
/// let schema = Schema::new("T", ["country", "capital"]).unwrap();
/// let mut sy = SymbolTable::new();
/// let mut rules = RuleSet::new(schema.clone());
/// rules.push_named(&mut sy, &[("country", "China")], "capital",
///                  &["Shanghai", "Hongkong"], "Beijing").unwrap();
/// // A narrower duplicate is redundant.
/// let narrower = FixingRule::from_named(&schema, &mut sy,
///     &[("country", "China")], "capital", &["Shanghai"], "Beijing").unwrap();
/// assert_eq!(implies(&rules, &narrower, 1 << 20), ImplicationOutcome::Implied);
/// ```
///
/// `Σ` must be consistent (checked by `debug_assert` only — callers come
/// from workflows that established it). `budget` caps the number of
/// candidate tuples inspected.
pub fn implies(rules: &RuleSet, phi: &FixingRule, budget: usize) -> ImplicationOutcome {
    debug_assert!(
        is_consistent_characterize(rules, 1).is_consistent(),
        "implication requires a consistent Σ"
    );
    // Condition (i): Σ ∪ {φ} consistent.
    let mut extended = rules.clone();
    extended.push(phi.clone());
    if !is_consistent_characterize(&extended, 1).is_consistent() {
        return ImplicationOutcome::ExtensionInconsistent;
    }

    let values = small_model_domains(&extended);
    let total = values
        .values()
        .fold(1usize, |acc, vals| acc.saturating_mul(vals.len()));
    if total > budget {
        return ImplicationOutcome::Unknown { candidates: total };
    }

    // Condition (ii): chase every candidate under both sets.
    let attrs: Vec<AttrId> = values.keys().copied().collect();
    let domains: Vec<&Vec<Symbol>> = values.values().collect();
    let mut indices = vec![0usize; attrs.len()];
    let arity = rules.schema().arity();
    let mut row = vec![WILDCARD; arity];
    loop {
        for (k, &attr) in attrs.iter().enumerate() {
            row[attr.index()] = domains[k][indices[k]];
        }
        let mut under_sigma = row.clone();
        crepair_tuple(rules, &mut under_sigma);
        let mut under_ext = row.clone();
        crepair_tuple(&extended, &mut under_ext);
        if under_sigma != under_ext {
            return ImplicationOutcome::NotImplied { witness: row };
        }
        let mut k = 0;
        loop {
            if k == indices.len() {
                return ImplicationOutcome::Implied;
            }
            indices[k] += 1;
            if indices[k] < domains[k].len() {
                break;
            }
            indices[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn schema() -> Schema {
        Schema::new("T", ["country", "capital", "city"]).unwrap()
    }

    #[test]
    fn narrower_rule_is_implied() {
        // φ with a subset of an existing rule's negative patterns and the
        // same fact adds nothing.
        let s = schema();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s.clone());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        let narrower = FixingRule::from_named(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        )
        .unwrap();
        assert_eq!(
            implies(&rs, &narrower, 1 << 20),
            ImplicationOutcome::Implied
        );
    }

    #[test]
    fn broader_rule_is_not_implied() {
        // φ covering a new negative pattern (Nanjing) repairs tuples Σ does
        // not touch.
        let s = schema();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s.clone());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        )
        .unwrap();
        let broader = FixingRule::from_named(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Nanjing"],
            "Beijing",
        )
        .unwrap();
        match implies(&rs, &broader, 1 << 20) {
            ImplicationOutcome::NotImplied { witness } => {
                // Witness must be a (China, Nanjing, _) tuple.
                assert_eq!(witness[0], sy.get("China").unwrap());
                assert_eq!(witness[1], sy.get("Nanjing").unwrap());
            }
            other => panic!("expected NotImplied, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_extension_detected() {
        let s = schema();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s.clone());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        )
        .unwrap();
        let conflicting = FixingRule::from_named(
            &s,
            &mut sy,
            &[("city", "Pudong")],
            "capital",
            &["Shanghai"],
            "Nanjing",
        )
        .unwrap();
        assert_eq!(
            implies(&rs, &conflicting, 1 << 20),
            ImplicationOutcome::ExtensionInconsistent
        );
    }

    #[test]
    fn duplicate_rule_is_implied() {
        let s = schema();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s.clone());
        rs.push_named(
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        let dup = rs.rule(crate::ruleset::RuleId(0)).clone();
        assert_eq!(implies(&rs, &dup, 1 << 20), ImplicationOutcome::Implied);
    }

    #[test]
    fn budget_is_respected() {
        let s = schema();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s.clone());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        let phi = FixingRule::from_named(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        )
        .unwrap();
        match implies(&rs, &phi, 1) {
            ImplicationOutcome::Unknown { candidates } => assert!(candidates > 1),
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn budget_boundary_is_exact() {
        // A budget of exactly the model size decides; one less is Unknown.
        let s = schema();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s.clone());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        let phi = FixingRule::from_named(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        )
        .unwrap();
        let size = model_size(&rs, &phi);
        // country {China, _} × capital {Shanghai, Hongkong, Beijing, _} × city {_}.
        assert_eq!(size, 8);
        assert_eq!(implies(&rs, &phi, size), ImplicationOutcome::Implied);
        assert_eq!(
            implies(&rs, &phi, size - 1),
            ImplicationOutcome::Unknown { candidates: size }
        );
    }

    #[test]
    fn unknown_is_not_a_refutation() {
        // The same φ that is NotImplied with enough budget must come back
        // Unknown — not NotImplied — when the budget is too small.
        let s = schema();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s.clone());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        )
        .unwrap();
        let broader = FixingRule::from_named(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Nanjing"],
            "Beijing",
        )
        .unwrap();
        let size = model_size(&rs, &broader);
        assert!(matches!(
            implies(&rs, &broader, size),
            ImplicationOutcome::NotImplied { .. }
        ));
        assert_eq!(
            implies(&rs, &broader, size - 1),
            ImplicationOutcome::Unknown { candidates: size }
        );
    }

    #[test]
    fn cascade_composition_is_implied() {
        // Σ contains A-fix then B-fix chained; φ performing the second hop
        // directly on the already-correct evidence is implied.
        let s = schema();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s.clone());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        )
        .unwrap();
        rs.push_named(
            &mut sy,
            &[("capital", "Beijing")],
            "city",
            &["Hongkong"],
            "Shanghai",
        )
        .unwrap();
        // φ: same second hop with the same semantics, narrower trigger.
        let phi = FixingRule::from_named(
            &s,
            &mut sy,
            &[("country", "China"), ("capital", "Beijing")],
            "city",
            &["Hongkong"],
            "Shanghai",
        )
        .unwrap();
        assert_eq!(implies(&rs, &phi, 1 << 20), ImplicationOutcome::Implied);
    }
}
