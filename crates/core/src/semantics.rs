//! Repairing semantics (§3.2): matching, proper application, fixes, and the
//! all-orders chase used by the decision procedures.

use std::collections::BTreeSet;

use relation::{AttrId, AttrSet, Symbol};

use crate::rule::FixingRule;
use crate::ruleset::RuleSet;

/// `t ⊢ φ`: the tuple matches the rule — `t[X] = tp[X]` and `t[B] ∈ Tp[B]`.
#[inline]
pub fn matches(rule: &FixingRule, row: &[Symbol]) -> bool {
    rule.x()
        .iter()
        .zip(rule.tp().iter())
        .all(|(&a, &v)| row[a.index()] == v)
        && rule.neg_contains(row[rule.b().index()])
}

/// The evidence cells `(A, tp[A])` for `A ∈ X` that a tuple must exhibit
/// for `rule` to match. Because matching requires `t[X] = tp[X]` exactly,
/// these bindings *are* the tuple's evidence cells at application time —
/// which is what makes a recorded rule application replayable (the
/// provenance ledger stores them per fix).
pub fn evidence_bindings(rule: &FixingRule) -> Vec<(AttrId, Symbol)> {
    rule.x()
        .iter()
        .copied()
        .zip(rule.tp().iter().copied())
        .collect()
}

/// `t →(A,φ) t'`: the rule is *properly applicable* w.r.t. the assured set —
/// it matches and `B ∉ A` (assured attributes are immutable).
#[inline]
pub fn properly_applicable(rule: &FixingRule, row: &[Symbol], assured: AttrSet) -> bool {
    !assured.contains(rule.b()) && matches(rule, row)
}

/// Apply a rule: set `t[B] := tp+[B]` and extend the assured set with
/// `X ∪ {B}`. Caller must have checked [`properly_applicable`].
#[inline]
pub fn apply(rule: &FixingRule, row: &mut [Symbol], assured: &mut AttrSet) {
    row[rule.b().index()] = rule.fact();
    assured.union_with(rule.assured_delta());
}

/// Is `row` a fixpoint of `rules` w.r.t. `assured` — i.e. no rule is
/// properly applicable (condition (2) of the fix definition)?
pub fn is_fixpoint<'a, I>(rules: I, row: &[Symbol], assured: AttrSet) -> bool
where
    I: IntoIterator<Item = &'a FixingRule>,
{
    rules
        .into_iter()
        .all(|r| !properly_applicable(r, row, assured))
}

/// Compute **all** fixes of `row` reachable by any order of proper rule
/// applications — the decision-procedure chase behind consistency
/// (`isConsist_t`), implication, and the Church–Rosser property tests.
///
/// Termination: each application adds `B ∉ A` to the assured set, which
/// grows strictly up to `|R|` (§4.1), so the DFS depth is bounded by the
/// arity and the search is finite.
///
/// For production repairing use [`crate::repair`] — this routine is
/// exponential in the worst case and intended for small rule subsets
/// (pairs, in the consistency check) or small schemas.
pub fn all_fixes(rules: &[&FixingRule], row: &[Symbol]) -> BTreeSet<Vec<Symbol>> {
    let mut out = BTreeSet::new();
    let mut work = row.to_vec();
    // Rules applied so far along the current DFS path: a rule can be
    // properly applied at most once per sequence (its B becomes assured),
    // but tracking used rules explicitly lets us skip re-checking.
    let mut used = vec![false; rules.len()];
    dfs(rules, &mut work, AttrSet::EMPTY, &mut used, &mut out);
    out
}

fn dfs(
    rules: &[&FixingRule],
    row: &mut Vec<Symbol>,
    assured: AttrSet,
    used: &mut Vec<bool>,
    out: &mut BTreeSet<Vec<Symbol>>,
) {
    let mut progressed = false;
    for i in 0..rules.len() {
        if used[i] || !properly_applicable(rules[i], row, assured) {
            continue;
        }
        progressed = true;
        let b_idx = rules[i].b().index();
        let saved = row[b_idx];
        let mut next_assured = assured;
        row[b_idx] = rules[i].fact();
        next_assured.union_with(rules[i].assured_delta());
        used[i] = true;
        dfs(rules, row, next_assured, used, out);
        used[i] = false;
        row[b_idx] = saved;
    }
    if !progressed {
        out.insert(row.clone());
    }
}

/// Compute one fix of `row` under `rules` (first-applicable order) together
/// with the application count. Used by tests and the implication checker;
/// for a consistent Σ the result equals every other order's result.
pub fn fix_first_order(rules: &RuleSet, row: &[Symbol]) -> (Vec<Symbol>, usize) {
    let mut work = row.to_vec();
    let mut assured = AttrSet::EMPTY;
    let mut applied = 0;
    let mut used = vec![false; rules.len()];
    loop {
        let mut progressed = false;
        for (i, rule) in rules.rules().iter().enumerate() {
            if used[i] || !properly_applicable(rule, &work, assured) {
                continue;
            }
            apply(rule, &mut work, &mut assured);
            used[i] = true;
            applied += 1;
            progressed = true;
        }
        if !progressed {
            return (work, applied);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    fn row(sy: &mut SymbolTable, vals: [&str; 5]) -> Vec<Symbol> {
        vals.iter().map(|v| sy.intern(v)).collect()
    }

    fn phi1(schema: &Schema, sy: &mut SymbolTable) -> FixingRule {
        FixingRule::from_named(
            schema,
            sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap()
    }

    /// φ'1 from Example 8: negative patterns extended with Tokyo.
    fn phi1_prime(schema: &Schema, sy: &mut SymbolTable) -> FixingRule {
        FixingRule::from_named(
            schema,
            sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong", "Tokyo"],
            "Beijing",
        )
        .unwrap()
    }

    /// φ3 from Example 8.
    fn phi3(schema: &Schema, sy: &mut SymbolTable) -> FixingRule {
        FixingRule::from_named(
            schema,
            sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap()
    }

    #[test]
    fn matching_follows_example_3() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let rule = phi1(&schema, &mut sy);
        // r1 does not match: capital = Beijing not in negatives.
        let r1 = row(&mut sy, ["George", "China", "Beijing", "Beijing", "SIGMOD"]);
        assert!(!matches(&rule, &r1));
        // r2 matches: China + Shanghai.
        let r2 = row(&mut sy, ["Ian", "China", "Shanghai", "Hongkong", "ICDE"]);
        assert!(matches(&rule, &r2));
    }

    #[test]
    fn apply_updates_b_and_assures_x_b() {
        // Examples 5 & 6: applying φ1 to r2 yields capital=Beijing and
        // assured = {country, capital}.
        let schema = schema();
        let mut sy = SymbolTable::new();
        let rule = phi1(&schema, &mut sy);
        let mut r2 = row(&mut sy, ["Ian", "China", "Shanghai", "Hongkong", "ICDE"]);
        let mut assured = AttrSet::EMPTY;
        assert!(properly_applicable(&rule, &r2, assured));
        apply(&rule, &mut r2, &mut assured);
        assert_eq!(sy.resolve(r2[2]), "Beijing");
        assert_eq!(assured.len(), 2);
        assert!(assured.contains(schema.attr("country").unwrap()));
        assert!(assured.contains(schema.attr("capital").unwrap()));
    }

    #[test]
    fn assured_b_blocks_application() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let rule = phi1(&schema, &mut sy);
        let r2 = row(&mut sy, ["Ian", "China", "Shanghai", "Hongkong", "ICDE"]);
        let assured = AttrSet::singleton(schema.attr("capital").unwrap());
        assert!(matches(&rule, &r2));
        assert!(!properly_applicable(&rule, &r2, assured));
    }

    #[test]
    fn fixpoint_detection() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let rule = phi1(&schema, &mut sy);
        let clean = row(&mut sy, ["George", "China", "Beijing", "Beijing", "SIGMOD"]);
        assert!(is_fixpoint([&rule], &clean, AttrSet::EMPTY));
        let dirty = row(&mut sy, ["Ian", "China", "Shanghai", "Hongkong", "ICDE"]);
        assert!(!is_fixpoint([&rule], &dirty, AttrSet::EMPTY));
    }

    #[test]
    fn example_7_unique_fix() {
        // r2 has a unique fix under {φ1, φ2}.
        let schema = schema();
        let mut sy = SymbolTable::new();
        let p1 = phi1(&schema, &mut sy);
        let p2 = FixingRule::from_named(
            &schema,
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        let r2 = row(&mut sy, ["Ian", "China", "Shanghai", "Hongkong", "ICDE"]);
        let fixes = all_fixes(&[&p1, &p2], &r2);
        assert_eq!(fixes.len(), 1);
        let fixed = fixes.into_iter().next().unwrap();
        assert_eq!(sy.resolve(fixed[2]), "Beijing");
    }

    #[test]
    fn example_8_two_distinct_fixes() {
        // r3 = (Peter, China, Tokyo, Tokyo, ICDE) under {φ'1, φ3} reaches
        // two different fixpoints — the paper's inconsistency witness.
        let schema = schema();
        let mut sy = SymbolTable::new();
        let p1p = phi1_prime(&schema, &mut sy);
        let p3 = phi3(&schema, &mut sy);
        let r3 = row(&mut sy, ["Peter", "China", "Tokyo", "Tokyo", "ICDE"]);
        let fixes = all_fixes(&[&p1p, &p3], &r3);
        assert_eq!(fixes.len(), 2);
        let rendered: Vec<Vec<&str>> = fixes
            .iter()
            .map(|f| f.iter().map(|&s| sy.resolve(s)).collect())
            .collect();
        assert!(rendered.contains(&vec!["Peter", "China", "Beijing", "Tokyo", "ICDE"]));
        assert!(rendered.contains(&vec!["Peter", "Japan", "Tokyo", "Tokyo", "ICDE"]));
    }

    #[test]
    fn chase_terminates_within_arity_applications() {
        // §4.1: the number of proper applications is bounded by |R|.
        let schema = schema();
        let mut sy = SymbolTable::new();
        let mut rules = RuleSet::new(schema.clone());
        rules
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Shanghai"],
                "Beijing",
            )
            .unwrap();
        rules
            .push_named(
                &mut sy,
                &[("capital", "Beijing")],
                "city",
                &["Hongkong"],
                "Shanghai",
            )
            .unwrap();
        let r = row(&mut sy, ["Ian", "China", "Shanghai", "Hongkong", "ICDE"]);
        let (fixed, applied) = fix_first_order(&rules, &r);
        assert!(applied <= schema.arity());
        assert_eq!(applied, 2);
        assert_eq!(sy.resolve(fixed[3]), "Shanghai");
    }

    #[test]
    fn cascading_rules_fire_in_sequence() {
        // φ4-style cascade from Fig 8: repairing capital enables the city
        // rule.
        let schema = schema();
        let mut sy = SymbolTable::new();
        let p1 = phi1(&schema, &mut sy);
        let p4 = FixingRule::from_named(
            &schema,
            &mut sy,
            &[("capital", "Beijing"), ("conf", "ICDE")],
            "city",
            &["Hongkong"],
            "Shanghai",
        )
        .unwrap();
        let r2 = row(&mut sy, ["Ian", "China", "Shanghai", "Hongkong", "ICDE"]);
        let fixes = all_fixes(&[&p1, &p4], &r2);
        assert_eq!(fixes.len(), 1);
        let f = fixes.into_iter().next().unwrap();
        assert_eq!(sy.resolve(f[2]), "Beijing");
        assert_eq!(sy.resolve(f[3]), "Shanghai");
    }
}
