//! # fixrules — dependable data repairing with fixing rules
//!
//! A faithful implementation of *"Towards Dependable Data Repairing with
//! Fixing Rules"* (Wang & Tang, SIGMOD 2014).
//!
//! A **fixing rule** `φ : ((X, tp[X]), (B, Tp[B])) → tp+[B]` combines
//!
//! * an **evidence pattern** `tp[X]` — constants over attributes `X` that,
//!   when matched, are taken as correct;
//! * **negative patterns** `Tp[B]` — values of attribute `B` known to be
//!   wrong given that evidence;
//! * a **fact** `tp+[B]` — the correct value of `B` given that evidence.
//!
//! A tuple *matches* the rule when `t[X] = tp[X]` and `t[B] ∈ Tp[B]`;
//! applying the rule deterministically sets `t[B] := tp+[B]` and marks
//! `X ∪ {B}` as *assured* (immutable for the rest of the repair).
//!
//! The crate provides:
//!
//! * [`FixingRule`] / [`RuleSet`] — validated rule construction
//!   ([`rule`], [`ruleset`]);
//! * the repairing semantics, chase, and unique-fix machinery
//!   ([`semantics`]);
//! * consistency checking, by rule characterization (`isConsist_r`, Fig 4)
//!   and by tuple enumeration (`isConsist_t`, §5.2.1), plus conflict
//!   resolution strategies ([`consistency`]);
//! * the implication test for fixed schemas (§4.3) ([`implication`]);
//! * the two repair algorithms: chase-based `cRepair` (Fig 6) and linear
//!   `lRepair` with inverted lists and hash counters (Fig 7), plus a
//!   parallel table driver ([`repair`]);
//! * per-cell repair provenance: a replayable ledger of rule applications
//!   with their evidence bindings, feeding `fixctl explain`
//!   ([`provenance`]);
//! * rule generation from FD violations with negative-pattern enrichment
//!   (§7.1) ([`generation`]);
//! * the paper's §8 future work: automatic rule discovery from dirty data
//!   alone ([`discovery`]) and interoperation with constant CFDs
//!   ([`bridge`]);
//! * rule serialization — a human-editable line format and a portable
//!   JSON document ([`io`]).
//!
//! # Example: the paper's running example (Fig 1–3)
//!
//! ```
//! use relation::{Schema, SymbolTable, Table};
//! use fixrules::{RuleSet, repair::{lrepair_table, LRepairIndex}};
//!
//! let schema = Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap();
//! let mut sy = SymbolTable::new();
//!
//! let mut rules = RuleSet::new(schema.clone());
//! // φ1: country = China, capital ∈ {Shanghai, Hongkong} → capital := Beijing
//! rules.push_named(&mut sy, &[("country", "China")], "capital",
//!                  &["Shanghai", "Hongkong"], "Beijing").unwrap();
//! // φ2: country = Canada, capital ∈ {Toronto} → capital := Ottawa
//! rules.push_named(&mut sy, &[("country", "Canada")], "capital",
//!                  &["Toronto"], "Ottawa").unwrap();
//! assert!(rules.check_consistency().is_consistent());
//!
//! let mut table = Table::new(schema.clone());
//! table.push_strs(&mut sy, &["Ian", "China", "Shanghai", "Hongkong", "ICDE"]).unwrap();
//! let index = LRepairIndex::build(&rules);
//! let outcome = lrepair_table(&rules, &index, &mut table);
//! assert_eq!(outcome.total_updates(), 1);
//! let capital = schema.attr("capital").unwrap();
//! assert_eq!(sy.resolve(table.cell(0, capital)), "Beijing");
//! ```

#![warn(missing_docs)]

pub mod bridge;
pub mod consistency;
pub mod discovery;
pub mod generation;
pub mod implication;
pub mod io;
pub mod provenance;
pub mod repair;
pub mod rule;
pub mod ruleset;
pub mod semantics;

pub use consistency::{Conflict, ConsistencyReport};
pub use provenance::{ProvenanceLedger, ProvenanceObserver, ProvenanceRecord};
pub use rule::{FixRuleError, FixingRule};
pub use ruleset::{RuleId, RuleSet};
