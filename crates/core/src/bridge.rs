//! Interoperating with other data-quality rule classes — the paper's
//! future-work item §8(2): *"explore the interaction between fixing rules
//! and other data quality rules, such as CFDs, MDs, editing rules"*.
//!
//! Two directions are implemented:
//!
//! * **Constant CFD → fixing rule** ([`from_cfd`]): a constant CFD
//!   `(X = tp → B = c)` asserts what `B` *should* be but carries no error
//!   evidence — applying it blindly is exactly the automated-editing-rule
//!   failure mode of Fig 12(b). Supplying the missing negative patterns
//!   (known-wrong values of `B` under that evidence) upgrades it into a
//!   fixing rule with the paper's dependable semantics.
//! * **Fixing rule → constant CFD** ([`to_cfd`]): dropping the negative
//!   patterns and keeping `(X = tp → B = fact)` yields the CFD that the
//!   rule *implies* for detection purposes — useful for exporting a rule
//!   set to CFD-based tools, which can detect (but not repair) the same
//!   errors.

use fd::cfd::{Cfd, PatternCell};
use relation::Symbol;

use crate::rule::{FixRuleError, FixingRule};

/// Upgrade a constant CFD into a fixing rule by supplying the negative
/// patterns that license automatic repair.
///
/// Fails when the CFD is not fully constant (wildcards carry no evidence),
/// or when the resulting rule is ill-formed (e.g. the CFD's RHS constant
/// appears among `negatives`).
pub fn from_cfd(cfd: &Cfd, negatives: Vec<Symbol>) -> Result<FixingRule, FixRuleError> {
    let mut evidence = Vec::with_capacity(cfd.lhs.len());
    for &(attr, cell) in &cfd.lhs {
        match cell {
            PatternCell::Const(v) => evidence.push((attr, v)),
            PatternCell::Wildcard => {
                return Err(FixRuleError::UnknownAttribute(format!(
                    "CFD has a wildcard on {attr}; only constant CFDs carry evidence"
                )))
            }
        }
    }
    let fact = match cfd.rhs_pattern {
        PatternCell::Const(v) => v,
        PatternCell::Wildcard => {
            return Err(FixRuleError::UnknownAttribute(
                "CFD has a wildcard RHS; no fact to repair towards".into(),
            ))
        }
    };
    FixingRule::new(evidence, cfd.rhs_attr, negatives, fact)
}

/// Project a fixing rule down to the constant CFD it implies: tuples
/// matching the evidence must carry the fact on `B`.
///
/// The negative patterns are lost — the CFD can only *detect* that
/// something matching the evidence disagrees with the fact, not certify
/// which side is wrong.
pub fn to_cfd(rule: &FixingRule) -> Cfd {
    Cfd {
        lhs: rule
            .x()
            .iter()
            .zip(rule.tp().iter())
            .map(|(&a, &v)| (a, PatternCell::Const(v)))
            .collect(),
        rhs_attr: rule.b(),
        rhs_pattern: PatternCell::Const(rule.fact()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable, Table};

    fn setup() -> (Schema, SymbolTable) {
        (
            Schema::new("T", ["country", "capital"]).unwrap(),
            SymbolTable::new(),
        )
    }

    #[test]
    fn cfd_round_trips_through_fixing_rule() {
        let (s, mut sy) = setup();
        let cfd = Cfd {
            lhs: vec![(
                s.attr("country").unwrap(),
                PatternCell::Const(sy.intern("China")),
            )],
            rhs_attr: s.attr("capital").unwrap(),
            rhs_pattern: PatternCell::Const(sy.intern("Beijing")),
        };
        let negs = vec![sy.intern("Shanghai"), sy.intern("Hongkong")];
        let rule = from_cfd(&cfd, negs).unwrap();
        assert_eq!(rule.fact(), sy.get("Beijing").unwrap());
        assert_eq!(rule.neg().len(), 2);
        let back = to_cfd(&rule);
        assert_eq!(back.rhs_attr, cfd.rhs_attr);
        assert_eq!(back.lhs, cfd.lhs);
        assert_eq!(back.rhs_pattern, cfd.rhs_pattern);
    }

    #[test]
    fn wildcard_cfds_are_rejected() {
        let (s, mut sy) = setup();
        let wild_lhs = Cfd {
            lhs: vec![(s.attr("country").unwrap(), PatternCell::Wildcard)],
            rhs_attr: s.attr("capital").unwrap(),
            rhs_pattern: PatternCell::Const(sy.intern("Beijing")),
        };
        assert!(from_cfd(&wild_lhs, vec![sy.intern("x")]).is_err());
        let wild_rhs = Cfd {
            lhs: vec![(
                s.attr("country").unwrap(),
                PatternCell::Const(sy.intern("China")),
            )],
            rhs_attr: s.attr("capital").unwrap(),
            rhs_pattern: PatternCell::Wildcard,
        };
        assert!(from_cfd(&wild_rhs, vec![sy.intern("x")]).is_err());
    }

    #[test]
    fn fact_among_negatives_is_rejected() {
        let (s, mut sy) = setup();
        let cfd = Cfd {
            lhs: vec![(
                s.attr("country").unwrap(),
                PatternCell::Const(sy.intern("China")),
            )],
            rhs_attr: s.attr("capital").unwrap(),
            rhs_pattern: PatternCell::Const(sy.intern("Beijing")),
        };
        let err = from_cfd(&cfd, vec![sy.intern("Beijing")]).unwrap_err();
        assert!(matches!(err, FixRuleError::FactInNegativePatterns(_)));
    }

    #[test]
    fn exported_cfd_detects_what_the_rule_repairs_and_more() {
        // The CFD flags every evidence-matching row whose capital is not
        // the fact; the fixing rule repairs only the certified-wrong
        // subset — the conservatism gap in one test.
        let (s, mut sy) = setup();
        let rule = FixingRule::from_named(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        )
        .unwrap();
        let cfd = to_cfd(&rule);
        let mut t = Table::new(s.clone());
        t.push_strs(&mut sy, &["China", "Shanghai"]).unwrap(); // in Tp: repairable
        t.push_strs(&mut sy, &["China", "Tokyo"]).unwrap(); // ambiguous: only detectable
        t.push_strs(&mut sy, &["China", "Beijing"]).unwrap(); // clean
        assert_eq!(cfd.violating_rows(&t), vec![0, 1]);
        let mut rules = crate::RuleSet::new(s);
        rules.push(rule);
        let outcome = crate::repair::crepair_table(&rules, &mut t);
        assert_eq!(outcome.total_updates(), 1);
        assert_eq!(outcome.updates[0].row, 0);
    }
}
