//! The [`FixingRule`] type: syntax and validation (Definition 3.1).

use std::fmt;

use relation::{AttrId, AttrSet, Schema, Symbol, SymbolTable};

/// Errors raised while constructing a fixing rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixRuleError {
    /// `X` was empty — a rule needs at least one evidence attribute.
    EmptyEvidence,
    /// `Tp[B]` was empty — a rule with no negative patterns can never fire.
    EmptyNegativePatterns,
    /// `B ∈ X`, violating condition (1) of Definition 3.1.
    BInEvidence(String),
    /// `tp+[B] ∈ Tp[B]`, violating condition (4): the fact must differ from
    /// every known-wrong value.
    FactInNegativePatterns(String),
    /// The same attribute was listed twice in `X`.
    DuplicateEvidenceAttr(String),
    /// Evidence attributes and constants had different lengths.
    EvidenceArityMismatch {
        /// Number of attributes supplied.
        attrs: usize,
        /// Number of constants supplied.
        consts: usize,
    },
    /// An attribute name was not part of the schema.
    UnknownAttribute(String),
}

impl fmt::Display for FixRuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixRuleError::EmptyEvidence => {
                write!(f, "fixing rule must have a non-empty evidence pattern")
            }
            FixRuleError::EmptyNegativePatterns => {
                write!(f, "fixing rule must have at least one negative pattern")
            }
            FixRuleError::BInEvidence(a) => {
                write!(
                    f,
                    "attribute `{a}` cannot be both evidence and the repaired attribute B"
                )
            }
            FixRuleError::FactInNegativePatterns(v) => {
                write!(f, "fact `{v}` appears among the negative patterns")
            }
            FixRuleError::DuplicateEvidenceAttr(a) => {
                write!(f, "attribute `{a}` listed twice in the evidence pattern")
            }
            FixRuleError::EvidenceArityMismatch { attrs, consts } => {
                write!(f, "evidence has {attrs} attributes but {consts} constants")
            }
            FixRuleError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
        }
    }
}

impl std::error::Error for FixRuleError {}

/// A fixing rule `φ : ((X, tp[X]), (B, Tp[B])) → tp+[B]`.
///
/// Invariants enforced at construction:
///
/// 1. `X ≠ ∅` and `B ∉ X`;
/// 2. one constant per evidence attribute;
/// 3. `Tp[B] ≠ ∅` (a rule with no negative patterns can never match);
/// 4. `tp+[B] ∉ Tp[B]`.
///
/// Evidence attributes are stored sorted by [`AttrId`] and negative patterns
/// sorted by [`Symbol`], giving deterministic display and `O(log n)`
/// negative-pattern membership via binary search (the sets are tiny — the
/// hosp workload has mostly 2 patterns per rule, Fig 11a — so a sorted vec
/// beats a hash set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixingRule {
    x: Vec<AttrId>,
    tp: Vec<Symbol>,
    x_set: AttrSet,
    b: AttrId,
    neg: Vec<Symbol>,
    fact: Symbol,
}

impl FixingRule {
    /// Build a rule from raw parts.
    ///
    /// `evidence` pairs each attribute with its constant; `neg` lists the
    /// negative patterns of `b`; `fact` is `tp+[B]`.
    pub fn new(
        evidence: Vec<(AttrId, Symbol)>,
        b: AttrId,
        mut neg: Vec<Symbol>,
        fact: Symbol,
    ) -> Result<Self, FixRuleError> {
        if evidence.is_empty() {
            return Err(FixRuleError::EmptyEvidence);
        }
        if neg.is_empty() {
            return Err(FixRuleError::EmptyNegativePatterns);
        }
        let mut evidence = evidence;
        evidence.sort_by_key(|&(a, _)| a);
        let mut x_set = AttrSet::new();
        for &(a, _) in &evidence {
            if !x_set.insert(a) {
                return Err(FixRuleError::DuplicateEvidenceAttr(format!("{a}")));
            }
        }
        if x_set.contains(b) {
            return Err(FixRuleError::BInEvidence(format!("{b}")));
        }
        neg.sort();
        neg.dedup();
        if neg.binary_search(&fact).is_ok() {
            return Err(FixRuleError::FactInNegativePatterns(format!("{fact}")));
        }
        let (x, tp) = evidence.into_iter().unzip();
        Ok(FixingRule {
            x,
            tp,
            x_set,
            b,
            neg,
            fact,
        })
    }

    /// Build a rule from attribute names and string values, interning into
    /// `symbols`.
    pub fn from_named(
        schema: &Schema,
        symbols: &mut SymbolTable,
        evidence: &[(&str, &str)],
        b: &str,
        neg: &[&str],
        fact: &str,
    ) -> Result<Self, FixRuleError> {
        let mut ev = Vec::with_capacity(evidence.len());
        for &(attr, value) in evidence {
            let a = schema
                .attr(attr)
                .ok_or_else(|| FixRuleError::UnknownAttribute(attr.to_string()))?;
            ev.push((a, symbols.intern(value)));
        }
        let b = schema
            .attr(b)
            .ok_or_else(|| FixRuleError::UnknownAttribute(b.to_string()))?;
        let neg = neg.iter().map(|v| symbols.intern(v)).collect();
        let fact = symbols.intern(fact);
        FixingRule::new(ev, b, neg, fact)
    }

    /// Evidence attributes `X`, sorted by id.
    #[inline]
    pub fn x(&self) -> &[AttrId] {
        &self.x
    }

    /// Evidence constants `tp[X]`, aligned with [`FixingRule::x`].
    #[inline]
    pub fn tp(&self) -> &[Symbol] {
        &self.tp
    }

    /// Evidence attributes as a bitset.
    #[inline]
    pub fn x_set(&self) -> AttrSet {
        self.x_set
    }

    /// The repaired attribute `B`.
    #[inline]
    pub fn b(&self) -> AttrId {
        self.b
    }

    /// Negative patterns `Tp[B]`, sorted.
    #[inline]
    pub fn neg(&self) -> &[Symbol] {
        &self.neg
    }

    /// The fact `tp+[B]`.
    #[inline]
    pub fn fact(&self) -> Symbol {
        self.fact
    }

    /// `X ∪ {B}` — the attributes marked assured when the rule is applied.
    #[inline]
    pub fn assured_delta(&self) -> AttrSet {
        let mut s = self.x_set;
        s.insert(self.b);
        s
    }

    /// The evidence constant for attribute `a`, if `a ∈ X`.
    pub fn evidence_value(&self, a: AttrId) -> Option<Symbol> {
        self.x.binary_search(&a).ok().map(|i| self.tp[i])
    }

    /// True when `v ∈ Tp[B]`.
    #[inline]
    pub fn neg_contains(&self, v: Symbol) -> bool {
        self.neg.binary_search(&v).is_ok()
    }

    /// Number of pattern cells (`|X| + |Tp[B]| + 1`); `size(Σ)` in the
    /// paper's complexity bounds is the sum of this over the rule set.
    pub fn size(&self) -> usize {
        self.x.len() + self.neg.len() + 1
    }

    /// Rebuild the rule with additional negative patterns (the §7.1
    /// enrichment move). Values equal to the fact are skipped rather than
    /// erroring, since enrichment pools are fact-agnostic.
    pub fn with_extra_negatives(&self, extra: &[Symbol]) -> Self {
        let mut neg = self.neg.clone();
        neg.extend(extra.iter().copied().filter(|&v| v != self.fact));
        let evidence: Vec<(AttrId, Symbol)> = self
            .x
            .iter()
            .copied()
            .zip(self.tp.iter().copied())
            .collect();
        FixingRule::new(evidence, self.b, neg, self.fact)
            .expect("rebuilding a valid rule with filtered negatives cannot fail")
    }

    /// Rebuild the rule keeping only the first `n` negative patterns (at
    /// least one). Since every inconsistency condition of Fig 4 requires
    /// membership in `Tp[B]`, capping negatives preserves consistency of
    /// any rule set — used by the Fig 11(b) total-negative-patterns sweep.
    pub fn with_capped_negatives(&self, n: usize) -> Self {
        let mut capped = self.clone();
        capped.neg.truncate(n.max(1));
        capped
    }

    /// Remove one negative pattern (the §5.3 expert resolution move).
    /// Returns false (and leaves the rule unchanged) if removing it would
    /// leave `Tp[B]` empty or the value was absent.
    pub fn remove_negative_pattern(&mut self, v: Symbol) -> bool {
        if self.neg.len() <= 1 {
            return false;
        }
        match self.neg.binary_search(&v) {
            Ok(i) => {
                self.neg.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Render using attribute names and resolved values, in the paper's
    /// notation.
    pub fn display(&self, schema: &Schema, symbols: &SymbolTable) -> String {
        let ev_attrs = self
            .x
            .iter()
            .map(|&a| schema.attr_name(a))
            .collect::<Vec<_>>()
            .join(", ");
        let ev_vals = self
            .tp
            .iter()
            .map(|&s| symbols.resolve(s))
            .collect::<Vec<_>>()
            .join(", ");
        let negs = self
            .neg
            .iter()
            .map(|&s| symbols.resolve(s))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "((([{ev_attrs}], [{ev_vals}]), ({}, {{{negs}}})) -> {})",
            schema.attr_name(self.b),
            symbols.resolve(self.fact)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    fn phi1(schema: &Schema, sy: &mut SymbolTable) -> FixingRule {
        FixingRule::from_named(
            schema,
            sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap()
    }

    #[test]
    fn builds_phi1() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let r = phi1(&schema, &mut sy);
        assert_eq!(r.x(), &[schema.attr("country").unwrap()]);
        assert_eq!(r.b(), schema.attr("capital").unwrap());
        assert_eq!(r.neg().len(), 2);
        assert_eq!(sy.resolve(r.fact()), "Beijing");
        assert_eq!(r.size(), 4);
    }

    #[test]
    fn empty_evidence_rejected() {
        let mut sy = SymbolTable::new();
        let s = sy.intern("x");
        let err = FixingRule::new(vec![], AttrId(0), vec![s], s).unwrap_err();
        assert_eq!(err, FixRuleError::EmptyEvidence);
    }

    #[test]
    fn empty_negatives_rejected() {
        let mut sy = SymbolTable::new();
        let v = sy.intern("x");
        let err = FixingRule::new(vec![(AttrId(0), v)], AttrId(1), vec![], v).unwrap_err();
        assert_eq!(err, FixRuleError::EmptyNegativePatterns);
    }

    #[test]
    fn b_in_x_rejected() {
        let mut sy = SymbolTable::new();
        let v = sy.intern("x");
        let w = sy.intern("y");
        let err = FixingRule::new(vec![(AttrId(0), v)], AttrId(0), vec![v], w).unwrap_err();
        assert!(matches!(err, FixRuleError::BInEvidence(_)));
    }

    #[test]
    fn fact_in_negatives_rejected() {
        // Condition (4): Beijing cannot be both the fact and a negative.
        let schema = schema();
        let mut sy = SymbolTable::new();
        let err = FixingRule::from_named(
            &schema,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Beijing", "Shanghai"],
            "Beijing",
        )
        .unwrap_err();
        assert!(matches!(err, FixRuleError::FactInNegativePatterns(_)));
    }

    #[test]
    fn duplicate_evidence_attr_rejected() {
        let mut sy = SymbolTable::new();
        let v = sy.intern("a");
        let err = FixingRule::new(
            vec![(AttrId(0), v), (AttrId(0), v)],
            AttrId(1),
            vec![v],
            sy.intern("b"),
        )
        .unwrap_err();
        assert!(matches!(err, FixRuleError::DuplicateEvidenceAttr(_)));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let err = FixingRule::from_named(
            &schema,
            &mut sy,
            &[("kountry", "China")],
            "capital",
            &["x"],
            "y",
        )
        .unwrap_err();
        assert_eq!(err, FixRuleError::UnknownAttribute("kountry".into()));
    }

    #[test]
    fn negative_patterns_deduped_and_sorted() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let r = FixingRule::from_named(
            &schema,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong", "Shanghai"],
            "Beijing",
        )
        .unwrap();
        assert_eq!(r.neg().len(), 2);
        assert!(r.neg().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn neg_contains_and_evidence_value() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let r = phi1(&schema, &mut sy);
        assert!(r.neg_contains(sy.get("Shanghai").unwrap()));
        assert!(!r.neg_contains(sy.get("Beijing").unwrap()));
        assert_eq!(
            r.evidence_value(schema.attr("country").unwrap()),
            Some(sy.get("China").unwrap())
        );
        assert_eq!(r.evidence_value(schema.attr("city").unwrap()), None);
    }

    #[test]
    fn remove_negative_pattern_keeps_rule_nonempty() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let mut r = phi1(&schema, &mut sy);
        let hk = sy.get("Hongkong").unwrap();
        let sh = sy.get("Shanghai").unwrap();
        assert!(r.remove_negative_pattern(hk));
        assert_eq!(r.neg().len(), 1);
        // Refuses to empty the set.
        assert!(!r.remove_negative_pattern(sh));
        assert_eq!(r.neg().len(), 1);
    }

    #[test]
    fn display_matches_paper_notation() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let r = phi1(&schema, &mut sy);
        let d = r.display(&schema, &sy);
        assert!(d.contains("[country], [China]"), "{d}");
        // Negative patterns are sorted by symbol id (interning order), so
        // just check both values are listed.
        assert!(d.contains("Hongkong") && d.contains("Shanghai"), "{d}");
        assert!(d.ends_with("-> Beijing)"), "{d}");
    }

    #[test]
    fn assured_delta_is_x_union_b() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let r = phi1(&schema, &mut sy);
        let delta = r.assured_delta();
        assert!(delta.contains(schema.attr("country").unwrap()));
        assert!(delta.contains(schema.attr("capital").unwrap()));
        assert_eq!(delta.len(), 2);
    }

    #[test]
    fn evidence_sorted_by_attr_id() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        // Supply evidence out of order; constructor must sort.
        let r = FixingRule::from_named(
            &schema,
            &mut sy,
            &[("conf", "ICDE"), ("capital", "Tokyo"), ("city", "Tokyo")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();
        let ids: Vec<u16> = r.x().iter().map(|a| a.0).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        // Alignment preserved: capital -> Tokyo.
        assert_eq!(
            r.evidence_value(schema.attr("conf").unwrap()),
            Some(sy.get("ICDE").unwrap())
        );
    }
}
