//! Repair provenance: a ledger of rule applications with their evidence.
//!
//! The paper's central claim is *dependable* repairing — every fix is
//! justified by an evidence pattern and a fact, never a heuristic guess
//! (§1). This module makes that justification a first-class artifact: a
//! [`ProvenanceLedger`] collects one [`ProvenanceRecord`] per applied fix,
//! carrying `(row, attr, old → new, rule, evidence bindings, round,
//! assured-set delta)`. Because matching requires `t[X] = tp[X]` exactly,
//! the recorded evidence bindings *are* the tuple's cell values at
//! application time, which makes the ledger replayable: applying the
//! records in order to the dirty table re-derives the repaired table
//! ([`ProvenanceLedger::replay`]), and walking evidence attributes
//! backwards re-derives the causal chain behind any one cell
//! ([`chain`]).
//!
//! The drivers feed the ledger through the value-carrying
//! `cell_repaired` observer hook; wrap the ledger in a
//! [`ProvenanceObserver`] (which knows the rule set and expands rule ids
//! into evidence bindings) and pass it to any `*_observed` entry point.
//! As with every observer, the hook monomorphizes to nothing under
//! `NoopObserver` — untraced repairs pay zero cost.

use std::fmt;
use std::sync::Mutex;

use obs::{CellFix, Json, RepairObserver};
use relation::{AttrId, AttrSet, Schema, Symbol, SymbolTable, Table};

use crate::ruleset::{RuleId, RuleSet};
use crate::semantics::evidence_bindings;

/// One rule application, with everything needed to justify and replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceRecord {
    /// Row index in the table (record index for the stream driver).
    pub row: usize,
    /// Application order within the row, from 0.
    pub ordinal: usize,
    /// The repaired attribute `B`.
    pub attr: AttrId,
    /// Value before the fix (a negative pattern of the rule).
    pub old: Symbol,
    /// Value after the fix (the rule's fact `tp+[B]`).
    pub new: Symbol,
    /// The rule that fired.
    pub rule: RuleId,
    /// Chase round (`cRepair`) or queue-pop index (`lRepair`), 1-based.
    pub round: u32,
    /// The evidence cells `(A, tp[A])` the tuple exhibited at application
    /// time (exact equality is required for a match, so these are the
    /// tuple's own values).
    pub evidence: Vec<(AttrId, Symbol)>,
    /// `X ∪ {B}` — the attributes this application marked assured.
    pub assured_delta: AttrSet,
}

impl ProvenanceRecord {
    /// Serialize with attribute names and resolved values, so the record
    /// is meaningful outside this process (the trace journal stores these).
    pub fn to_json(&self, schema: &Schema, symbols: &SymbolTable) -> Json {
        let evidence = Json::Obj(
            self.evidence
                .iter()
                .map(|&(a, v)| {
                    (
                        schema.attr_name(a).to_string(),
                        Json::from(symbols.resolve(v)),
                    )
                })
                .collect(),
        );
        let assured: Vec<Json> = self
            .assured_delta
            .iter()
            .map(|a| Json::from(schema.attr_name(a)))
            .collect();
        Json::obj([
            ("assured", Json::Arr(assured)),
            ("attr", Json::from(schema.attr_name(self.attr))),
            ("evidence", evidence),
            ("new", Json::from(symbols.resolve(self.new))),
            ("old", Json::from(symbols.resolve(self.old))),
            ("ordinal", Json::from(self.ordinal)),
            ("round", Json::from(u64::from(self.round))),
            ("row", Json::from(self.row)),
            ("rule", Json::from(u64::from(self.rule.0))),
        ])
    }

    /// Parse a record serialized by [`ProvenanceRecord::to_json`],
    /// resolving attribute names against `schema` and interning values
    /// into `symbols`.
    pub fn from_json(
        json: &Json,
        schema: &Schema,
        symbols: &mut SymbolTable,
    ) -> Result<Self, String> {
        let attr_of = |name: &str| {
            schema
                .attr(name)
                .ok_or_else(|| format!("unknown attribute `{name}` in provenance record"))
        };
        let int_of = |key: &str| {
            json.get(key)
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("provenance record missing integer `{key}`"))
        };
        let str_of = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("provenance record missing string `{key}`"))
        };
        let attr = attr_of(str_of("attr")?)?;
        let old = symbols.intern(str_of("old")?);
        let new = symbols.intern(str_of("new")?);
        let mut evidence = Vec::new();
        let ev_obj = json
            .get("evidence")
            .and_then(Json::as_obj)
            .ok_or_else(|| "provenance record missing object `evidence`".to_string())?;
        for (name, value) in ev_obj {
            let v = value
                .as_str()
                .ok_or_else(|| format!("evidence value for `{name}` is not a string"))?;
            evidence.push((attr_of(name)?, symbols.intern(v)));
        }
        evidence.sort_by_key(|&(a, _)| a);
        let assured_arr = json
            .get("assured")
            .and_then(Json::as_arr)
            .ok_or_else(|| "provenance record missing array `assured`".to_string())?;
        let mut assured_delta = AttrSet::new();
        for item in assured_arr {
            let name = item
                .as_str()
                .ok_or_else(|| "assured entry is not a string".to_string())?;
            assured_delta.insert(attr_of(name)?);
        }
        Ok(ProvenanceRecord {
            row: int_of("row")? as usize,
            ordinal: int_of("ordinal")? as usize,
            attr,
            old,
            new,
            rule: RuleId(int_of("rule")? as u32),
            round: int_of("round")? as u32,
            evidence,
            assured_delta,
        })
    }
}

/// A replay mismatch: the table's cell did not hold the recorded `old`
/// value, so the ledger does not describe this table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// Row of the mismatching record.
    pub row: usize,
    /// Attribute of the mismatching record.
    pub attr: AttrId,
    /// The value the record expected to overwrite.
    pub expected: Symbol,
    /// The value actually found in the table.
    pub found: Symbol,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay mismatch at row {}, attr {}: expected symbol {:?}, found {:?}",
            self.row, self.attr, self.expected, self.found
        )
    }
}

impl std::error::Error for ReplayError {}

/// Thread-safe collection of [`ProvenanceRecord`]s for one repair run.
///
/// Records arrive in driver order — which under the parallel driver is
/// worker-interleaved — so [`ProvenanceLedger::records`] sorts by
/// `(row, ordinal)` before returning, giving a canonical view identical
/// across sequential, parallel, and streaming runs.
#[derive(Debug, Default)]
pub struct ProvenanceLedger {
    entries: Mutex<Vec<ProvenanceRecord>>,
}

impl ProvenanceLedger {
    /// Create an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record.
    pub fn record(&self, rec: ProvenanceRecord) {
        self.entries.lock().expect("ledger poisoned").push(rec);
    }

    /// Number of recorded applications.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("ledger poisoned").len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All records, sorted by `(row, ordinal)` — the canonical order.
    pub fn records(&self) -> Vec<ProvenanceRecord> {
        let mut out = self.entries.lock().expect("ledger poisoned").clone();
        out.sort_by_key(|r| (r.row, r.ordinal));
        out
    }

    /// The causal chain (in application order) behind the final value of
    /// `(row, attr)` — empty when the cell was never repaired. See
    /// [`chain`] for the derivation.
    pub fn chain_for(&self, row: usize, attr: AttrId) -> Vec<ProvenanceRecord> {
        let row_records: Vec<ProvenanceRecord> = self
            .records()
            .into_iter()
            .filter(|r| r.row == row)
            .collect();
        chain(&row_records, attr)
            .into_iter()
            .map(|i| row_records[i].clone())
            .collect()
    }

    /// Re-apply every record to `table` (which must be in the *dirty*
    /// pre-repair state), verifying that each overwritten cell holds the
    /// recorded `old` value. Returns the number of cells re-derived.
    pub fn replay(&self, table: &mut Table) -> Result<usize, ReplayError> {
        let mut applied = 0;
        for rec in self.records() {
            let cell = &mut table.row_mut(rec.row)[rec.attr.index()];
            if *cell != rec.old {
                return Err(ReplayError {
                    row: rec.row,
                    attr: rec.attr,
                    expected: rec.old,
                    found: *cell,
                });
            }
            *cell = rec.new;
            applied += 1;
        }
        Ok(applied)
    }
}

/// Indices (into `records`, which must hold one row's records sorted by
/// `ordinal`) of the applications that causally produced the final value
/// of `attr`, in application order.
///
/// Derivation: start from the *last* writer of `attr`; then walk
/// backwards — for every included application, include the latest earlier
/// application that wrote one of its evidence attributes (that write is
/// what the evidence binding observed) — until a fixpoint.
pub fn chain(records: &[ProvenanceRecord], attr: AttrId) -> Vec<usize> {
    let Some(last) = records.iter().rposition(|r| r.attr == attr) else {
        return Vec::new();
    };
    let mut included = vec![false; records.len()];
    included[last] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..records.len()).rev() {
            if !included[i] {
                continue;
            }
            for &(ev_attr, _) in &records[i].evidence {
                let dep = records[..i].iter().rposition(|r| r.attr == ev_attr);
                if let Some(d) = dep {
                    if !included[d] {
                        included[d] = true;
                        changed = true;
                    }
                }
            }
        }
    }
    (0..records.len()).filter(|&i| included[i]).collect()
}

/// A [`RepairObserver`] that expands `cell_repaired` hook payloads into
/// full [`ProvenanceRecord`]s. Holds the rule set so the plain rule id in
/// the hook can be expanded into evidence bindings and the assured-set
/// delta (kept out of the hook itself so `obs` stays a leaf crate).
#[derive(Debug)]
pub struct ProvenanceObserver<'a> {
    rules: &'a RuleSet,
    ledger: &'a ProvenanceLedger,
}

impl<'a> ProvenanceObserver<'a> {
    /// Observe repairs driven by `rules`, appending to `ledger`.
    pub fn new(rules: &'a RuleSet, ledger: &'a ProvenanceLedger) -> Self {
        ProvenanceObserver { rules, ledger }
    }
}

impl RepairObserver for ProvenanceObserver<'_> {
    fn cell_repaired(&self, fix: CellFix) {
        let rule_id = RuleId(fix.rule as u32);
        let rule = self.rules.rule(rule_id);
        self.ledger.record(ProvenanceRecord {
            row: fix.row,
            ordinal: fix.ordinal,
            attr: AttrId(fix.attr as u16),
            old: Symbol(fix.old),
            new: Symbol(fix.new),
            rule: rule_id,
            round: fix.round,
            evidence: evidence_bindings(rule),
            assured_delta: rule.assured_delta(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::crepair_table_observed;

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    fn fig8_rules(sy: &mut SymbolTable) -> RuleSet {
        let mut rs = RuleSet::new(schema());
        rs.push_named(
            sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("capital", "Beijing"), ("conf", "ICDE")],
            "city",
            &["Hongkong"],
            "Shanghai",
        )
        .unwrap();
        rs
    }

    fn fig1_table(sy: &mut SymbolTable, schema: &Schema) -> Table {
        let mut t = Table::new(schema.clone());
        for row in [
            ["George", "China", "Beijing", "Beijing", "SIGMOD"],
            ["Ian", "China", "Shanghai", "Hongkong", "ICDE"],
            ["Peter", "China", "Tokyo", "Tokyo", "ICDE"],
            ["Mike", "Canada", "Toronto", "Toronto", "VLDB"],
        ] {
            t.push_strs(sy, &row).unwrap();
        }
        t
    }

    fn run_fig1(sy: &mut SymbolTable) -> (RuleSet, Table, Table, ProvenanceLedger) {
        let rules = fig8_rules(sy);
        let dirty = fig1_table(sy, &rules.schema().clone());
        let mut repaired = dirty.clone();
        let ledger = ProvenanceLedger::new();
        let observer = ProvenanceObserver::new(&rules, &ledger);
        crepair_table_observed(&rules, &mut repaired, &observer);
        (rules, dirty, repaired, ledger)
    }

    #[test]
    fn ledger_records_every_update() {
        let mut sy = SymbolTable::new();
        let (_rules, _dirty, _repaired, ledger) = run_fig1(&mut sy);
        assert_eq!(ledger.len(), 4);
        let recs = ledger.records();
        // Canonical order: sorted by (row, ordinal).
        assert!(recs
            .windows(2)
            .all(|w| (w[0].row, w[0].ordinal) <= (w[1].row, w[1].ordinal)));
    }

    #[test]
    fn replay_rederives_the_repaired_table() {
        let mut sy = SymbolTable::new();
        let (_rules, mut dirty, repaired, ledger) = run_fig1(&mut sy);
        let applied = ledger.replay(&mut dirty).unwrap();
        assert_eq!(applied, 4);
        assert_eq!(dirty.diff_cells(&repaired).unwrap(), 0);
    }

    #[test]
    fn replay_rejects_a_foreign_table() {
        let mut sy = SymbolTable::new();
        let (_rules, _dirty, mut repaired, ledger) = run_fig1(&mut sy);
        // Replaying onto the *already repaired* table must fail on the
        // first record whose `old` value is gone.
        let err = ledger.replay(&mut repaired).unwrap_err();
        assert_eq!(err.expected, sy.get("Shanghai").unwrap());
    }

    #[test]
    fn chain_follows_the_cascade() {
        // Row 1 (Ian): φ1 repairs capital, then φ4's evidence includes the
        // repaired capital — the chain for `city` must contain both.
        let mut sy = SymbolTable::new();
        let (rules, _dirty, _repaired, ledger) = run_fig1(&mut sy);
        let schema = rules.schema();
        let city = schema.attr("city").unwrap();
        let capital = schema.attr("capital").unwrap();
        let chain = ledger.chain_for(1, city);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].attr, capital);
        assert_eq!(chain[0].rule, RuleId(0));
        assert_eq!(chain[1].attr, city);
        assert_eq!(chain[1].rule, RuleId(3));
        // The capital fix itself has a single-link chain.
        let cap_chain = ledger.chain_for(1, capital);
        assert_eq!(cap_chain.len(), 1);
        assert_eq!(cap_chain[0].rule, RuleId(0));
        // Untouched cells have no chain.
        assert!(ledger.chain_for(0, city).is_empty());
        assert!(ledger.chain_for(1, schema.attr("name").unwrap()).is_empty());
    }

    #[test]
    fn records_round_trip_through_json() {
        let mut sy = SymbolTable::new();
        let (rules, _dirty, _repaired, ledger) = run_fig1(&mut sy);
        let schema = rules.schema();
        for rec in ledger.records() {
            let json = rec.to_json(schema, &sy);
            let back = ProvenanceRecord::from_json(&json, schema, &mut sy).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn from_json_rejects_malformed_records() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let missing = Json::obj([("row", Json::from(0u64))]);
        assert!(ProvenanceRecord::from_json(&missing, &schema, &mut sy).is_err());
        let bad_attr = Json::obj([
            ("assured", Json::Arr(vec![])),
            ("attr", Json::from("nope")),
            ("evidence", Json::Obj(Default::default())),
            ("new", Json::from("x")),
            ("old", Json::from("y")),
            ("ordinal", Json::from(0u64)),
            ("round", Json::from(1u64)),
            ("row", Json::from(0u64)),
            ("rule", Json::from(0u64)),
        ]);
        let err = ProvenanceRecord::from_json(&bad_attr, &schema, &mut sy).unwrap_err();
        assert!(err.contains("unknown attribute"), "{err}");
    }

    #[test]
    fn evidence_bindings_match_rule_patterns() {
        let mut sy = SymbolTable::new();
        let (rules, _dirty, _repaired, ledger) = run_fig1(&mut sy);
        for rec in ledger.records() {
            let rule = rules.rule(rec.rule);
            assert_eq!(rec.evidence.len(), rule.x().len());
            for &(a, v) in &rec.evidence {
                assert_eq!(rule.evidence_value(a), Some(v));
            }
            assert_eq!(rec.assured_delta, rule.assured_delta());
        }
    }
}
