//! Rule generation (§7.1): seed fixing rules from FD violations, then
//! enrich their negative patterns from same-domain tables.
//!
//! The paper's procedure has a human expert inspect FD violations and write
//! seed rules, then enlarge negative patterns from related tables (e.g. a
//! table of Chinese cities). Here the expert is replaced by a *master
//! oracle* ([`MasterIndex`]) — a `LHS key → correct RHS value` mapping built
//! from reference data — and the related tables by an [`Enrichment`] source
//! of known-wrong candidate values per attribute/value. Both substitutions
//! are recorded in `DESIGN.md`.

use std::collections::HashMap;

use fd::Fd;
use relation::{AttrId, Symbol, Table};

use crate::rule::FixingRule;
use crate::ruleset::RuleSet;

/// Master/reference mapping for one single-RHS FD: each LHS key's correct
/// RHS value.
#[derive(Debug, Clone)]
pub struct MasterIndex {
    lhs: Vec<AttrId>,
    rhs: AttrId,
    map: HashMap<Vec<Symbol>, Symbol>,
}

impl MasterIndex {
    /// Build the oracle from a reference table assumed correct (master data
    /// in the paper's terminology). If the reference itself disagrees on a
    /// key, the most frequent value wins.
    pub fn build(reference: &Table, lhs: &[AttrId], rhs: AttrId) -> Self {
        let mut counts: HashMap<Vec<Symbol>, HashMap<Symbol, usize>> = HashMap::new();
        for i in 0..reference.len() {
            let row = reference.row(i);
            let key: Vec<Symbol> = lhs.iter().map(|a| row[a.index()]).collect();
            *counts
                .entry(key)
                .or_default()
                .entry(row[rhs.index()])
                .or_insert(0) += 1;
        }
        let map = counts
            .into_iter()
            .map(|(k, vals)| {
                let best = vals
                    .into_iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                    .map(|(v, _)| v)
                    .expect("non-empty group");
                (k, best)
            })
            .collect();
        MasterIndex {
            lhs: lhs.to_vec(),
            rhs,
            map,
        }
    }

    /// LHS attributes of the oracle's FD.
    pub fn lhs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// RHS attribute.
    pub fn rhs(&self) -> AttrId {
        self.rhs
    }

    /// Correct RHS value for a key, if known.
    pub fn fact_for(&self, key: &[Symbol]) -> Option<Symbol> {
        self.map.get(key).copied()
    }

    /// Number of known keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the oracle knows no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate `(key, fact)` pairs in an unspecified but stable-for-a-build
    /// order. Callers needing determinism sort, as
    /// [`generate_from_master`] does.
    pub fn iter(&self) -> impl Iterator<Item = (&[Symbol], Symbol)> {
        self.map.iter().map(|(k, &v)| (k.as_slice(), v))
    }
}

/// Candidate negative-pattern values for enrichment: per `(attribute,
/// fact)` (typo corpora — misspellings of the true value) and per attribute
/// (same-domain tables — other values of the domain). Ordered: earlier
/// candidates are used first.
#[derive(Debug, Clone, Default)]
pub struct Enrichment {
    /// Known-wrong variants of a specific correct value (e.g. typos).
    pub by_value: HashMap<(AttrId, Symbol), Vec<Symbol>>,
    /// Domain values usable as negatives for any rule on this attribute.
    pub by_attr: HashMap<AttrId, Vec<Symbol>>,
}

impl Enrichment {
    /// Up to `budget` candidate negatives for a rule repairing `attr` with
    /// fact `fact`, excluding `fact` itself and values in `exclude`.
    pub fn candidates(
        &self,
        attr: AttrId,
        fact: Symbol,
        exclude: &[Symbol],
        budget: usize,
    ) -> Vec<Symbol> {
        let mut out = Vec::with_capacity(budget);
        let push = |v: Symbol, out: &mut Vec<Symbol>| {
            if v != fact && !exclude.contains(&v) && !out.contains(&v) && out.len() < budget {
                out.push(v);
            }
        };
        if let Some(typos) = self.by_value.get(&(attr, fact)) {
            for &v in typos {
                push(v, &mut out);
            }
        }
        if let Some(domain) = self.by_attr.get(&attr) {
            for &v in domain {
                push(v, &mut out);
            }
        }
        out
    }
}

/// Seed fixing rules from the FD violations of a dirty table (§7.1 "seed
/// fixing rule generation"): for each violated LHS group whose correct RHS
/// values the oracle knows, emit per-RHS-attribute rules whose evidence is
/// the group key, whose negatives are the observed wrong values, and whose
/// fact is the oracle value.
///
/// **Expert conservatism.** A row disagreeing with the oracle on **two or
/// more** RHS attributes of the same FD is far more likely to carry a wrong
/// *key* (e.g. an ssn swapped onto another person's record) than several
/// simultaneous value errors; seeding negatives from it would produce rules
/// that "repair" the row's correct values towards the foreign key's record.
/// This is the paper's (China, Tokyo) ambiguity in mechanised form — the
/// expert declines to judge — so such rows contribute no negative patterns.
///
/// `masters` must align with `fd.split_rhs()` (one oracle per RHS
/// attribute); build them with the same LHS.
pub fn seed_rules_from_violations(
    dirty: &Table,
    fd: &Fd,
    masters: &[MasterIndex],
) -> Vec<FixingRule> {
    seed_rules_with_yield(dirty, fd, masters)
        .into_iter()
        .map(|(rule, _)| rule)
        .collect()
}

/// Like [`seed_rules_from_violations`], but paired with each rule's
/// **yield**: the number of dirty rows that contributed a negative pattern,
/// i.e. the errors the rule would repair right now. Experts triage
/// violations by impact, so rule-budgeted pipelines keep high-yield rules
/// first (this is what makes single rules repair fifty-plus tuples in
/// Fig 12(a)).
pub fn seed_rules_with_yield(
    dirty: &Table,
    fd: &Fd,
    masters: &[MasterIndex],
) -> Vec<(FixingRule, usize)> {
    let singles: Vec<Fd> = fd.split_rhs().collect();
    assert_eq!(
        singles.len(),
        masters.len(),
        "one MasterIndex per RHS attribute"
    );
    let partition = fd::partition::Partition::build(dirty, fd.lhs());
    let mut out = Vec::new();
    for (key, rows) in partition.non_singleton_groups() {
        // Oracle facts per RHS attribute for this key.
        let facts: Vec<Option<Symbol>> = masters.iter().map(|m| m.fact_for(key)).collect();
        // Deviations per row; rows deviating on ≥ 2 RHS attrs are
        // key-suspect and excluded from negative-pattern harvesting.
        let mut neg_per_attr: Vec<Vec<Symbol>> = vec![Vec::new(); singles.len()];
        let mut yield_per_attr: Vec<usize> = vec![0; singles.len()];
        let mut any_deviation = false;
        for &r in rows {
            let row = dirty.row(r);
            let deviating: Vec<usize> = singles
                .iter()
                .enumerate()
                .filter(
                    |(k, single)| matches!(facts[*k], Some(f) if row[single.rhs()[0].index()] != f),
                )
                .map(|(k, _)| k)
                .collect();
            if deviating.is_empty() || deviating.len() >= 2 {
                continue;
            }
            any_deviation = true;
            let k = deviating[0];
            let v = row[singles[k].rhs()[0].index()];
            yield_per_attr[k] += 1;
            if !neg_per_attr[k].contains(&v) {
                neg_per_attr[k].push(v);
            }
        }
        if !any_deviation {
            continue;
        }
        for (k, neg) in neg_per_attr.into_iter().enumerate() {
            if neg.is_empty() {
                continue;
            }
            let Some(fact) = facts[k] else { continue };
            let evidence: Vec<(AttrId, Symbol)> =
                fd.lhs().iter().copied().zip(key.iter().copied()).collect();
            if let Ok(rule) = FixingRule::new(evidence, singles[k].rhs()[0], neg, fact) {
                out.push((rule, yield_per_attr[k]));
            }
        }
    }
    // Deterministic order for reproducible pipelines: impact first, then a
    // structural tiebreak.
    out.sort_by(|(a, ya), (b, yb)| {
        yb.cmp(ya)
            .then_with(|| a.b().cmp(&b.b()))
            .then_with(|| a.tp().cmp(b.tp()))
            .then_with(|| a.neg().cmp(b.neg()))
    });
    out
}

/// Seed rules from the violations of **all** FDs with a *global*
/// key-suspect analysis.
///
/// The per-FD filter of [`seed_rules_with_yield`] misses rows whose wrong
/// key drags them into a foreign group of a *single-RHS* FD (they deviate
/// on just that one attribute there, e.g. a corrupted `state` landing in
/// the wrong `(state, MC) → stateAvg` group). An expert inspecting the
/// whole record sees all its symptoms at once, so this variant first
/// computes, per row, the set of attributes on which it deviates from the
/// oracle across *every* FD group it belongs to; rows deviating on **two or
/// more distinct attributes** are ambiguous (multiple entangled problems or
/// a wrong key) and contribute no negative patterns anywhere — the paper's
/// conservatism again.
///
/// `masters` aligns with the concatenation of each FD's
/// [`Fd::split_rhs`] in order (the layout of
/// `Dataset::single_rhs_fds` in the datagen crate).
pub fn seed_rules_all_fds(
    dirty: &Table,
    fds: &[Fd],
    masters: &[MasterIndex],
) -> Vec<Vec<(FixingRule, usize)>> {
    use relation::AttrSet;

    let expected: usize = fds.iter().map(|fd| fd.rhs().len()).sum();
    assert_eq!(masters.len(), expected, "one MasterIndex per RHS attribute");

    // Pass A: per-row deviating-attribute sets across all FDs.
    let mut deviations: Vec<AttrSet> = vec![AttrSet::EMPTY; dirty.len()];
    let mut offset = 0;
    for fd in fds {
        let singles: Vec<Fd> = fd.split_rhs().collect();
        let partition = fd::partition::Partition::build(dirty, fd.lhs());
        for (key, rows) in partition.non_singleton_groups() {
            let facts: Vec<Option<Symbol>> = masters[offset..offset + singles.len()]
                .iter()
                .map(|m| m.fact_for(key))
                .collect();
            for &r in rows {
                let row = dirty.row(r);
                for (k, single) in singles.iter().enumerate() {
                    let rhs = single.rhs()[0];
                    if matches!(facts[k], Some(f) if row[rhs.index()] != f) {
                        deviations[r].insert(rhs);
                    }
                }
            }
        }
        offset += singles.len();
    }
    let suspect: Vec<bool> = deviations.iter().map(|d| d.len() >= 2).collect();

    // Pass B: harvest negatives per FD, skipping suspect rows.
    let mut out = Vec::with_capacity(fds.len());
    let mut offset = 0;
    for fd in fds {
        let singles: Vec<Fd> = fd.split_rhs().collect();
        let fd_masters = &masters[offset..offset + singles.len()];
        let partition = fd::partition::Partition::build(dirty, fd.lhs());
        let mut fd_rules = Vec::new();
        for (key, rows) in partition.non_singleton_groups() {
            let facts: Vec<Option<Symbol>> = fd_masters.iter().map(|m| m.fact_for(key)).collect();
            let mut neg_per_attr: Vec<Vec<Symbol>> = vec![Vec::new(); singles.len()];
            let mut yield_per_attr: Vec<usize> = vec![0; singles.len()];
            for &r in rows {
                if suspect[r] {
                    continue;
                }
                let row = dirty.row(r);
                for (k, single) in singles.iter().enumerate() {
                    let rhs = single.rhs()[0];
                    let Some(fact) = facts[k] else { continue };
                    let v = row[rhs.index()];
                    if v == fact {
                        continue;
                    }
                    yield_per_attr[k] += 1;
                    if !neg_per_attr[k].contains(&v) {
                        neg_per_attr[k].push(v);
                    }
                }
            }
            for (k, neg) in neg_per_attr.into_iter().enumerate() {
                if neg.is_empty() {
                    continue;
                }
                let Some(fact) = facts[k] else { continue };
                let evidence: Vec<(AttrId, Symbol)> =
                    fd.lhs().iter().copied().zip(key.iter().copied()).collect();
                if let Ok(rule) = FixingRule::new(evidence, singles[k].rhs()[0], neg, fact) {
                    fd_rules.push((rule, yield_per_attr[k]));
                }
            }
        }
        fd_rules.sort_by(|(a, ya), (b, yb)| {
            yb.cmp(ya)
                .then_with(|| a.b().cmp(&b.b()))
                .then_with(|| a.tp().cmp(b.tp()))
                .then_with(|| a.neg().cmp(b.neg()))
        });
        out.push(fd_rules);
        offset += singles.len();
    }
    out
}

/// Generate rules at scale from the oracle directly (§7.1's ontology case:
/// "when an appropriate ontology is available ... the generated fixing
/// rules are usually general"). One rule per known key, negatives drawn
/// from `enrichment`; `neg_budgets` is cycled to give each rule its
/// negative-pattern count (the Fig 11(a) distribution), and at most
/// `max_rules` rules are emitted.
pub fn generate_from_master(
    schema_rules: &mut RuleSet,
    master: &MasterIndex,
    enrichment: &Enrichment,
    neg_budgets: &[usize],
    max_rules: usize,
) -> usize {
    if neg_budgets.is_empty() || max_rules == 0 {
        return 0;
    }
    let mut pairs: Vec<(&[Symbol], Symbol)> = master.iter().collect();
    pairs.sort(); // determinism
    let mut emitted = 0;
    for (key, fact) in pairs {
        if emitted >= max_rules {
            break;
        }
        let budget = neg_budgets[emitted % neg_budgets.len()].max(1);
        let neg = enrichment.candidates(master.rhs(), fact, &[], budget);
        if neg.is_empty() {
            continue;
        }
        let evidence: Vec<(AttrId, Symbol)> = master
            .lhs()
            .iter()
            .copied()
            .zip(key.iter().copied())
            .collect();
        if let Ok(rule) = FixingRule::new(evidence, master.rhs(), neg, fact) {
            schema_rules.push(rule);
            emitted += 1;
        }
    }
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    /// Master data of Fig 2.
    fn master_table(sy: &mut SymbolTable) -> Table {
        let s = Schema::new("Cap", ["country", "capital"]).unwrap();
        let mut t = Table::new(s);
        t.push_strs(sy, &["China", "Beijing"]).unwrap();
        t.push_strs(sy, &["Canada", "Ottawa"]).unwrap();
        t.push_strs(sy, &["Japan", "Tokyo"]).unwrap();
        t
    }

    #[test]
    fn master_index_maps_keys_to_facts() {
        let mut sy = SymbolTable::new();
        let t = master_table(&mut sy);
        let country = t.schema().attr("country").unwrap();
        let capital = t.schema().attr("capital").unwrap();
        let idx = MasterIndex::build(&t, &[country], capital);
        assert_eq!(idx.len(), 3);
        assert_eq!(
            idx.fact_for(&[sy.get("China").unwrap()]),
            Some(sy.get("Beijing").unwrap())
        );
        assert_eq!(idx.fact_for(&[sy.intern("France")]), None);
    }

    #[test]
    fn master_index_majority_on_disagreement() {
        let s = Schema::new("Cap", ["country", "capital"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(s.clone());
        t.push_strs(&mut sy, &["China", "Beijing"]).unwrap();
        t.push_strs(&mut sy, &["China", "Beijing"]).unwrap();
        t.push_strs(&mut sy, &["China", "Shanghai"]).unwrap();
        let idx = MasterIndex::build(
            &t,
            &[s.attr("country").unwrap()],
            s.attr("capital").unwrap(),
        );
        assert_eq!(idx.fact_for(&[sy.get("China").unwrap()]), sy.get("Beijing"));
    }

    #[test]
    fn seeds_rules_from_fig1_violations() {
        // Dirty Travel data + country→capital FD + Fig 2 master data should
        // reproduce φ1-like and φ2-like seeds.
        let schema = schema();
        let mut sy = SymbolTable::new();
        let mut dirty = Table::new(schema.clone());
        for row in [
            ["George", "China", "Beijing", "Beijing", "SIGMOD"],
            ["Ian", "China", "Shanghai", "Hongkong", "ICDE"],
            ["Mike", "Canada", "Toronto", "Toronto", "VLDB"],
            ["Ann", "Canada", "Ottawa", "Ottawa", "VLDB"],
        ] {
            dirty.push_strs(&mut sy, &row).unwrap();
        }
        let country = schema.attr("country").unwrap();
        let capital = schema.attr("capital").unwrap();
        // Project the master oracle through the Travel schema attributes.
        let mut ref_t = Table::new(schema.clone());
        for row in [
            ["-", "China", "Beijing", "-", "-"],
            ["-", "Canada", "Ottawa", "-", "-"],
        ] {
            ref_t.push_strs(&mut sy, &row).unwrap();
        }
        let master = MasterIndex::build(&ref_t, &[country], capital);
        let fd = Fd::from_names(&schema, ["country"], ["capital"]).unwrap();
        let rules = seed_rules_from_violations(&dirty, &fd, &[master]);
        assert_eq!(rules.len(), 2);
        // China rule: neg {Shanghai}, fact Beijing.
        let china = rules
            .iter()
            .find(|r| r.evidence_value(country) == sy.get("China"))
            .unwrap();
        assert_eq!(china.neg(), &[sy.get("Shanghai").unwrap()]);
        assert_eq!(china.fact(), sy.get("Beijing").unwrap());
        // Canada rule: neg {Toronto}, fact Ottawa.
        let canada = rules
            .iter()
            .find(|r| r.evidence_value(country) == sy.get("Canada"))
            .unwrap();
        assert_eq!(canada.neg(), &[sy.get("Toronto").unwrap()]);
    }

    #[test]
    fn unknown_keys_are_skipped() {
        let schema = schema();
        let mut sy = SymbolTable::new();
        let mut dirty = Table::new(schema.clone());
        for row in [
            ["A", "Atlantis", "X", "-", "-"],
            ["B", "Atlantis", "Y", "-", "-"],
        ] {
            dirty.push_strs(&mut sy, &row).unwrap();
        }
        let country = schema.attr("country").unwrap();
        let capital = schema.attr("capital").unwrap();
        let empty_ref = Table::new(schema.clone());
        let master = MasterIndex::build(&empty_ref, &[country], capital);
        let fd = Fd::from_names(&schema, ["country"], ["capital"]).unwrap();
        assert!(seed_rules_from_violations(&dirty, &fd, &[master]).is_empty());
    }

    #[test]
    fn key_suspect_rows_are_excluded() {
        // A row deviating on BOTH RHS attributes of zip -> (state, city) is
        // treated as carrying a wrong zip; no negatives are harvested from
        // it. A row deviating on one attribute still seeds a rule.
        let schema = Schema::new("R", ["zip", "state", "city"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut truth = Table::new(schema.clone());
        truth
            .push_strs(&mut sy, &["10001", "NY", "New York"])
            .unwrap();
        truth
            .push_strs(&mut sy, &["07030", "NJ", "Hoboken"])
            .unwrap();
        let zip = schema.attr("zip").unwrap();
        let state = schema.attr("state").unwrap();
        let city = schema.attr("city").unwrap();
        let masters = vec![
            MasterIndex::build(&truth, &[zip], state),
            MasterIndex::build(&truth, &[zip], city),
        ];
        let fd = Fd::from_names(&schema, ["zip"], ["state", "city"]).unwrap();

        // Dirty: row 1 is Hoboken's record with zip swapped to 10001 (a
        // key error: deviates on both state and city); row 2 has a genuine
        // state typo.
        let mut dirty = Table::new(schema.clone());
        dirty
            .push_strs(&mut sy, &["10001", "NY", "New York"])
            .unwrap();
        dirty
            .push_strs(&mut sy, &["10001", "NJ", "Hoboken"])
            .unwrap();
        dirty
            .push_strs(&mut sy, &["10001", "NY!", "New York"])
            .unwrap();
        let rules = seed_rules_from_violations(&dirty, &fd, &masters);
        // Exactly one rule: the state typo. No rule harvests NJ/Hoboken.
        assert_eq!(rules.len(), 1);
        let r = &rules[0];
        assert_eq!(r.b(), state);
        assert_eq!(r.neg(), &[sy.get("NY!").unwrap()]);
        assert_eq!(r.fact(), sy.get("NY").unwrap());
    }

    #[test]
    fn enrichment_orders_typos_before_domain() {
        let mut sy = SymbolTable::new();
        let attr = AttrId(2);
        let fact = sy.intern("Beijing");
        let typo = sy.intern("Bejing");
        let dom1 = sy.intern("Shanghai");
        let dom2 = sy.intern("Hongkong");
        let mut e = Enrichment::default();
        e.by_value.insert((attr, fact), vec![typo]);
        e.by_attr.insert(attr, vec![fact, dom1, dom2]);
        let c = e.candidates(attr, fact, &[], 2);
        // fact filtered, typo first.
        assert_eq!(c, vec![typo, dom1]);
        let c3 = e.candidates(attr, fact, &[dom1], 3);
        assert_eq!(c3, vec![typo, dom2]);
    }

    #[test]
    fn generate_from_master_respects_budgets() {
        let mut sy = SymbolTable::new();
        let schema = schema();
        let master_t = {
            let mut t = Table::new(schema.clone());
            for row in [
                ["-", "China", "Beijing", "-", "-"],
                ["-", "Canada", "Ottawa", "-", "-"],
                ["-", "Japan", "Tokyo", "-", "-"],
            ] {
                t.push_strs(&mut sy, &row).unwrap();
            }
            t
        };
        let country = schema.attr("country").unwrap();
        let capital = schema.attr("capital").unwrap();
        let master = MasterIndex::build(&master_t, &[country], capital);
        let mut e = Enrichment::default();
        let pool: Vec<Symbol> = ["V1", "V2", "V3", "V4"]
            .iter()
            .map(|v| sy.intern(v))
            .collect();
        e.by_attr.insert(capital, pool);
        let mut rs = RuleSet::new(schema);
        let n = generate_from_master(&mut rs, &master, &e, &[2, 3], 10);
        assert_eq!(n, 3);
        assert_eq!(rs.len(), 3);
        // Budgets cycle 2,3,2.
        let sizes: Vec<usize> = rs.rules().iter().map(|r| r.neg().len()).collect();
        assert_eq!(sizes, vec![2, 3, 2]);
        // Generated rules are consistent (distinct evidence keys on the
        // same X with the same B).
        assert!(rs.check_consistency().is_consistent());
    }

    #[test]
    fn generate_respects_max_rules() {
        let mut sy = SymbolTable::new();
        let schema = schema();
        let mut master_t = Table::new(schema.clone());
        for i in 0..10 {
            let c = format!("Country{i}");
            let cap = format!("Capital{i}");
            master_t
                .push_strs(&mut sy, &["-", &c, &cap, "-", "-"])
                .unwrap();
        }
        let country = schema.attr("country").unwrap();
        let capital = schema.attr("capital").unwrap();
        let master = MasterIndex::build(&master_t, &[country], capital);
        let mut e = Enrichment::default();
        e.by_attr.insert(capital, vec![sy.intern("Wrong")]);
        let mut rs = RuleSet::new(schema);
        let n = generate_from_master(&mut rs, &master, &e, &[1], 4);
        assert_eq!(n, 4);
    }
}
