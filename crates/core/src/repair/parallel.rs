//! Parallel table repair.
//!
//! Fixing rules read and write a single tuple at a time — unlike FD repair,
//! no cross-tuple state exists — so a table repair is embarrassingly
//! parallel: shard the rows, give each worker its own
//! [`LRepairScratch`], and share the immutable [`LRepairIndex`]. This is an
//! extension beyond the paper (its experiments are single-threaded); the
//! `repro` harness uses the sequential drivers so timings stay comparable.

use obs::{NoopObserver, RepairObserver};
use relation::Table;

use crate::repair::compile::{
    repair_row_compiled, CompiledEngine, CompiledScratch, PlanCache, RuleProgram,
};
use crate::repair::linear::{lrepair_tuple_observed, LRepairIndex, LRepairScratch};
use crate::repair::{CellUpdate, RepairOutcome};
use crate::ruleset::RuleSet;

/// Repair a table with `lRepair` across `num_threads` workers.
///
/// Produces exactly the same table state and update multiset as the
/// sequential [`crate::repair::lrepair_table`]; updates are returned sorted
/// by `(row, application order)`. Each worker records its chunk's updates
/// in application order, and the final **stable** sort on `row` alone keeps
/// that relative order within a row — so the log is byte-identical to the
/// sequential driver's, which downstream diffing relies on.
pub fn par_lrepair_table(
    rules: &RuleSet,
    index: &LRepairIndex,
    table: &mut Table,
    num_threads: usize,
) -> RepairOutcome {
    par_lrepair_table_observed(rules, index, table, num_threads, &NoopObserver)
}

/// [`par_lrepair_table`] with observer hooks: per-tuple hooks from the
/// shared observer (which must therefore be `Sync`), one `cell_repaired`
/// per applied update (in worker order — provenance consumers sort by
/// `(row, ordinal)`), plus one `worker_done(worker, rows, updates,
/// busy_ns)` per worker.
pub fn par_lrepair_table_observed<O: RepairObserver>(
    rules: &RuleSet,
    index: &LRepairIndex,
    table: &mut Table,
    num_threads: usize,
    observer: &O,
) -> RepairOutcome {
    assert!(
        rules.schema().same_as(table.schema()),
        "rule set and table must share a schema"
    );
    let num_threads = num_threads.max(1);
    let rows = table.len();
    if rows == 0 {
        return RepairOutcome::default();
    }
    let arity = table.schema().arity();
    let chunk_rows = rows.div_ceil(num_threads);
    let mut all_updates: Vec<CellUpdate> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk_idx, chunk) in table.rows_mut_chunks(chunk_rows).enumerate() {
            let base_row = chunk_idx * chunk_rows;
            handles.push(scope.spawn(move || {
                let start = std::time::Instant::now();
                let mut scratch = LRepairScratch::new(rules.len());
                let mut local = Vec::new();
                let mut worker_rows = 0usize;
                for (r, row) in chunk.chunks_exact_mut(arity).enumerate() {
                    let mut ups = lrepair_tuple_observed(rules, index, &mut scratch, row, observer);
                    for (k, u) in ups.iter_mut().enumerate() {
                        u.row = base_row + r;
                        observer.cell_repaired(u.as_fix(k));
                    }
                    local.extend(ups);
                    worker_rows += 1;
                }
                let busy_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                observer.worker_done(chunk_idx, worker_rows, local.len(), busy_ns);
                local
            }));
        }
        for h in handles {
            all_updates.extend(h.join().expect("repair worker panicked"));
        }
    });
    // Stable sort: chunks were appended in ascending base_row, and within a
    // chunk updates are already in (row, application order). `sort_by_key`
    // is stable, so per-row application order survives.
    all_updates.sort_by_key(|u| u.row);
    RepairOutcome {
        updates: all_updates,
    }
}

/// Repair a table with the compiled engine across `num_threads` workers,
/// sharing one [`PlanCache`] (use [`PlanCache::sharded`] to keep shard
/// contention low). Produces exactly the same table state and update log
/// as the sequential [`crate::repair::compiled_table`] with the same
/// `engine` — and therefore as the uncached driver it emulates.
pub fn par_compiled_table(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    table: &mut Table,
    num_threads: usize,
) -> RepairOutcome {
    par_compiled_table_observed(
        rules,
        program,
        engine,
        cache,
        table,
        num_threads,
        &NoopObserver,
    )
}

/// [`par_compiled_table`] with observer hooks; same hook contract as
/// [`par_lrepair_table_observed`] plus the plan-cache hooks.
#[allow(clippy::too_many_arguments)]
pub fn par_compiled_table_observed<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    table: &mut Table,
    num_threads: usize,
    observer: &O,
) -> RepairOutcome {
    assert!(
        rules.schema().same_as(table.schema()),
        "rule set and table must share a schema"
    );
    let num_threads = num_threads.max(1);
    let rows = table.len();
    if rows == 0 {
        return RepairOutcome::default();
    }
    let arity = table.schema().arity();
    let chunk_rows = rows.div_ceil(num_threads);
    let mut all_updates: Vec<CellUpdate> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk_idx, chunk) in table.rows_mut_chunks(chunk_rows).enumerate() {
            let base_row = chunk_idx * chunk_rows;
            handles.push(scope.spawn(move || {
                let start = std::time::Instant::now();
                let mut scratch = CompiledScratch::new(rules.len());
                let mut local = Vec::new();
                let mut worker_rows = 0usize;
                for (r, row) in chunk.chunks_exact_mut(arity).enumerate() {
                    let mut ups = repair_row_compiled(
                        rules,
                        program,
                        engine,
                        cache,
                        &mut scratch,
                        row,
                        observer,
                    );
                    for (k, u) in ups.iter_mut().enumerate() {
                        u.row = base_row + r;
                        observer.cell_repaired(u.as_fix(k));
                    }
                    local.extend(ups);
                    worker_rows += 1;
                }
                let busy_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                observer.worker_done(chunk_idx, worker_rows, local.len(), busy_ns);
                local
            }));
        }
        for h in handles {
            all_updates.extend(h.join().expect("repair worker panicked"));
        }
    });
    // Same stable-sort argument as above: per-row application order
    // survives, so the log is byte-identical to the sequential driver's.
    all_updates.sort_by_key(|u| u.row);
    RepairOutcome {
        updates: all_updates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::{lrepair_compiled, lrepair_table};
    use relation::{Schema, SymbolTable};

    fn setup(rows: usize) -> (RuleSet, Table, SymbolTable) {
        let schema = Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut rules = RuleSet::new(schema.clone());
        rules
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Shanghai", "Hongkong"],
                "Beijing",
            )
            .unwrap();
        rules
            .push_named(
                &mut sy,
                &[("country", "Canada")],
                "capital",
                &["Toronto"],
                "Ottawa",
            )
            .unwrap();
        let mut table = Table::with_capacity(schema, rows);
        for i in 0..rows {
            let dirty = i % 3 == 0;
            let row = if dirty {
                ["p", "China", "Shanghai", "x", "ICDE"]
            } else {
                ["p", "China", "Beijing", "x", "ICDE"]
            };
            let _ = i;
            table.push_strs(&mut sy, &row).unwrap();
        }
        (rules, table, sy)
    }

    #[test]
    fn matches_sequential_result() {
        let (rules, table, _sy) = setup(1000);
        let index = LRepairIndex::build(&rules);
        let mut seq = table.clone();
        let mut par = table.clone();
        let so = lrepair_table(&rules, &index, &mut seq);
        let po = par_lrepair_table(&rules, &index, &mut par, 4);
        assert_eq!(seq.diff_cells(&par).unwrap(), 0);
        assert_eq!(so.total_updates(), po.total_updates());
    }

    #[test]
    fn single_thread_degenerates_to_sequential() {
        let (rules, table, _sy) = setup(10);
        let index = LRepairIndex::build(&rules);
        let mut seq = table.clone();
        let mut par = table.clone();
        lrepair_table(&rules, &index, &mut seq);
        par_lrepair_table(&rules, &index, &mut par, 1);
        assert_eq!(seq.diff_cells(&par).unwrap(), 0);
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let (rules, table, _sy) = setup(3);
        let index = LRepairIndex::build(&rules);
        let mut par = table.clone();
        let outcome = par_lrepair_table(&rules, &index, &mut par, 16);
        assert_eq!(outcome.total_updates(), 1);
    }

    #[test]
    fn empty_table_is_noop() {
        let (rules, mut table, _sy) = setup(0);
        let index = LRepairIndex::build(&rules);
        let outcome = par_lrepair_table(&rules, &index, &mut table, 4);
        assert_eq!(outcome.total_updates(), 0);
    }

    #[test]
    fn compiled_parallel_matches_sequential_compiled_and_uncached() {
        let (rules, table, _sy) = setup(1000);
        let program = RuleProgram::compile(&rules);
        let index = LRepairIndex::build(&rules);
        let cache = PlanCache::sharded(16);
        let mut seq = table.clone();
        let mut par = table.clone();
        let so = lrepair_table(&rules, &index, &mut seq);
        let po = par_compiled_table(
            &rules,
            &program,
            CompiledEngine::Linear,
            Some(&cache),
            &mut par,
            4,
        );
        assert_eq!(seq.diff_cells(&par).unwrap(), 0);
        assert_eq!(so.updates, po.updates, "full update logs must agree");
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 1000);
        assert!(stats.hits >= 1000 - 4 * 2, "two signatures, four workers");

        // Cache off, chase flavor, degenerate single worker.
        let mut par1 = table.clone();
        let p1 = par_compiled_table(&rules, &program, CompiledEngine::Chase, None, &mut par1, 1);
        let mut seq1 = table.clone();
        let s1 = lrepair_compiled(&rules, &program, None, &mut seq1);
        assert_eq!(seq1.diff_cells(&par1).unwrap(), 0);
        assert_eq!(p1.total_updates(), s1.total_updates());
    }

    #[test]
    fn updates_row_indices_are_global() {
        let (rules, table, _sy) = setup(100);
        let index = LRepairIndex::build(&rules);
        let mut par = table.clone();
        let outcome = par_lrepair_table(&rules, &index, &mut par, 7);
        for u in &outcome.updates {
            assert_eq!(u.row % 3, 0, "only every third row is dirty");
        }
        assert_eq!(outcome.total_updates(), 34);
    }
}
