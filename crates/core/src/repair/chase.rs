//! `cRepair` — the chase-based repairing algorithm (Fig 6).
//!
//! Repeatedly scan the not-yet-applied rules; whenever one is properly
//! applicable, apply it and rescan. Each application assures at least one
//! new attribute, so the outer loop runs at most `|R|` times and the whole
//! tuple costs `O(size(Σ)·|R|)`.

use obs::{NoopObserver, RepairObserver};
use relation::{AttrSet, Symbol, Table};

use crate::repair::{CellUpdate, RepairOutcome};
use crate::ruleset::{RuleId, RuleSet};
use crate::semantics::{matches, properly_applicable};

/// Repair one tuple in place. Returns the applied updates (with `row` set
/// to 0; table drivers re-index).
pub fn crepair_tuple(rules: &RuleSet, row: &mut [Symbol]) -> Vec<CellUpdate> {
    crepair_tuple_observed(rules, row, &NoopObserver)
}

/// [`crepair_tuple`] with observer hooks: one `chase_round` per outer scan
/// of Γ, `rule_applied` per fired rule, `tuple_done` at fixpoint. With
/// [`NoopObserver`] this monomorphizes to the unobserved hot path.
pub fn crepair_tuple_observed<O: RepairObserver>(
    rules: &RuleSet,
    row: &mut [Symbol],
    observer: &O,
) -> Vec<CellUpdate> {
    let mut assured = AttrSet::EMPTY;
    // Γ: rules not yet applied. A rule leaves Γ when it fires (Fig 6 line
    // 7); unapplied rules are rescanned after every update.
    let mut unused = vec![true; rules.len()];
    let mut updates = Vec::new();
    let mut rounds = 0usize;
    let mut updated = true;
    // Per-rule latency is opt-in: under NoopObserver the Instant pair and
    // the rejection hook fold away with the rest of the instrumentation.
    let timing = observer.wants_rule_timing();
    while updated {
        updated = false;
        rounds += 1;
        observer.chase_round();
        for (i, rule) in rules.rules().iter().enumerate() {
            if !unused[i] {
                continue; // already fired — not an evaluation
            }
            let t0 = timing.then(std::time::Instant::now);
            if assured.contains(rule.b()) || !matches(rule, row) {
                observer.rule_rejected(i);
                if let Some(t0) = t0 {
                    observer.rule_latency(i, t0.elapsed().as_nanos() as u64);
                }
                continue;
            }
            debug_assert!(properly_applicable(rule, row, assured));
            let b = rule.b();
            let old = row[b.index()];
            row[b.index()] = rule.fact();
            assured.union_with(rule.assured_delta());
            unused[i] = false;
            updated = true;
            observer.rule_applied(i, b.index());
            if let Some(t0) = t0 {
                observer.rule_latency(i, t0.elapsed().as_nanos() as u64);
            }
            updates.push(CellUpdate {
                row: 0,
                attr: b,
                old,
                new: rule.fact(),
                rule: RuleId(i as u32),
                round: rounds as u32,
            });
        }
    }
    observer.tuple_done(rounds, updates.len());
    updates
}

/// Repair every tuple of a table in place with `cRepair`.
pub fn crepair_table(rules: &RuleSet, table: &mut Table) -> RepairOutcome {
    crepair_table_observed(rules, table, &NoopObserver)
}

/// [`crepair_table`] with observer hooks; additionally emits one
/// `cell_repaired` per applied update (the table driver knows the row
/// index; the per-tuple algorithm doesn't).
pub fn crepair_table_observed<O: RepairObserver>(
    rules: &RuleSet,
    table: &mut Table,
    observer: &O,
) -> RepairOutcome {
    assert!(
        rules.schema().same_as(table.schema()),
        "rule set and table must share a schema"
    );
    let mut outcome = RepairOutcome::default();
    for i in 0..table.len() {
        let mut ups = crepair_tuple_observed(rules, table.row_mut(i), observer);
        for (k, u) in ups.iter_mut().enumerate() {
            u.row = i;
            observer.cell_repaired(u.as_fix(k));
        }
        outcome.updates.extend(ups);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    /// The four rules of Fig 8 (φ1–φ4).
    fn fig8_rules(sy: &mut SymbolTable) -> RuleSet {
        let mut rs = RuleSet::new(schema());
        rs.push_named(
            sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("capital", "Beijing"), ("conf", "ICDE")],
            "city",
            &["Hongkong"],
            "Shanghai",
        )
        .unwrap();
        rs
    }

    /// The Fig 1 instance, over the rule set's schema instance.
    fn fig1_table(sy: &mut SymbolTable, schema: &Schema) -> Table {
        let mut t = Table::new(schema.clone());
        for row in [
            ["George", "China", "Beijing", "Beijing", "SIGMOD"],
            ["Ian", "China", "Shanghai", "Hongkong", "ICDE"],
            ["Peter", "China", "Tokyo", "Tokyo", "ICDE"],
            ["Mike", "Canada", "Toronto", "Toronto", "VLDB"],
        ] {
            t.push_strs(sy, &row).unwrap();
        }
        t
    }

    #[test]
    fn repairs_fig1_exactly_as_fig8() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        assert!(rules.check_consistency().is_consistent());
        let mut table = fig1_table(&mut sy, &rules.schema().clone());
        let outcome = crepair_table(&rules, &mut table);
        // All four errors corrected: r2.capital, r2.city, r3.country,
        // r4.capital.
        assert_eq!(outcome.total_updates(), 4);
        assert_eq!(outcome.rows_touched(), 3);
        let strs = |i: usize| -> Vec<&str> { table.row_strs(&sy, i) };
        assert_eq!(
            strs(0),
            vec!["George", "China", "Beijing", "Beijing", "SIGMOD"]
        );
        assert_eq!(strs(1), vec!["Ian", "China", "Beijing", "Shanghai", "ICDE"]);
        assert_eq!(strs(2), vec!["Peter", "Japan", "Tokyo", "Tokyo", "ICDE"]);
        assert_eq!(strs(3), vec!["Mike", "Canada", "Ottawa", "Toronto", "VLDB"]);
    }

    #[test]
    fn clean_tuple_untouched() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let mut row: Vec<Symbol> = ["George", "China", "Beijing", "Beijing", "SIGMOD"]
            .iter()
            .map(|v| sy.intern(v))
            .collect();
        let before = row.clone();
        let ups = crepair_tuple(&rules, &mut row);
        assert!(ups.is_empty());
        assert_eq!(row, before);
    }

    #[test]
    fn cascade_fires_within_one_tuple() {
        // r2: φ1 then φ4 (via the updated capital), as in Fig 8.
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let mut row: Vec<Symbol> = ["Ian", "China", "Shanghai", "Hongkong", "ICDE"]
            .iter()
            .map(|v| sy.intern(v))
            .collect();
        let ups = crepair_tuple(&rules, &mut row);
        assert_eq!(ups.len(), 2);
        assert_eq!(ups[0].rule, RuleId(0));
        assert_eq!(ups[1].rule, RuleId(3));
        assert_eq!(sy.resolve(row[2]), "Beijing");
        assert_eq!(sy.resolve(row[3]), "Shanghai");
    }

    #[test]
    fn each_rule_applies_at_most_once_per_tuple() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let mut row: Vec<Symbol> = ["Ian", "China", "Shanghai", "Hongkong", "ICDE"]
            .iter()
            .map(|v| sy.intern(v))
            .collect();
        let ups = crepair_tuple(&rules, &mut row);
        let mut fired: Vec<RuleId> = ups.iter().map(|u| u.rule).collect();
        fired.sort();
        let before = fired.len();
        fired.dedup();
        assert_eq!(fired.len(), before);
    }

    #[test]
    fn updates_record_old_and_new_values() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let mut table = fig1_table(&mut sy, &rules.schema().clone());
        let outcome = crepair_table(&rules, &mut table);
        let u = outcome
            .updates
            .iter()
            .find(|u| u.row == 3)
            .expect("r4 repaired");
        assert_eq!(sy.resolve(u.old), "Toronto");
        assert_eq!(sy.resolve(u.new), "Ottawa");
        assert_eq!(u.rule, RuleId(1));
    }

    #[test]
    #[should_panic(expected = "share a schema")]
    fn schema_mismatch_panics() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let other = Schema::new("Other", ["a", "b", "c", "d", "e"]).unwrap();
        let mut table = Table::new(other);
        table
            .push_strs(&mut sy, &["1", "2", "3", "4", "5"])
            .unwrap();
        crepair_table(&rules, &mut table);
    }
}
