//! Streaming CSV repair.
//!
//! Fixing rules are strictly per-tuple — unlike FD repair, no cross-tuple
//! state exists — so a table of any size can be repaired in one pass with
//! O(rules + vocabulary) memory: read a record, run `lRepair` on it, write
//! it out. This is an engineering extension beyond the paper (its
//! experiments materialise tables), enabled by exactly the per-tuple
//! property the paper's complexity analysis relies on.
//!
//! Memory note: the [`SymbolTable`] interns every distinct cell value seen,
//! so memory is bounded by the input's *vocabulary*, not its row count.

use std::io::{Read, Write};

use obs::{NoopObserver, RepairObserver};
use relation::{RelationError, Symbol, SymbolTable};

use crate::repair::columnar::{repair_columns_grouped, BatchStats};
use crate::repair::compile::{
    repair_row_compiled, CompiledEngine, CompiledScratch, PlanCache, RuleProgram,
};
use crate::repair::linear::{lrepair_tuple_observed, LRepairIndex, LRepairScratch};
use crate::repair::RepairStats;
use crate::ruleset::RuleSet;

/// Statistics of one streaming run — the shared
/// [`RepairStats`] reporting type, so streaming
/// and table runs expose identical `rows`/`updates`/`rows_touched` fields
/// and `touched_ratio`/`rows_per_sec` accessors.
pub type StreamStats = RepairStats;

/// Repair CSV records from `reader` to `writer` in one pass.
///
/// The CSV header must match the rule set's schema attribute names (same
/// names, same order) — the rules' attribute ids index positionally into
/// each record.
pub fn stream_repair_csv<R: Read, W: Write>(
    rules: &RuleSet,
    index: &LRepairIndex,
    symbols: &mut SymbolTable,
    reader: R,
    writer: W,
) -> Result<StreamStats, RelationError> {
    stream_repair_csv_observed(rules, index, symbols, reader, writer, &NoopObserver)
}

/// [`stream_repair_csv`] with observer hooks: per-tuple hooks from
/// `lRepair`, one `cell_repaired` per applied update (`row` = 0-based
/// record index), plus one `stream_record(vocab)` per record carrying the
/// interner size (the memory-bounding quantity of this driver). When the
/// observer answers `wants_rows`, each record's *pre-repair* symbol ids
/// are also reported through `row_observed` (before any rule fires), so a
/// quality monitor sees the incoming distribution, not the repaired one.
pub fn stream_repair_csv_observed<R: Read, W: Write, O: RepairObserver>(
    rules: &RuleSet,
    index: &LRepairIndex,
    symbols: &mut SymbolTable,
    reader: R,
    writer: W,
    observer: &O,
) -> Result<StreamStats, RelationError> {
    let mut rdr = csv::ReaderBuilder::new()
        .has_headers(true)
        .flexible(false)
        .from_reader(reader);
    let headers = rdr.headers()?.clone();
    let schema = rules.schema();
    if headers.len() != schema.arity()
        || !headers.iter().zip(schema.attr_names()).all(|(h, a)| h == a)
    {
        return Err(RelationError::UnknownAttribute(format!(
            "CSV header [{}] does not match rule schema {}",
            headers.iter().collect::<Vec<_>>().join(", "),
            schema
        )));
    }
    let mut wtr = csv::Writer::from_writer(writer);
    wtr.write_record(&headers)?;

    let mut scratch = LRepairScratch::new(rules.len());
    let mut row: Vec<Symbol> = Vec::with_capacity(schema.arity());
    let mut pre: Vec<u32> = Vec::with_capacity(schema.arity());
    let mut stats = StreamStats::default();
    for record in rdr.records() {
        let record = record?;
        row.clear();
        row.extend(record.iter().map(|cell| symbols.intern(cell)));
        if observer.wants_rows() {
            pre.clear();
            pre.extend(row.iter().map(|s| s.0));
            observer.row_observed(&pre);
        }
        let mut updates = lrepair_tuple_observed(rules, index, &mut scratch, &mut row, observer);
        if !updates.is_empty() {
            stats.rows_touched += 1;
            stats.updates += updates.len();
        }
        for (k, u) in updates.iter_mut().enumerate() {
            u.row = stats.rows;
            observer.cell_repaired(u.as_fix(k));
        }
        stats.rows += 1;
        observer.stream_record(symbols.len());
        wtr.write_record(row.iter().map(|&s| symbols.resolve(s)))?;
    }
    wtr.flush()?;
    Ok(stats)
}

/// Repair CSV records from `reader` to `writer` in one pass with the
/// compiled engine, memoizing repair plans in `cache`.
///
/// A stream has no end in sight, so the cache should be bounded — pass a
/// [`PlanCache::bounded_lru`] to cap memory at `capacity` plans with exact
/// least-recently-used eviction (an evicted signature that recurs simply
/// misses once and is re-planned). `cache = None` disables memoization;
/// output is byte-identical either way.
pub fn stream_repair_csv_compiled<R: Read, W: Write>(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    symbols: &mut SymbolTable,
    reader: R,
    writer: W,
) -> Result<StreamStats, RelationError> {
    stream_repair_csv_compiled_observed(
        rules,
        program,
        engine,
        cache,
        symbols,
        reader,
        writer,
        &NoopObserver,
    )
}

/// [`stream_repair_csv_compiled`] with observer hooks; same hook contract
/// as [`stream_repair_csv_observed`] plus the plan-cache hooks.
#[allow(clippy::too_many_arguments)]
pub fn stream_repair_csv_compiled_observed<R: Read, W: Write, O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    symbols: &mut SymbolTable,
    reader: R,
    writer: W,
    observer: &O,
) -> Result<StreamStats, RelationError> {
    let mut rdr = csv::ReaderBuilder::new()
        .has_headers(true)
        .flexible(false)
        .from_reader(reader);
    let headers = rdr.headers()?.clone();
    let schema = rules.schema();
    if headers.len() != schema.arity()
        || !headers.iter().zip(schema.attr_names()).all(|(h, a)| h == a)
    {
        return Err(RelationError::UnknownAttribute(format!(
            "CSV header [{}] does not match rule schema {}",
            headers.iter().collect::<Vec<_>>().join(", "),
            schema
        )));
    }
    let mut wtr = csv::Writer::from_writer(writer);
    wtr.write_record(&headers)?;

    let mut scratch = CompiledScratch::new(rules.len());
    let mut row: Vec<Symbol> = Vec::with_capacity(schema.arity());
    let mut pre: Vec<u32> = Vec::with_capacity(schema.arity());
    let mut stats = StreamStats::default();
    for record in rdr.records() {
        let record = record?;
        row.clear();
        row.extend(record.iter().map(|cell| symbols.intern(cell)));
        if observer.wants_rows() {
            pre.clear();
            pre.extend(row.iter().map(|s| s.0));
            observer.row_observed(&pre);
        }
        let mut updates = repair_row_compiled(
            rules,
            program,
            engine,
            cache,
            &mut scratch,
            &mut row,
            observer,
        );
        if !updates.is_empty() {
            stats.rows_touched += 1;
            stats.updates += updates.len();
        }
        for (k, u) in updates.iter_mut().enumerate() {
            u.row = stats.rows;
            observer.cell_repaired(u.as_fix(k));
        }
        stats.rows += 1;
        observer.stream_record(symbols.len());
        wtr.write_record(row.iter().map(|&s| symbols.resolve(s)))?;
    }
    wtr.flush()?;
    Ok(stats)
}

/// Repair CSV records from `reader` to `writer` in batches of up to
/// `batch_rows` records, using the columnar group-by-plan path: each
/// batch is read into per-attribute columns, grouped by tuple signature,
/// and each distinct signature runs the compiled engine (or probes
/// `cache`) exactly once. Memory is bounded by `batch_rows × arity`
/// cells plus the vocabulary; output CSV and fix stream are
/// byte-identical to [`stream_repair_csv_compiled`] with the same
/// engine.
#[allow(clippy::too_many_arguments)]
pub fn stream_repair_csv_columnar<R: Read, W: Write>(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    symbols: &mut SymbolTable,
    reader: R,
    writer: W,
    batch_rows: usize,
) -> Result<(StreamStats, BatchStats), RelationError> {
    stream_repair_csv_columnar_observed(
        rules,
        program,
        engine,
        cache,
        symbols,
        reader,
        writer,
        batch_rows,
        &NoopObserver,
    )
}

/// [`stream_repair_csv_columnar`] with observer hooks; same hook
/// contract as [`stream_repair_csv_compiled_observed`] minus the
/// per-member cache probes, plus one `batch_grouped` per non-empty
/// batch. `row_observed` still fires per record at read time (before any
/// rule fires), so a quality monitor sees the incoming distribution.
#[allow(clippy::too_many_arguments)]
pub fn stream_repair_csv_columnar_observed<R: Read, W: Write, O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    symbols: &mut SymbolTable,
    reader: R,
    writer: W,
    batch_rows: usize,
    observer: &O,
) -> Result<(StreamStats, BatchStats), RelationError> {
    let mut rdr = csv::ReaderBuilder::new()
        .has_headers(true)
        .flexible(false)
        .from_reader(reader);
    let headers = rdr.headers()?.clone();
    let schema = rules.schema();
    if headers.len() != schema.arity()
        || !headers.iter().zip(schema.attr_names()).all(|(h, a)| h == a)
    {
        return Err(RelationError::UnknownAttribute(format!(
            "CSV header [{}] does not match rule schema {}",
            headers.iter().collect::<Vec<_>>().join(", "),
            schema
        )));
    }
    let mut wtr = csv::Writer::from_writer(writer);
    wtr.write_record(&headers)?;

    let batch_rows = batch_rows.max(1);
    let arity = schema.arity();
    let mut scratch = CompiledScratch::new(rules.len());
    let mut cols: Vec<Vec<Symbol>> = vec![Vec::with_capacity(batch_rows); arity];
    let mut pre: Vec<u32> = Vec::with_capacity(arity);
    let mut stats = StreamStats::default();
    let mut batch_stats = BatchStats::default();
    let mut records = rdr.records();
    loop {
        for col in &mut cols {
            col.clear();
        }
        let mut n = 0usize;
        while n < batch_rows {
            let Some(record) = records.next() else { break };
            let record = record?;
            for (col, cell) in cols.iter_mut().zip(record.iter()) {
                col.push(symbols.intern(cell));
            }
            if observer.wants_rows() {
                pre.clear();
                pre.extend(cols.iter().map(|c| c[n].0));
                observer.row_observed(&pre);
            }
            n += 1;
        }
        if n == 0 {
            break;
        }
        let base = stats.rows;
        let mut col_slices: Vec<&mut [Symbol]> =
            cols.iter_mut().map(|c| c.as_mut_slice()).collect();
        let (updates, bstats) = repair_columns_grouped(
            rules,
            program,
            engine,
            cache,
            &mut scratch,
            &mut col_slices,
            base,
            observer,
        );
        batch_stats.merge(bstats);
        stats.updates += updates.len();
        let mut last = usize::MAX;
        for u in &updates {
            if u.row != last {
                stats.rows_touched += 1;
                last = u.row;
            }
        }
        for i in 0..n {
            stats.rows += 1;
            observer.stream_record(symbols.len());
            wtr.write_record(cols.iter().map(|c| symbols.resolve(c[i])))?;
        }
    }
    wtr.flush()?;
    Ok((stats, batch_stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::linear::lrepair_tuple;
    use relation::Schema;

    fn setup() -> (RuleSet, SymbolTable) {
        let schema = Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut rules = RuleSet::new(schema);
        rules
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Shanghai", "Hongkong"],
                "Beijing",
            )
            .unwrap();
        rules
            .push_named(
                &mut sy,
                &[("country", "Canada")],
                "capital",
                &["Toronto"],
                "Ottawa",
            )
            .unwrap();
        (rules, sy)
    }

    const DIRTY: &str = "\
name,country,capital,city,conf
George,China,Beijing,Beijing,SIGMOD
Ian,China,Shanghai,Hongkong,ICDE
Mike,Canada,Toronto,Toronto,VLDB
";

    #[test]
    fn streams_and_repairs() {
        let (rules, mut sy) = setup();
        let index = LRepairIndex::build(&rules);
        let mut out = Vec::new();
        let stats = stream_repair_csv(&rules, &index, &mut sy, DIRTY.as_bytes(), &mut out).unwrap();
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.updates, 2);
        assert_eq!(stats.rows_touched, 2);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Ian,China,Beijing,Hongkong,ICDE"), "{text}");
        assert!(text.contains("Mike,Canada,Ottawa,Toronto,VLDB"), "{text}");
        // Clean row untouched.
        assert!(text.contains("George,China,Beijing,Beijing,SIGMOD"));
    }

    #[test]
    fn streaming_matches_table_repair() {
        let (rules, mut sy) = setup();
        let index = LRepairIndex::build(&rules);
        // Table path.
        let mut table = relation::csv_io::read_csv(DIRTY.as_bytes(), "Travel", &mut sy).unwrap();
        // The loaded table has its own schema instance; re-align by
        // repairing the rows directly.
        let mut scratch = LRepairScratch::new(rules.len());
        for i in 0..table.len() {
            lrepair_tuple(&rules, &index, &mut scratch, table.row_mut(i));
        }
        // Stream path.
        let mut out = Vec::new();
        stream_repair_csv(&rules, &index, &mut sy, DIRTY.as_bytes(), &mut out).unwrap();
        let mut sy2 = SymbolTable::new();
        let streamed = relation::csv_io::read_csv(out.as_slice(), "Travel", &mut sy2).unwrap();
        for i in 0..table.len() {
            assert_eq!(table.row_strs(&sy, i), streamed.row_strs(&sy2, i));
        }
    }

    #[test]
    fn compiled_stream_matches_uncached_stream() {
        let (rules, mut sy) = setup();
        let index = LRepairIndex::build(&rules);
        let program = RuleProgram::compile(&rules);
        let mut plain = Vec::new();
        let plain_stats =
            stream_repair_csv(&rules, &index, &mut sy, DIRTY.as_bytes(), &mut plain).unwrap();
        for cache in [None, Some(PlanCache::bounded_lru(64))] {
            let mut out = Vec::new();
            let stats = stream_repair_csv_compiled(
                &rules,
                &program,
                CompiledEngine::Linear,
                cache.as_ref(),
                &mut sy,
                DIRTY.as_bytes(),
                &mut out,
            )
            .unwrap();
            assert_eq!(stats, plain_stats);
            assert_eq!(out, plain, "CSV output must be byte-identical");
        }
    }

    #[test]
    fn columnar_stream_matches_compiled_stream() {
        let (rules, mut sy) = setup();
        let program = RuleProgram::compile(&rules);
        // Duplicate the dirty body so batches cross group boundaries.
        let mut input = String::from("name,country,capital,city,conf\n");
        for _ in 0..4 {
            for line in DIRTY.lines().skip(1) {
                input.push_str(line);
                input.push('\n');
            }
        }
        let mut reference = Vec::new();
        let ref_stats = stream_repair_csv_compiled(
            &rules,
            &program,
            CompiledEngine::Chase,
            None,
            &mut sy,
            input.as_bytes(),
            &mut reference,
        )
        .unwrap();
        for batch_rows in [1, 2, 5, 64] {
            for cache in [None, Some(PlanCache::unbounded())] {
                let mut out = Vec::new();
                let (stats, batch) = stream_repair_csv_columnar(
                    &rules,
                    &program,
                    CompiledEngine::Chase,
                    cache.as_ref(),
                    &mut sy,
                    input.as_bytes(),
                    &mut out,
                    batch_rows,
                )
                .unwrap();
                assert_eq!(stats, ref_stats);
                assert_eq!(out, reference, "CSV output must be byte-identical");
                assert_eq!(batch.rows, 12);
                assert_eq!(batch.scattered, 12 - batch.groups);
                if let Some(cache) = &cache {
                    let cs = cache.stats();
                    assert_eq!(cs.hits + cs.misses, batch.groups as u64);
                }
            }
        }
    }

    #[test]
    fn lru_eviction_and_re_miss_yield_correct_plans() {
        let (rules, mut sy) = setup();
        let program = RuleProgram::compile(&rules);
        // Two dirty signatures alternating: a capacity-1 cache thrashes —
        // every lookup after the first evicts the other signature's plan —
        // yet each re-miss must re-plan correctly.
        let mut input = String::from("name,country,capital,city,conf\n");
        for i in 0..6 {
            if i % 2 == 0 {
                input.push_str("p,China,Shanghai,x,ICDE\n");
            } else {
                input.push_str("q,Canada,Toronto,y,VLDB\n");
            }
        }
        let cache = PlanCache::bounded_lru(1);
        let mut out = Vec::new();
        let stats = stream_repair_csv_compiled(
            &rules,
            &program,
            CompiledEngine::Linear,
            Some(&cache),
            &mut sy,
            input.as_bytes(),
            &mut out,
        )
        .unwrap();
        assert_eq!(stats.rows, 6);
        assert_eq!(stats.updates, 6, "every row repaired despite thrashing");
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.matches("p,China,Beijing,x,ICDE").count(), 3);
        assert_eq!(text.matches("q,Canada,Ottawa,y,VLDB").count(), 3);
        let cs = cache.stats();
        assert_eq!(cs.hits, 0, "capacity 1 with alternating signatures");
        assert_eq!(cs.misses, 6);
        assert_eq!(cs.evictions, 5);
        assert_eq!(cs.entries, 1);
    }

    #[test]
    fn quality_monitor_watches_the_stream() {
        use obs::{QualityConfig, QualityMonitor};
        let (rules, mut sy) = setup();
        let index = LRepairIndex::build(&rules);
        let names: Vec<String> = rules.schema().attr_names().map(str::to_string).collect();
        let monitor = QualityMonitor::new(QualityConfig::with_window(2), names);
        let mut out = Vec::new();
        stream_repair_csv_observed(
            &rules,
            &index,
            &mut sy,
            DIRTY.as_bytes(),
            &mut out,
            &monitor,
        )
        .unwrap();
        monitor.flush();
        let windows = monitor.summaries();
        assert_eq!(windows.len(), 2, "3 records at window 2 → 2 windows");
        assert_eq!(windows[0].rows, 2);
        assert_eq!(windows[1].rows, 1);
        // `capital` is attribute 2; Ian's row repaired in window 0,
        // Mike's in window 1 — and the monitor saw the *pre-repair*
        // values (Shanghai, Toronto), not the fixed ones.
        assert_eq!(windows[0].attrs[2].attr, "capital");
        assert_eq!(windows[0].attrs[2].repaired, 1);
        assert_eq!(windows[1].attrs[2].repaired, 1);
        assert_eq!(windows[0].attrs[2].repair_rate_permille, 500);
        assert_eq!(windows[1].attrs[2].repair_rate_permille, 1000);
    }

    #[test]
    fn header_mismatch_rejected() {
        let (rules, mut sy) = setup();
        let index = LRepairIndex::build(&rules);
        let bad = "a,b,c\n1,2,3\n";
        let mut out = Vec::new();
        let err = stream_repair_csv(&rules, &index, &mut sy, bad.as_bytes(), &mut out).unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn header_order_matters() {
        let (rules, mut sy) = setup();
        let index = LRepairIndex::build(&rules);
        let reordered = "country,name,capital,city,conf\nChina,Ian,Shanghai,x,c\n";
        let mut out = Vec::new();
        assert!(
            stream_repair_csv(&rules, &index, &mut sy, reordered.as_bytes(), &mut out).is_err()
        );
    }

    #[test]
    fn empty_body_is_fine() {
        let (rules, mut sy) = setup();
        let index = LRepairIndex::build(&rules);
        let empty = "name,country,capital,city,conf\n";
        let mut out = Vec::new();
        let stats = stream_repair_csv(&rules, &index, &mut sy, empty.as_bytes(), &mut out).unwrap();
        assert_eq!(stats, StreamStats::default());
    }
}
