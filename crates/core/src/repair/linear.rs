//! `lRepair` — the fast linear repairing algorithm (Fig 7).
//!
//! Two indices make the per-tuple cost `O(size(Σ))`:
//!
//! * **Inverted lists** ([`LRepairIndex`]): built once per rule set, they
//!   map each `(attribute, value)` key to the rules whose evidence pattern
//!   contains that cell (Fig 8(a)).
//! * **Hash counters** ([`LRepairScratch`]): per tuple, `c(φ)` counts how
//!   many evidence cells of `φ` the current tuple matches. A rule becomes a
//!   candidate (enters `Γ`) exactly when `c(φ) = |X_φ|`.
//!
//! Per tuple: seed the counters from the tuple's cells via the inverted
//! lists; then pop candidates from `Γ`, verifying proper applicability
//! before applying (counters are a filter, not a proof — the negative
//! pattern and assured-set checks happen at pop time, Fig 7 line 10). After
//! an update to attribute `B`, only the inverted lists of the old and new
//! `B`-values are consulted, so each rule's counter moves at most `|X_φ|`
//! times in total. A rule enters `Γ` at most once (the appendix's
//! removal-once-and-for-all argument), enforced by the `enqueued` bitmap.
//!
//! Counters are epoch-stamped so repairing the next tuple costs `O(1)` to
//! "clear" them instead of `O(|Σ|)`.

use fxhash::FxHashMap;
use obs::{NoopObserver, RepairObserver};
use relation::{AttrId, AttrSet, Symbol, Table};

use crate::repair::{CellUpdate, RepairOutcome};
use crate::ruleset::{RuleId, RuleSet};
use crate::semantics::properly_applicable;

/// Inverted lists from `(attribute, evidence value)` to rule ids.
///
/// Built once per rule set; immutable and shareable across threads.
#[derive(Debug, Clone)]
pub struct LRepairIndex {
    // FxHash instead of std SipHash: the keys are 8 bytes and probed once
    // per cell, so hashing cost dominates the lookup.
    lists: FxHashMap<(AttrId, Symbol), Vec<RuleId>>,
    /// `|X_φ|` per rule — the counter target.
    evidence_len: Vec<u16>,
}

impl LRepairIndex {
    /// Build the inverted lists for `rules` (Fig 8(a)).
    pub fn build(rules: &RuleSet) -> Self {
        let mut lists: FxHashMap<(AttrId, Symbol), Vec<RuleId>> = FxHashMap::default();
        let mut evidence_len = Vec::with_capacity(rules.len());
        for (id, rule) in rules.iter() {
            evidence_len.push(rule.x().len() as u16);
            for (&attr, &val) in rule.x().iter().zip(rule.tp().iter()) {
                lists.entry((attr, val)).or_default().push(id);
            }
        }
        LRepairIndex {
            lists,
            evidence_len,
        }
    }

    /// Rules whose evidence contains the cell `(attr, value)`.
    #[inline]
    pub fn rules_for(&self, attr: AttrId, value: Symbol) -> &[RuleId] {
        self.lists
            .get(&(attr, value))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of distinct `(attribute, value)` keys.
    pub fn num_keys(&self) -> usize {
        self.lists.len()
    }
}

/// Reusable per-thread scratch space: epoch-stamped counters and the
/// candidate queue.
#[derive(Debug, Default)]
pub struct LRepairScratch {
    epoch: u32,
    stamp: Vec<u32>,
    count: Vec<u16>,
    enqueued_stamp: Vec<u32>,
    queue: Vec<RuleId>,
}

impl LRepairScratch {
    /// Create scratch space for a rule set of `num_rules` rules.
    pub fn new(num_rules: usize) -> Self {
        LRepairScratch {
            epoch: 0,
            stamp: vec![0; num_rules],
            count: vec![0; num_rules],
            enqueued_stamp: vec![0; num_rules],
            queue: Vec::new(),
        }
    }

    fn begin_tuple(&mut self, num_rules: usize) {
        if self.stamp.len() != num_rules {
            self.stamp = vec![0; num_rules];
            self.count = vec![0; num_rules];
            self.enqueued_stamp = vec![0; num_rules];
            self.epoch = 0;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: hard reset once every 2^32 tuples.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.enqueued_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    #[inline]
    fn count_of(&mut self, rule: RuleId) -> u16 {
        if self.stamp[rule.index()] != self.epoch {
            self.stamp[rule.index()] = self.epoch;
            self.count[rule.index()] = 0;
        }
        self.count[rule.index()]
    }

    #[inline]
    fn set_count(&mut self, rule: RuleId, v: u16) {
        self.stamp[rule.index()] = self.epoch;
        self.count[rule.index()] = v;
    }

    #[inline]
    fn try_enqueue(&mut self, rule: RuleId) {
        if self.enqueued_stamp[rule.index()] != self.epoch {
            self.enqueued_stamp[rule.index()] = self.epoch;
            self.queue.push(rule);
        }
    }
}

/// Repair one tuple in place with `lRepair`. Returns the applied updates
/// (`row` field 0; table drivers re-index).
pub fn lrepair_tuple(
    rules: &RuleSet,
    index: &LRepairIndex,
    scratch: &mut LRepairScratch,
    row: &mut [Symbol],
) -> Vec<CellUpdate> {
    lrepair_tuple_observed(rules, index, scratch, row, &NoopObserver)
}

/// [`lrepair_tuple`] with observer hooks: `index_probe` per inverted-list
/// lookup, `counter_saturated` per hash counter reaching `|X_φ|`,
/// `rule_applied` per fired rule, `tuple_done` (pops, updates) at the end.
/// With [`NoopObserver`] this monomorphizes to the unobserved hot path.
pub fn lrepair_tuple_observed<O: RepairObserver>(
    rules: &RuleSet,
    index: &LRepairIndex,
    scratch: &mut LRepairScratch,
    row: &mut [Symbol],
    observer: &O,
) -> Vec<CellUpdate> {
    scratch.begin_tuple(rules.len());
    // Lines 3–7: seed counters from every cell; enqueue fully-matched
    // rules.
    for (a, &value) in row.iter().enumerate() {
        let attr = AttrId(a as u16);
        let hits = index.rules_for(attr, value);
        observer.index_probe(hits.len());
        for &rid in hits {
            let c = scratch.count_of(rid) + 1;
            scratch.set_count(rid, c);
            if c == index.evidence_len[rid.index()] {
                observer.counter_saturated();
                scratch.try_enqueue(rid);
            }
        }
    }
    let mut assured = AttrSet::EMPTY;
    let mut updates = Vec::new();
    let mut pops = 0usize;
    // Per-rule latency is opt-in: under NoopObserver (and any observer not
    // asking for timing) the Instant pair folds away.
    let timing = observer.wants_rule_timing();
    // Lines 8–16: chase over the candidate queue.
    while let Some(rid) = scratch.queue.pop() {
        pops += 1;
        let rule = rules.rule(rid);
        let t0 = timing.then(std::time::Instant::now);
        // Line 10: verify — counters guarantee the evidence matched at
        // enqueue time; the negative pattern and assured set are checked
        // here. Evidence is re-verified too: an update may have overwritten
        // an evidence cell after this rule was enqueued.
        if !properly_applicable(rule, row, assured) {
            observer.rule_rejected(rid.index());
            if let Some(t0) = t0 {
                observer.rule_latency(rid.index(), t0.elapsed().as_nanos() as u64);
            }
            continue; // line 16: removed once and for all
        }
        let b = rule.b();
        let old = row[b.index()];
        let new = rule.fact();
        row[b.index()] = new;
        assured.union_with(rule.assured_delta());
        observer.rule_applied(rid.index(), b.index());
        if let Some(t0) = t0 {
            observer.rule_latency(rid.index(), t0.elapsed().as_nanos() as u64);
        }
        updates.push(CellUpdate {
            row: 0,
            attr: b,
            old,
            new,
            rule: rid,
            round: pops as u32,
        });
        // Lines 13–15: recalculate counters for the updated cell only.
        let stale = index.rules_for(b, old);
        observer.index_probe(stale.len());
        for &other in stale {
            let c = scratch.count_of(other);
            scratch.set_count(other, c.saturating_sub(1));
        }
        let fresh = index.rules_for(b, new);
        observer.index_probe(fresh.len());
        for &other in fresh {
            let c = scratch.count_of(other) + 1;
            scratch.set_count(other, c);
            if c == index.evidence_len[other.index()] {
                observer.counter_saturated();
                scratch.try_enqueue(other);
            }
        }
    }
    observer.tuple_done(pops, updates.len());
    updates
}

/// Repair every tuple of a table in place with `lRepair`.
pub fn lrepair_table(rules: &RuleSet, index: &LRepairIndex, table: &mut Table) -> RepairOutcome {
    lrepair_table_observed(rules, index, table, &NoopObserver)
}

/// [`lrepair_table`] with observer hooks; additionally emits one
/// `cell_repaired` per applied update (the table driver knows the row
/// index; the per-tuple algorithm doesn't).
pub fn lrepair_table_observed<O: RepairObserver>(
    rules: &RuleSet,
    index: &LRepairIndex,
    table: &mut Table,
    observer: &O,
) -> RepairOutcome {
    assert!(
        rules.schema().same_as(table.schema()),
        "rule set and table must share a schema"
    );
    let mut scratch = LRepairScratch::new(rules.len());
    let mut outcome = RepairOutcome::default();
    for i in 0..table.len() {
        let mut ups =
            lrepair_tuple_observed(rules, index, &mut scratch, table.row_mut(i), observer);
        for (k, u) in ups.iter_mut().enumerate() {
            u.row = i;
            observer.cell_repaired(u.as_fix(k));
        }
        outcome.updates.extend(ups);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::chase::crepair_table;
    use relation::{Schema, SymbolTable};

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    fn fig8_rules(sy: &mut SymbolTable) -> RuleSet {
        let mut rs = RuleSet::new(schema());
        rs.push_named(
            sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("capital", "Beijing"), ("conf", "ICDE")],
            "city",
            &["Hongkong"],
            "Shanghai",
        )
        .unwrap();
        rs
    }

    fn fig1_table(sy: &mut SymbolTable, schema: &Schema) -> Table {
        let mut t = Table::new(schema.clone());
        for row in [
            ["George", "China", "Beijing", "Beijing", "SIGMOD"],
            ["Ian", "China", "Shanghai", "Hongkong", "ICDE"],
            ["Peter", "China", "Tokyo", "Tokyo", "ICDE"],
            ["Mike", "Canada", "Toronto", "Toronto", "VLDB"],
        ] {
            t.push_strs(sy, &row).unwrap();
        }
        t
    }

    #[test]
    fn inverted_lists_match_fig8a() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let index = LRepairIndex::build(&rules);
        let s = schema();
        // (conf, ICDE) -> {φ3, φ4}
        let conf = rules.schema().attr("conf").unwrap();
        let icde = sy.get("ICDE").unwrap();
        assert_eq!(index.rules_for(conf, icde), &[RuleId(2), RuleId(3)]);
        // (country, China) -> {φ1}
        let country = s.attr("country").unwrap();
        assert_eq!(
            index.rules_for(country, sy.get("China").unwrap()),
            &[RuleId(0)]
        );
        // 6 distinct keys, exactly as in Fig 8(a).
        assert_eq!(index.num_keys(), 6);
    }

    #[test]
    fn replays_fig8_trace() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let index = LRepairIndex::build(&rules);
        let mut table = fig1_table(&mut sy, &rules.schema().clone());
        let outcome = lrepair_table(&rules, &index, &mut table);
        assert_eq!(outcome.total_updates(), 4);
        assert_eq!(
            table.row_strs(&sy, 0),
            vec!["George", "China", "Beijing", "Beijing", "SIGMOD"]
        );
        assert_eq!(
            table.row_strs(&sy, 1),
            vec!["Ian", "China", "Beijing", "Shanghai", "ICDE"]
        );
        assert_eq!(
            table.row_strs(&sy, 2),
            vec!["Peter", "Japan", "Tokyo", "Tokyo", "ICDE"]
        );
        assert_eq!(
            table.row_strs(&sy, 3),
            vec!["Mike", "Canada", "Ottawa", "Toronto", "VLDB"]
        );
    }

    #[test]
    fn agrees_with_crepair_on_fig1() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let index = LRepairIndex::build(&rules);
        let mut a = fig1_table(&mut sy, &rules.schema().clone());
        let mut b = a.clone();
        let oa = crepair_table(&rules, &mut a);
        let ob = lrepair_table(&rules, &index, &mut b);
        assert_eq!(a.diff_cells(&b).unwrap(), 0);
        assert_eq!(oa.total_updates(), ob.total_updates());
    }

    #[test]
    fn overwritten_evidence_never_happens_for_consistent_rules() {
        // For a *consistent* Σ an update can never invalidate another
        // matched evidence cell — that situation is exactly a case 2(a)
        // conflict (B_i ∈ X_j with tp_j[B_i] ∈ Tp_i[B_i]) which
        // `check_consistency` rejects. Verify that the pair is flagged, and
        // that on such an (inconsistent) input lRepair still terminates and
        // lands on one of the legitimate fixes, guarded by pop-time
        // re-verification and the counter decrement.
        let s = schema();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s);
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        )
        .unwrap();
        rs.push_named(
            &mut sy,
            &[("capital", "Shanghai")],
            "city",
            &["Paris"],
            "Shanghai",
        )
        .unwrap();
        assert!(!rs.check_consistency().is_consistent());
        let index = LRepairIndex::build(&rs);
        let mut scratch = LRepairScratch::new(rs.len());
        let mut row: Vec<Symbol> = ["Ian", "China", "Shanghai", "Paris", "ICDE"]
            .iter()
            .map(|v| sy.intern(v))
            .collect();
        let valid = crate::semantics::all_fixes(&[rs.rule(RuleId(0)), rs.rule(RuleId(1))], &row);
        assert_eq!(valid.len(), 2, "pair reaches two fixpoints");
        lrepair_tuple(&rs, &index, &mut scratch, &mut row);
        assert!(valid.contains(&row));
    }

    #[test]
    fn scratch_reuse_across_tuples_is_clean() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let index = LRepairIndex::build(&rules);
        let mut scratch = LRepairScratch::new(rules.len());
        // Repair the same dirty tuple twice with the same scratch; second
        // run must behave identically (fresh epoch).
        for _ in 0..2 {
            let mut row: Vec<Symbol> = ["Ian", "China", "Shanghai", "Hongkong", "ICDE"]
                .iter()
                .map(|v| sy.intern(v))
                .collect();
            let ups = lrepair_tuple(&rules, &index, &mut scratch, &mut row);
            assert_eq!(ups.len(), 2);
            assert_eq!(sy.resolve(row[2]), "Beijing");
            assert_eq!(sy.resolve(row[3]), "Shanghai");
        }
    }

    #[test]
    fn empty_ruleset_is_a_noop() {
        let mut sy = SymbolTable::new();
        let rules = RuleSet::new(schema());
        let index = LRepairIndex::build(&rules);
        let mut table = fig1_table(&mut sy, &rules.schema().clone());
        let before = table.clone();
        let outcome = lrepair_table(&rules, &index, &mut table);
        assert_eq!(outcome.total_updates(), 0);
        assert_eq!(before.diff_cells(&table).unwrap(), 0);
    }

    #[test]
    fn rule_enqueued_at_most_once() {
        // A tuple matching a rule's evidence through two different cells
        // must still enqueue the rule once: counters target |X| exactly.
        let s = Schema::new("R", ["a", "b", "c"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s);
        rs.push_named(&mut sy, &[("a", "k"), ("b", "k")], "c", &["bad"], "good")
            .unwrap();
        let index = LRepairIndex::build(&rs);
        let mut scratch = LRepairScratch::new(rs.len());
        let mut row: Vec<Symbol> = ["k", "k", "bad"].iter().map(|v| sy.intern(v)).collect();
        let ups = lrepair_tuple(&rs, &index, &mut scratch, &mut row);
        assert_eq!(ups.len(), 1);
        assert_eq!(sy.resolve(row[2]), "good");
    }
}
