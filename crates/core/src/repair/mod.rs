//! Repairing data with a consistent set of fixing rules (§6).
//!
//! Two per-tuple algorithms, matching the paper:
//!
//! * [`chase`] — `cRepair` (Fig 6): rescan the unused rules after every
//!   update; `O(size(Σ)·|R|)` per tuple.
//! * [`linear`] — `lRepair` (Fig 7): inverted lists from `(attribute,
//!   value)` keys to rules plus per-rule hash counters of matched evidence
//!   cells; `O(size(Σ))` per tuple.
//!
//! [`parallel`] adds a table-level driver that shards rows across threads —
//! sound because fixing rules are strictly per-tuple (unlike FD repair,
//! which must reason across tuples).
//!
//! [`compile`] adds a third execution strategy on top of either algorithm:
//! the rule set is compiled once into a [`RuleProgram`] (evidence-group
//! hash dispatch + relevant attribute closure), and repair plans are
//! memoized per [`TupleSignature`] in a [`PlanCache`], so duplicate dirty
//! tuples are repaired by replaying a cached plan instead of re-running
//! the engine. The compiled drivers reproduce the uncached drivers'
//! output — including the provenance ledger — byte for byte.
//!
//! Both algorithms require a **consistent** rule set; by the Church–Rosser
//! property (§6.1) they then produce the same unique fix per tuple, which is
//! asserted by the cross-algorithm tests and property tests.

pub mod chase;
pub mod columnar;
pub mod compile;
pub mod detect;
pub mod linear;
pub mod parallel;
pub mod stream;

pub use chase::{crepair_table, crepair_table_observed, crepair_tuple, crepair_tuple_observed};
pub use columnar::{
    columnar_table, columnar_table_observed, crepair_columnar, crepair_columnar_observed,
    lrepair_columnar, lrepair_columnar_observed, par_columnar_table, par_columnar_table_observed,
    repair_columns_grouped, BatchStats,
};
pub use compile::{
    compiled_table, compiled_table_observed, crepair_compiled, crepair_compiled_observed,
    crepair_compiled_tuple, lrepair_compiled, lrepair_compiled_observed, lrepair_compiled_tuple,
    repair_row_compiled, CompiledEngine, CompiledScratch, PlanCache, PlanCacheStats, RepairPlan,
    RuleProgram, TupleSignature,
};
pub use detect::{detect_table, explain};
pub use linear::{
    lrepair_table, lrepair_table_observed, lrepair_tuple, lrepair_tuple_observed, LRepairIndex,
    LRepairScratch,
};
pub use parallel::{
    par_compiled_table, par_compiled_table_observed, par_lrepair_table, par_lrepair_table_observed,
};
pub use stream::{
    stream_repair_csv, stream_repair_csv_columnar, stream_repair_csv_columnar_observed,
    stream_repair_csv_compiled, stream_repair_csv_compiled_observed, stream_repair_csv_observed,
    StreamStats,
};

use relation::{AttrId, Symbol};

use crate::ruleset::RuleId;

/// One cell update performed by a repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellUpdate {
    /// Row index in the table.
    pub row: usize,
    /// Updated attribute (`B` of the applied rule).
    pub attr: AttrId,
    /// Value before the update (a negative pattern of the rule).
    pub old: Symbol,
    /// Value after the update (the rule's fact).
    pub new: Symbol,
    /// The rule that fired.
    pub rule: RuleId,
    /// Chase round (`cRepair`) or candidate-queue pop index (`lRepair`)
    /// at which the rule fired, 1-based — the "when" of the provenance
    /// chain.
    pub round: u32,
}

impl CellUpdate {
    /// Translate into the plain-id [`obs::CellFix`] hook payload;
    /// `ordinal` is this update's application order within its row.
    /// Expects `row` to already be re-indexed by a table driver.
    pub fn as_fix(&self, ordinal: usize) -> obs::CellFix {
        obs::CellFix {
            row: self.row,
            ordinal,
            rule: self.rule.index(),
            attr: self.attr.index(),
            old: self.old.0,
            new: self.new.0,
            round: self.round,
        }
    }
}

/// Aggregate statistics of one repair run — the single reporting type
/// shared by the table drivers (via [`RepairOutcome::stats`]) and the
/// streaming driver (which returns it directly as
/// [`StreamStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Records processed.
    pub rows: usize,
    /// Cell updates applied.
    pub updates: usize,
    /// Records with at least one update.
    pub rows_touched: usize,
}

impl RepairStats {
    /// Fraction of rows that needed repair, in `[0, 1]`.
    pub fn touched_ratio(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.rows_touched as f64 / self.rows as f64
        }
    }

    /// Throughput over a measured wall-clock duration.
    pub fn rows_per_sec(&self, elapsed: std::time::Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.rows as f64 / secs
        }
    }
}

/// The full log of a table repair.
#[derive(Debug, Clone, Default)]
pub struct RepairOutcome {
    /// Every applied update, in application order per row.
    pub updates: Vec<CellUpdate>,
}

impl RepairOutcome {
    /// Total number of cell updates.
    pub fn total_updates(&self) -> usize {
        self.updates.len()
    }

    /// Number of distinct rows touched.
    pub fn rows_touched(&self) -> usize {
        let mut rows: Vec<usize> = self.updates.iter().map(|u| u.row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows.len()
    }

    /// Aggregate statistics for a run over `rows` records — the same shape
    /// the streaming driver reports, so callers have one reporting path.
    pub fn stats(&self, rows: usize) -> RepairStats {
        RepairStats {
            rows,
            updates: self.total_updates(),
            rows_touched: self.rows_touched(),
        }
    }

    /// Updates per rule id — the data behind Fig 12(a) ("number of errors
    /// corrected by every fixing rule").
    pub fn per_rule_counts(&self, num_rules: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_rules];
        for u in &self.updates {
            counts[u.rule.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_ratios_and_throughput() {
        let stats = RepairStats {
            rows: 100,
            updates: 7,
            rows_touched: 5,
        };
        assert!((stats.touched_ratio() - 0.05).abs() < 1e-12);
        let rps = stats.rows_per_sec(std::time::Duration::from_millis(500));
        assert!((rps - 200.0).abs() < 1e-9);
        assert_eq!(RepairStats::default().touched_ratio(), 0.0);
        assert_eq!(
            RepairStats::default().rows_per_sec(std::time::Duration::ZERO),
            0.0
        );
    }

    #[test]
    fn outcome_aggregations() {
        let outcome = RepairOutcome {
            updates: vec![
                CellUpdate {
                    row: 0,
                    attr: AttrId(2),
                    old: Symbol(1),
                    new: Symbol(2),
                    rule: RuleId(0),
                    round: 1,
                },
                CellUpdate {
                    row: 0,
                    attr: AttrId(3),
                    old: Symbol(3),
                    new: Symbol(4),
                    rule: RuleId(1),
                    round: 2,
                },
                CellUpdate {
                    row: 5,
                    attr: AttrId(2),
                    old: Symbol(1),
                    new: Symbol(2),
                    rule: RuleId(0),
                    round: 1,
                },
            ],
        };
        assert_eq!(outcome.total_updates(), 3);
        assert_eq!(outcome.rows_touched(), 2);
        assert_eq!(outcome.per_rule_counts(3), vec![2, 1, 0]);
        assert_eq!(
            outcome.stats(10),
            RepairStats {
                rows: 10,
                updates: 3,
                rows_touched: 2,
            }
        );
    }
}
