//! Repairing data with a consistent set of fixing rules (§6).
//!
//! Two per-tuple algorithms, matching the paper:
//!
//! * [`chase`] — `cRepair` (Fig 6): rescan the unused rules after every
//!   update; `O(size(Σ)·|R|)` per tuple.
//! * [`linear`] — `lRepair` (Fig 7): inverted lists from `(attribute,
//!   value)` keys to rules plus per-rule hash counters of matched evidence
//!   cells; `O(size(Σ))` per tuple.
//!
//! [`parallel`] adds a table-level driver that shards rows across threads —
//! sound because fixing rules are strictly per-tuple (unlike FD repair,
//! which must reason across tuples).
//!
//! Both algorithms require a **consistent** rule set; by the Church–Rosser
//! property (§6.1) they then produce the same unique fix per tuple, which is
//! asserted by the cross-algorithm tests and property tests.

pub mod chase;
pub mod detect;
pub mod linear;
pub mod parallel;
pub mod stream;

pub use chase::{crepair_table, crepair_tuple};
pub use detect::{detect_table, explain};
pub use linear::{lrepair_table, lrepair_tuple, LRepairIndex, LRepairScratch};
pub use parallel::par_lrepair_table;
pub use stream::{stream_repair_csv, StreamStats};

use relation::{AttrId, Symbol};

use crate::ruleset::RuleId;

/// One cell update performed by a repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellUpdate {
    /// Row index in the table.
    pub row: usize,
    /// Updated attribute (`B` of the applied rule).
    pub attr: AttrId,
    /// Value before the update (a negative pattern of the rule).
    pub old: Symbol,
    /// Value after the update (the rule's fact).
    pub new: Symbol,
    /// The rule that fired.
    pub rule: RuleId,
}

/// The full log of a table repair.
#[derive(Debug, Clone, Default)]
pub struct RepairOutcome {
    /// Every applied update, in application order per row.
    pub updates: Vec<CellUpdate>,
}

impl RepairOutcome {
    /// Total number of cell updates.
    pub fn total_updates(&self) -> usize {
        self.updates.len()
    }

    /// Number of distinct rows touched.
    pub fn rows_touched(&self) -> usize {
        let mut rows: Vec<usize> = self.updates.iter().map(|u| u.row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows.len()
    }

    /// Updates per rule id — the data behind Fig 12(a) ("number of errors
    /// corrected by every fixing rule").
    pub fn per_rule_counts(&self, num_rules: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_rules];
        for u in &self.updates {
            counts[u.rule.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_aggregations() {
        let outcome = RepairOutcome {
            updates: vec![
                CellUpdate {
                    row: 0,
                    attr: AttrId(2),
                    old: Symbol(1),
                    new: Symbol(2),
                    rule: RuleId(0),
                },
                CellUpdate {
                    row: 0,
                    attr: AttrId(3),
                    old: Symbol(3),
                    new: Symbol(4),
                    rule: RuleId(1),
                },
                CellUpdate {
                    row: 5,
                    attr: AttrId(2),
                    old: Symbol(1),
                    new: Symbol(2),
                    rule: RuleId(0),
                },
            ],
        };
        assert_eq!(outcome.total_updates(), 3);
        assert_eq!(outcome.rows_touched(), 2);
        assert_eq!(outcome.per_rule_counts(3), vec![2, 1, 0]);
    }
}
