//! Detect-only mode and repair explanation.
//!
//! Fixing rules subsume the *detection* capability of CFDs (§2): a matching
//! rule certifies that `t[B]` is wrong. [`detect_table`] reports what a
//! repair *would* change without mutating anything — the audit/monitoring
//! deployment mode, where a human signs off before writes. [`explain`]
//! renders one planned or applied update with the evidence that justified
//! it.

use relation::{Schema, SymbolTable, Table};

use crate::repair::linear::{lrepair_tuple, LRepairIndex, LRepairScratch};
use crate::repair::{CellUpdate, RepairOutcome};
use crate::ruleset::RuleSet;

/// Compute the updates a repair would apply, leaving `table` untouched.
///
/// Chased updates are included: if fixing one cell would enable another
/// rule, both planned updates are reported, exactly as `lRepair` would
/// apply them.
pub fn detect_table(rules: &RuleSet, index: &LRepairIndex, table: &Table) -> RepairOutcome {
    assert!(
        rules.schema().same_as(table.schema()),
        "rule set and table must share a schema"
    );
    let mut scratch = LRepairScratch::new(rules.len());
    let mut outcome = RepairOutcome::default();
    let mut row = Vec::with_capacity(table.schema().arity());
    for i in 0..table.len() {
        row.clear();
        row.extend_from_slice(table.row(i));
        let mut ups = lrepair_tuple(rules, index, &mut scratch, &mut row);
        for u in &mut ups {
            u.row = i;
        }
        outcome.updates.extend(ups);
    }
    outcome
}

/// Render a human-readable justification of one update: the rule, its
/// evidence cells, and the negative pattern that fired.
pub fn explain(
    update: &CellUpdate,
    rules: &RuleSet,
    schema: &Schema,
    symbols: &SymbolTable,
) -> String {
    let rule = rules.rule(update.rule);
    let evidence: Vec<String> = rule
        .x()
        .iter()
        .zip(rule.tp().iter())
        .map(|(&a, &v)| format!("{} = {}", schema.attr_name(a), symbols.resolve(v)))
        .collect();
    format!(
        "row {}: {} `{}` is a known wrong value given {}; rule #{} fixes it to `{}`",
        update.row,
        schema.attr_name(update.attr),
        symbols.resolve(update.old),
        evidence.join(" ∧ "),
        update.rule.0,
        symbols.resolve(update.new),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::lrepair_table;
    use relation::Schema;

    fn setup() -> (RuleSet, SymbolTable, Table) {
        let schema = Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut rules = RuleSet::new(schema.clone());
        rules
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Shanghai", "Hongkong"],
                "Beijing",
            )
            .unwrap();
        rules
            .push_named(
                &mut sy,
                &[("capital", "Beijing"), ("conf", "ICDE")],
                "city",
                &["Hongkong"],
                "Shanghai",
            )
            .unwrap();
        let mut t = Table::new(schema);
        t.push_strs(&mut sy, &["Ian", "China", "Shanghai", "Hongkong", "ICDE"])
            .unwrap();
        t.push_strs(
            &mut sy,
            &["George", "China", "Beijing", "Beijing", "SIGMOD"],
        )
        .unwrap();
        (rules, sy, t)
    }

    #[test]
    fn detect_reports_chased_plan_without_mutation() {
        let (rules, _sy, table) = setup();
        let index = LRepairIndex::build(&rules);
        let before = table.clone();
        let plan = detect_table(&rules, &index, &table);
        // Both the capital fix and the enabled city fix are planned.
        assert_eq!(plan.total_updates(), 2);
        assert_eq!(before.diff_cells(&table).unwrap(), 0, "table mutated");
    }

    #[test]
    fn detect_plan_matches_actual_repair() {
        let (rules, _sy, table) = setup();
        let index = LRepairIndex::build(&rules);
        let plan = detect_table(&rules, &index, &table);
        let mut repaired = table.clone();
        let applied = lrepair_table(&rules, &index, &mut repaired);
        assert_eq!(plan.updates, applied.updates);
        // Applying the plan manually reproduces the repair.
        let mut manual = table.clone();
        for u in &plan.updates {
            manual.set_cell(u.row, u.attr, u.new);
        }
        assert_eq!(manual.diff_cells(&repaired).unwrap(), 0);
    }

    #[test]
    fn explain_names_rule_evidence_and_values() {
        let (rules, sy, table) = setup();
        let index = LRepairIndex::build(&rules);
        let plan = detect_table(&rules, &index, &table);
        let first = plan
            .updates
            .iter()
            .find(|u| u.rule == crate::RuleId(0))
            .unwrap();
        let text = explain(first, &rules, rules.schema(), &sy);
        assert!(text.contains("country = China"), "{text}");
        assert!(text.contains("`Shanghai`"), "{text}");
        assert!(text.contains("`Beijing`"), "{text}");
        assert!(text.contains("row 0"), "{text}");
    }

    #[test]
    fn clean_table_yields_empty_plan() {
        let (rules, mut sy, _) = setup();
        let index = LRepairIndex::build(&rules);
        let mut clean = Table::new(rules.schema().clone());
        clean
            .push_strs(&mut sy, &["Ann", "Japan", "Tokyo", "Tokyo", "VLDB"])
            .unwrap();
        let plan = detect_table(&rules, &index, &clean);
        assert_eq!(plan.total_updates(), 0);
    }
}
